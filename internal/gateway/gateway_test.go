package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

// newTestServer builds a cm.Server over a SCADDAR strategy with a library
// loaded, without starting a gateway.
func newTestServer(t testing.TB, n0, objects, blocks int, mutate func(*cm.Config)) *cm.Server {
	t.Helper()
	strat, err := placement.NewScaddar(n0, placement.NewX0Func(testFactory))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cm.DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: objects, MinBlocks: blocks, MaxBlocks: blocks,
		BlockBytes: cfg.BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

// newTestGateway wraps a fresh server in a fast-round gateway and registers
// cleanup.
func newTestGateway(t testing.TB, n0, objects, blocks int, mutate func(*cm.Config), gmutate func(*Config)) *Gateway {
	t.Helper()
	srv := newTestServer(t, n0, objects, blocks, mutate)
	gcfg := Config{Factory: testFactory, Round: 2 * time.Millisecond}
	if gmutate != nil {
		gmutate(&gcfg)
	}
	g, err := New(srv, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// doJSON performs a request against the handler and decodes the JSON body.
func doJSON(t testing.TB, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	out := map[string]any{}
	if b := bytes.TrimSpace(rec.Body.Bytes()); len(b) > 0 && b[0] == '{' {
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, out
}

// waitStatus polls the published status until cond holds or the deadline
// expires.
func waitStatus(t testing.TB, g *Gateway, what string, cond func(Status) bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond(g.Status()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; status %+v", what, g.Status())
}

func TestNewValidation(t *testing.T) {
	srv := newTestServer(t, 4, 2, 50, nil)
	if _, err := New(nil, Config{Factory: testFactory}); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := New(srv, Config{}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := New(srv, Config{Factory: testFactory, Round: -time.Second}); err == nil {
		t.Error("negative round accepted")
	}
	// Non-SCADDAR strategies cannot snapshot and must be refused up front.
	rr, err := placement.NewRoundRobin(4)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := cm.NewServer(cm.DefaultConfig(), rr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(plain, Config{Factory: testFactory}); err == nil {
		t.Error("round-robin strategy accepted")
	}
}

func TestReadEndpoint(t *testing.T) {
	g := newTestGateway(t, 4, 3, 60, nil, nil)
	h := g.Handler()

	rec, body := doJSON(t, h, "GET", "/v1/objects/1/blocks/7", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read = %d %s", rec.Code, rec.Body)
	}
	d := int(body["disk"].(float64))
	if d < 0 || d >= 4 {
		t.Errorf("disk %d outside array", d)
	}
	// The snapshot must agree with the authoritative server lookup.
	v, err := g.Exec(context.Background(), func(s *cm.Server) (any, error) {
		want, err := s.Lookup(1, 7)
		if err != nil {
			return nil, err
		}
		got, err := s.Array().Disk(d)
		if err != nil {
			return nil, err
		}
		return want.ID() == got.ID(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.(bool) {
		t.Error("snapshot lookup disagrees with server lookup")
	}

	if rec, _ := doJSON(t, h, "GET", "/v1/objects/99/blocks/0", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown object = %d, want 404", rec.Code)
	}
	if rec, _ := doJSON(t, h, "GET", "/v1/objects/1/blocks/60", nil); rec.Code != http.StatusNotFound {
		t.Errorf("out-of-range block = %d, want 404", rec.Code)
	}
	if rec, _ := doJSON(t, h, "GET", "/v1/objects/x/blocks/0", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("non-integer object = %d, want 400", rec.Code)
	}

	rec, _ = doJSON(t, h, "GET", "/v1/objects", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("objects = %d", rec.Code)
	}
	var objs []cm.SnapshotObject
	if err := json.Unmarshal(rec.Body.Bytes(), &objs); err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 || objs[0].Blocks != 60 {
		t.Errorf("objects = %+v", objs)
	}
}

func TestSessionLifecycle(t *testing.T) {
	g := newTestGateway(t, 4, 3, 60, nil, nil)
	h := g.Handler()

	rec, body := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 2, "position": 10})
	if rec.Code != http.StatusCreated {
		t.Fatalf("open = %d %s", rec.Code, rec.Body)
	}
	sid := int(body["session"].(float64))
	if got := body["state"].(string); got != "playing" {
		t.Errorf("state = %q", got)
	}
	if got := int(body["position"].(float64)); got != 10 {
		t.Errorf("position = %d, want 10", got)
	}

	rec, _ = doJSON(t, h, "POST", fmt.Sprintf("/v1/sessions/%d/seek", sid), map[string]any{"position": 31})
	if rec.Code != http.StatusOK {
		t.Fatalf("seek = %d %s", rec.Code, rec.Body)
	}
	rec, body = doJSON(t, h, "GET", fmt.Sprintf("/v1/sessions/%d", sid), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get = %d", rec.Code)
	}
	// The round driver is live, so the position may already have advanced.
	if got := int(body["position"].(float64)); got < 31 {
		t.Errorf("position = %d, want >= 31", got)
	}
	rec, _ = doJSON(t, h, "DELETE", fmt.Sprintf("/v1/sessions/%d", sid), nil)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("close = %d", rec.Code)
	}
	rec, body = doJSON(t, h, "GET", fmt.Sprintf("/v1/sessions/%d", sid), nil)
	if rec.Code != http.StatusOK || body["state"].(string) == "playing" {
		t.Errorf("after close: %d state %v", rec.Code, body["state"])
	}

	if rec, _ := doJSON(t, h, "GET", "/v1/sessions/9999", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", rec.Code)
	}
	if rec, _ := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 99}); rec.Code != http.StatusNotFound {
		t.Errorf("open unknown object = %d, want 404", rec.Code)
	}
	if rec, _ := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 1, "position": 9999}); rec.Code != http.StatusNotFound {
		t.Errorf("open with bad position = %d, want 404", rec.Code)
	}
}

func TestAdmissionRejectsWith503(t *testing.T) {
	// A 1-disk array admits utilization*capacity streams; beyond that the
	// gateway must answer 503 + Retry-After rather than overcommit.
	g := newTestGateway(t, 1, 1, 1000, func(c *cm.Config) { c.Utilization = 0.1 }, nil)
	h := g.Handler()

	var admitted, rejected int
	var retryAfter string
	for i := 0; i < 100; i++ {
		rec, _ := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 0})
		switch rec.Code {
		case http.StatusCreated:
			admitted++
		case http.StatusServiceUnavailable:
			rejected++
			retryAfter = rec.Header().Get("Retry-After")
		default:
			t.Fatalf("open = %d %s", rec.Code, rec.Body)
		}
	}
	if rejected == 0 {
		t.Fatal("no admission rejections in 100 opens")
	}
	if retryAfter == "" {
		t.Error("503 without Retry-After")
	}
	st := g.Status()
	cap := int(0.1 * float64(cm.DefaultConfig().Profile.BlocksPerRound(cm.DefaultConfig().Round, cm.DefaultConfig().BlockBytes)))
	if st.ActiveStreams > cap {
		t.Errorf("overcommitted: %d active > capacity %d", st.ActiveStreams, cap)
	}
	if st.Gateway.SessionsRejected != int64(rejected) {
		t.Errorf("rejected counter = %d, want %d", st.Gateway.SessionsRejected, rejected)
	}
}

func TestMailboxOverloadReturns503(t *testing.T) {
	g := newTestGateway(t, 4, 2, 50, nil, func(c *Config) { c.MailboxDepth = 2 })
	h := g.Handler()

	// Block the owner goroutine on a gate, then fill the mailbox.
	gate := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_, _ = g.Exec(context.Background(), func(s *cm.Server) (any, error) {
			close(entered)
			<-gate
			return nil, nil
		})
	}()
	<-entered
	defer close(gate)

	// Fill the two mailbox slots with parked commands.
	for i := 0; i < 2; i++ {
		go func() {
			_, _ = g.Exec(context.Background(), func(s *cm.Server) (any, error) { return nil, nil })
		}()
	}
	// Wait until both slots are occupied.
	deadline := time.Now().Add(5 * time.Second)
	for len(g.cmds) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(g.cmds) != 2 {
		t.Fatalf("mailbox backlog = %d, want 2", len(g.cmds))
	}

	rec, _ := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 0})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded open = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if g.Status().Gateway.Overloads == 0 {
		t.Error("overload counter not incremented")
	}
}

func TestRequestDeadlineReturns504(t *testing.T) {
	g := newTestGateway(t, 4, 2, 50, nil, func(c *Config) { c.RequestTimeout = 20 * time.Millisecond })
	h := g.Handler()

	gate := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		_, _ = g.Exec(context.Background(), func(s *cm.Server) (any, error) {
			close(entered)
			<-gate
			return nil, nil
		})
	}()
	<-entered
	defer close(gate)

	rec, _ := doJSON(t, h, "GET", "/v1/sessions/0", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("blocked owner = %d, want 504", rec.Code)
	}
}

func TestScaleOverHTTP(t *testing.T) {
	g := newTestGateway(t, 4, 4, 100, nil, nil)
	h := g.Handler()

	rec, body := doJSON(t, h, "POST", "/v1/scale", map[string]any{"add": 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale = %d %s", rec.Code, rec.Body)
	}
	if got := int(body["nAfter"].(float64)); got != 6 {
		t.Errorf("nAfter = %d, want 6", got)
	}
	if int(body["moves"].(float64)) == 0 {
		t.Error("scale-up planned no moves")
	}

	// A second scaling operation while the first drains is a conflict.
	if rec, _ := doJSON(t, h, "POST", "/v1/scale", map[string]any{"add": 1}); rec.Code != http.StatusConflict {
		t.Errorf("concurrent scale = %d, want 409", rec.Code)
	}

	waitStatus(t, g, "scale-up drain", func(st Status) bool {
		return !st.Reorganizing && st.Disks == 6 && st.MigrationRemaining == 0
	})
	// Reads must succeed on the rebalanced array.
	if rec, _ := doJSON(t, h, "GET", "/v1/objects/3/blocks/42", nil); rec.Code != http.StatusOK {
		t.Errorf("read after scale = %d", rec.Code)
	}

	rec, body = doJSON(t, h, "POST", "/v1/scale", map[string]any{"remove": []int{1, 4}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale down = %d %s", rec.Code, rec.Body)
	}
	if got := int(body["nAfter"].(float64)); got != 4 {
		t.Errorf("nAfter = %d, want 4", got)
	}
	waitStatus(t, g, "scale-down drain", func(st Status) bool {
		return !st.Reorganizing && st.Disks == 4
	})

	if _, err := g.Exec(context.Background(), func(s *cm.Server) (any, error) {
		return nil, s.VerifyIntegrity()
	}); err != nil {
		t.Fatalf("integrity after scaling: %v", err)
	}

	if rec, _ := doJSON(t, h, "POST", "/v1/scale", map[string]any{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty scale = %d, want 400", rec.Code)
	}
	if rec, _ := doJSON(t, h, "POST", "/v1/scale", map[string]any{"add": 1, "remove": []int{0}}); rec.Code != http.StatusBadRequest {
		t.Errorf("ambiguous scale = %d, want 400", rec.Code)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	g := newTestGateway(t, 4, 2, 30, nil, nil)
	h := g.Handler()

	rec, body := doJSON(t, h, "GET", "/v1/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", rec.Code, body)
	}

	// Open a session, then drain: the session must play out before
	// Shutdown returns, and new sessions must be refused meanwhile.
	rec, _ = doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 0})
	if rec.Code != http.StatusCreated {
		t.Fatalf("open = %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- g.Shutdown(ctx) }()

	waitStatus(t, g, "draining flag", func(st Status) bool { return st.Draining })
	if rec, _ := doJSON(t, h, "POST", "/v1/sessions", map[string]any{"object": 0}); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("open during drain = %d, want 503", rec.Code)
	}
	if rec, _ := doJSON(t, h, "GET", "/v1/healthz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain = %d, want 503", rec.Code)
	}

	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	st := g.Status()
	if st.ActiveStreams != 0 {
		t.Errorf("streams still active after drain: %d", st.ActiveStreams)
	}
	if st.Server.StreamsCompleted == 0 {
		t.Error("drained session did not play out")
	}

	// After shutdown the control plane answers ErrDraining, not a hang.
	if _, err := g.Exec(context.Background(), func(s *cm.Server) (any, error) { return nil, nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("Exec after shutdown = %v, want ErrDraining", err)
	}
}

func TestDrillOverHTTP(t *testing.T) {
	g := newTestGateway(t, 6, 4, 80, func(c *cm.Config) { c.Redundancy = cm.RedundancyMirror }, nil)
	h := g.Handler()

	rec, _ := doJSON(t, h, "POST", "/v1/disks/2/fail", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("fail = %d %s", rec.Code, rec.Body)
	}
	waitStatus(t, g, "degraded", func(st Status) bool { return st.Degraded })

	// Reads on the failed disk's blocks still resolve (mirror failover is
	// the server's business; the location answer stays correct).
	if rec, _ := doJSON(t, h, "GET", "/v1/objects/0/blocks/5", nil); rec.Code != http.StatusOK {
		t.Errorf("read while degraded = %d", rec.Code)
	}

	// Failing a failed disk is a conflict, not a 500.
	if rec, _ := doJSON(t, h, "POST", "/v1/disks/2/fail", nil); rec.Code != http.StatusConflict {
		t.Errorf("double fail = %d, want 409", rec.Code)
	}

	rec, _ = doJSON(t, h, "POST", "/v1/disks/2/repair", nil)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("repair = %d %s", rec.Code, rec.Body)
	}
	waitStatus(t, g, "rebuild", func(st Status) bool { return !st.Degraded })

	if _, err := g.Exec(context.Background(), func(s *cm.Server) (any, error) {
		return nil, s.VerifyIntegrity()
	}); err != nil {
		t.Fatalf("integrity after drill: %v", err)
	}
	st := g.Status()
	if st.Server.BlocksRebuilt == 0 {
		t.Error("no blocks rebuilt")
	}
}
