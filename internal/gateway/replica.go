package gateway

// Replica: the follower-side HTTP front end. It serves the same read
// endpoint shape as the leader gateway — so a load balancer can spread
// lookups across replicas — but every answer comes from the follower's
// locally applied state, stamped with the LSN it is valid at. Lookups
// refused by the follower's fencing rules (unapplied scaling epoch, lag
// over the staleness budget) surface as 503 with Retry-After, the same
// retryable contract the leader uses for admission pressure, so clients
// need one backoff policy, not two.
//
// A Replica has no mailbox and no owner goroutine: it is a thin mapping
// from HTTP to the follower's atomic view. Control operations (scale,
// sessions, checkpoints) do not exist here — replicas are read animals.

import (
	"errors"
	"net/http"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
	"scaddar/internal/repl"
)

// ReplicaConfig configures the follower-serving HTTP front end.
type ReplicaConfig struct {
	// Follower is the running journal tail to serve from. Required.
	Follower *repl.Follower
	// RequestTimeout is the per-request deadline; 0 means 5s.
	RequestTimeout time.Duration
	// Registry, when non-nil, is served at GET /v1/metrics — pass the one
	// the follower publishes into to expose its lag and apply counters.
	Registry *obs.Registry
}

// Replica serves read traffic from a follower's applied state.
type Replica struct {
	cfg ReplicaConfig
	mux *http.ServeMux
}

// NewReplica builds the follower front end.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Follower == nil {
		return nil, errors.New("gateway: ReplicaConfig.Follower is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	rp := &Replica{cfg: cfg, mux: http.NewServeMux()}
	rp.mux.HandleFunc("GET /v1/healthz", rp.handleHealthz)
	rp.mux.HandleFunc("GET /v1/replication", rp.handleReplication)
	rp.mux.HandleFunc("GET /v1/objects", rp.handleObjects)
	rp.mux.HandleFunc("GET /v1/objects/{id}/blocks/{idx}", rp.handleRead)
	if cfg.Registry != nil {
		rp.mux.HandleFunc("GET /v1/metrics", rp.handleMetrics)
	}
	return rp, nil
}

// Handler returns the replica's HTTP handler.
func (rp *Replica) Handler() http.Handler { return rp.mux }

// replicaRetryAfter is the Retry-After hint for fenced/stale reads: the
// replica usually catches up within a heartbeat, so one second.
const replicaRetryAfter = "1"

// writeReplicaError maps follower read errors: unknown names are 404,
// fencing and staleness are retryable 503s, the rest are 500.
func writeReplicaError(w http.ResponseWriter, err error) {
	var status int
	switch {
	case errors.Is(err, cm.ErrUnknownObject),
		errors.Is(err, cm.ErrBlockOutOfRange):
		status = http.StatusNotFound
	case errors.Is(err, cm.ErrEpochFenced),
		errors.Is(err, cm.ErrStaleRead):
		w.Header().Set("Retry-After", replicaRetryAfter)
		status = http.StatusServiceUnavailable
	default:
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (rp *Replica) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rp.cfg.Follower.Status()
	body := map[string]any{
		"status":     "ok",
		"role":       "replica",
		"appliedLsn": st.AppliedLSN,
		"lagEvents":  st.LagEvents,
		"connected":  st.Connected,
		"leader":     st.Leader,
	}
	code := http.StatusOK
	if !st.Bootstrapped {
		body["status"] = "bootstrapping"
		w.Header().Set("Retry-After", replicaRetryAfter)
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (rp *Replica) handleReplication(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"role": "replica", "follower": rp.cfg.Follower.Status()})
}

func (rp *Replica) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rp.cfg.Registry.WritePrometheus(w)
}

func (rp *Replica) handleObjects(w http.ResponseWriter, r *http.Request) {
	v := rp.cfg.Follower.View()
	if v == nil {
		writeReplicaError(w, cm.ErrStaleRead)
		return
	}
	writeJSON(w, http.StatusOK, v.Snap.Objects())
}

// replicaReadResponse is readResponse plus the replica's position: the
// applied LSN the answer is valid at and the lag behind the leader.
type replicaReadResponse struct {
	readResponse
	AppliedLSN uint64 `json:"appliedLsn"`
	LagEvents  uint64 `json:"lagEvents"`
}

func (rp *Replica) handleRead(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	idx, err := pathInt(r, "idx")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	d, lsn, err := rp.cfg.Follower.Locate(id, idx)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	v := rp.cfg.Follower.View()
	writeJSON(w, http.StatusOK, replicaReadResponse{
		readResponse: readResponse{
			Object:       id,
			Block:        idx,
			Disk:         d,
			Healthy:      v.Snap.Healthy(d),
			Reorganizing: v.Snap.Reorganizing(),
		},
		AppliedLSN: lsn,
		LagEvents:  v.Lag(),
	})
}
