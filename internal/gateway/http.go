package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
	"scaddar/internal/disk"
	"scaddar/internal/reorg"
	"scaddar/internal/workload"
)

// maxBodyBytes bounds control-request bodies; every legitimate body here is
// a few dozen bytes of JSON.
const maxBodyBytes = 1 << 20

// routes installs the v1 API on the gateway's mux.
func (g *Gateway) routes() {
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /v1/status", g.handleStatus)
	g.mux.HandleFunc("GET /v1/trace", g.handleTrace)
	g.mux.HandleFunc("GET /v1/objects", g.handleObjects)
	g.mux.HandleFunc("GET /v1/objects/{id}/blocks/{idx}", g.handleRead)
	g.mux.HandleFunc("POST /v1/sessions", g.handleOpenSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}", g.handleGetSession)
	g.mux.HandleFunc("GET /v1/sessions/{id}/stream", g.handleStream)
	g.mux.HandleFunc("GET /v1/locator/snapshot", g.handleLocatorSnapshot)
	g.mux.HandleFunc("GET /v1/locator/deltas", g.handleLocatorDeltas)
	g.mux.HandleFunc("POST /v1/sessions/{id}/seek", g.handleSeek)
	g.mux.HandleFunc("DELETE /v1/sessions/{id}", g.handleCloseSession)
	g.mux.HandleFunc("POST /v1/scale", g.handleScale)
	g.mux.HandleFunc("POST /v1/disks/{id}/fail", g.handleDiskFail)
	g.mux.HandleFunc("POST /v1/disks/{id}/repair", g.handleDiskRepair)
	g.mux.HandleFunc("POST /v1/admin/checkpoint", g.handleCheckpoint)
	g.mux.HandleFunc("GET /v1/admin/objects", g.handleAdminObjects)
	g.mux.HandleFunc("POST /v1/admin/objects", g.handleAdminAddObject)
	g.mux.HandleFunc("DELETE /v1/admin/objects/{id}", g.handleAdminRemoveObject)
	g.mux.HandleFunc("GET /v1/replication", g.handleReplication)
}

// adminObject is the full catalog entry shipped over the admin surface —
// everything a peer server needs to recreate the object, including the
// placement seed the read-only /v1/objects listing withholds.
type adminObject struct {
	ID                int    `json:"id"`
	Seed              uint64 `json:"seed"`
	Blocks            int    `json:"blocks"`
	BlockBytes        int64  `json:"blockBytes"`
	BitrateBitsPerSec int64  `json:"bitrateBitsPerSec"`
}

// handleAdminObjects lists the full catalog (IDs, seeds, sizes, bitrates).
// It reads through the command mailbox, not the snapshot, so the answer is
// serialized with any in-flight catalog mutation — the consistency a
// cluster migration needs when it enumerates a source shard.
func (g *Gateway) handleAdminObjects(w http.ResponseWriter, r *http.Request) {
	v, err := g.exec(r.Context(), false, func(s *cm.Server) (any, error) {
		cat := s.Catalog()
		out := make([]adminObject, len(cat))
		for i, obj := range cat {
			out[i] = adminObject{
				ID: obj.ID, Seed: obj.Seed, Blocks: obj.Blocks,
				BlockBytes: obj.BlockBytes, BitrateBitsPerSec: obj.BitrateBitsPerSec,
			}
		}
		return out, nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleAdminAddObject loads one object into the catalog. A zero blockBytes
// adopts the server's configured block size. 409 on a duplicate ID or seed;
// the event is journaled (and synced before the reply) like every other
// mutating control op.
func (g *Gateway) handleAdminAddObject(w http.ResponseWriter, r *http.Request) {
	var req adminObject
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	_, err := g.exec(r.Context(), true, func(s *cm.Server) (any, error) {
		obj := workload.Object{
			ID: req.ID, Seed: req.Seed, Blocks: req.Blocks,
			BlockBytes: req.BlockBytes, BitrateBitsPerSec: req.BitrateBitsPerSec,
		}
		if obj.BlockBytes == 0 {
			obj.BlockBytes = s.Config().BlockBytes
		}
		return nil, s.AddObject(obj)
	})
	if err != nil {
		if isDuplicateObject(err) {
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
			return
		}
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"object": req.ID})
}

// isDuplicateObject recognizes the catalog's duplicate-ID/seed rejections,
// which carry no typed sentinel (they predate the admin surface). Mapped to
// 409 so a migration retry can treat "already there" as success.
func isDuplicateObject(err error) bool {
	return err != nil && strings.Contains(err.Error(), "duplicate object")
}

// handleAdminRemoveObject deletes an object and its blocks. Removal with
// active streams is refused with 409 unless ?force=1, which stops the
// object's streams first — the semantics a cluster migration wants when it
// evicts an object from its old home shard.
func (g *Gateway) handleAdminRemoveObject(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	force := r.URL.Query().Get("force") == "1"
	v, err := g.exec(r.Context(), true, func(s *cm.Server) (any, error) {
		stopped := 0
		if force {
			stopped = s.StopObjectStreams(id)
			g.dp.closeObject(id)
		}
		if err := s.RemoveObject(id); err != nil {
			return nil, err
		}
		return map[string]int{"object": id, "streamsStopped": stopped}, nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleReplication reports the journal-shipping leader's view: durable
// frontier, replication epoch, and every live follower connection. 501
// when this gateway runs without a replication leader.
func (g *Gateway) handleReplication(w http.ResponseWriter, r *http.Request) {
	if g.cfg.ReplLeader == nil {
		writeJSON(w, http.StatusNotImplemented,
			map[string]string{"error": "gateway: replication not enabled (serve -repl-addr)"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"role": "leader", "leader": g.cfg.ReplLeader.Status()})
}

// Handler returns the gateway's HTTP handler with the per-request deadline
// applied. Long-lived endpoints — chunked session streams and locator delta
// long-polls — are exempt: a stream lives as long as its session plays, and
// a delta poll parks until the feed moves; both bound themselves.
func (g *Gateway) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isLongLived(r) {
			g.mux.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		g.mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// isLongLived recognizes the endpoints exempt from the per-request deadline.
func isLongLived(r *http.Request) bool {
	if r.Method != http.MethodGet {
		return false
	}
	return r.URL.Path == "/v1/locator/deltas" ||
		(strings.HasPrefix(r.URL.Path, "/v1/sessions/") && strings.HasSuffix(r.URL.Path, "/stream"))
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds is the Retry-After hint: one round, at least a second.
func (g *Gateway) retryAfterSeconds() string {
	s := int(math.Ceil(g.round.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// writeError maps typed server/gateway errors to protocol outcomes: bad
// names are 404, pressure is 503 with Retry-After, control conflicts are
// 409, deadlines are 504, everything else is a 500.
func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	var status int
	switch {
	case errors.Is(err, cm.ErrUnknownObject),
		errors.Is(err, cm.ErrUnknownStream),
		errors.Is(err, cm.ErrBlockOutOfRange):
		status = http.StatusNotFound
	case errors.Is(err, cm.ErrAdmissionRejected),
		errors.Is(err, ErrOverloaded),
		errors.Is(err, ErrDraining),
		errors.Is(err, cm.ErrEpochFenced),
		errors.Is(err, cm.ErrStaleRead):
		// Fenced and stale replica reads are retryable by contract: the
		// condition clears as soon as the replica applies further.
		w.Header().Set("Retry-After", g.retryAfterSeconds())
		status = http.StatusServiceUnavailable
	case errors.Is(err, cm.ErrBusy),
		errors.Is(err, ErrStreamAttached),
		errors.Is(err, disk.ErrBadHealthTransition),
		errors.Is(err, disk.ErrDiskRebuilding):
		status = http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	default:
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// pathInt parses an integer path segment.
func pathInt(r *http.Request, name string) (int, error) {
	v, err := strconv.Atoi(r.PathValue(name))
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, r.PathValue(name))
	}
	return v, nil
}

// decodeBody decodes a bounded JSON request body into v. An empty body is
// allowed and leaves v untouched.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := g.Status()
	body := map[string]any{
		"status":       "ok",
		"rounds":       st.Rounds,
		"disks":        st.Disks,
		"degraded":     st.Degraded,
		"reorganizing": st.Reorganizing,
	}
	code := http.StatusOK
	if st.Journal != nil {
		// Durability status: journal position plus what the last recovery
		// found (torn tail, dropped segments/checkpoints).
		body["journal"] = st.Journal
		if st.Journal.Err != "" {
			// The server still serves, but nothing new is durable: surface
			// it where load balancers look.
			body["status"] = "journal-failed"
		}
	}
	if st.Draining {
		body["status"] = "draining"
		w.Header().Set("Retry-After", g.retryAfterSeconds())
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// handleCheckpoint forces a checkpoint now — operators call it before
// planned maintenance to make recovery instant. 501 without a store; 409
// while a reorganization is draining or the array is degraded (cm.ErrBusy:
// a checkpoint taken then would restore an all-healthy array and strand the
// journaled fail/rebuild events).
func (g *Gateway) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Store == nil {
		writeJSON(w, http.StatusNotImplemented,
			map[string]string{"error": "gateway: no durable store attached (serve --data-dir)"})
		return
	}
	v, err := g.exec(r.Context(), false, func(s *cm.Server) (any, error) {
		lsn, err := g.cfg.Store.Checkpoint(s)
		if err != nil {
			return nil, err
		}
		return map[string]any{"lsn": lsn}, nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleMetrics serves the registry in Prometheus text exposition format:
// gateway latency histograms, per-disk load gauges, round and migration
// counters, journal fsync stats — everything the observers publish.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := g.reg.WritePrometheus(w); err != nil {
		g.logf("gateway: metrics: %v", err)
	}
}

// handleStatus serves the JSON status view (the old /v1/metrics payload):
// one structured snapshot for dashboards that want state, not samples.
func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Status())
}

// handleTrace dumps the span ring, oldest first — the recent control-plane
// history: rounds with migrations, scale operations, failures, rebuilds.
func (g *Gateway) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"total": g.trace.Total(),
		"spans": g.trace.Dump(),
	})
}

func (g *Gateway) handleObjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.snap.Load().Objects())
}

// readResponse is the payload of the hot-path lookup endpoint.
type readResponse struct {
	Object       int  `json:"object"`
	Block        int  `json:"block"`
	Disk         int  `json:"disk"`
	Healthy      bool `json:"healthy"`
	Reorganizing bool `json:"reorganizing"`
}

// handleRead is the concurrent read path: no mailbox, no locks — one
// atomic pointer load and a SafeLocator lookup. Its latency is recorded
// split by phase (admission = parse+validate, locate = snapshot lookup,
// service = response delivery); the instrumentation is atomic cells only
// and adds zero allocations per request.
func (g *Gateway) handleRead(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	idx, err := pathInt(r, "idx")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	t1 := time.Now()
	sn := g.snap.Load()
	d, err := sn.Locate(id, idx)
	t2 := time.Now()
	if err != nil {
		g.m.readErrors.Inc()
		g.writeError(w, err)
		return
	}
	g.m.reads.Inc()
	writeJSON(w, http.StatusOK, readResponse{
		Object:       id,
		Block:        idx,
		Disk:         d,
		Healthy:      sn.Healthy(d),
		Reorganizing: sn.Reorganizing(),
	})
	t3 := time.Now()
	g.m.observeRead(t1.Sub(t0), t2.Sub(t1), t3.Sub(t2))
}

// sessionResponse describes one session.
type sessionResponse struct {
	Session  int    `json:"session"`
	Object   int    `json:"object"`
	Position int    `json:"position"`
	State    string `json:"state"`
	Served   int    `json:"served"`
	Hiccups  int    `json:"hiccups"`
	Blocks   int    `json:"blocks"`
}

func sessionBody(st *cm.Stream, blocks int) sessionResponse {
	return sessionResponse{
		Session:  st.ID,
		Object:   st.Object,
		Position: st.Position,
		State:    st.State.String(),
		Served:   st.Served,
		Hiccups:  st.Hiccups,
		Blocks:   blocks,
	}
}

func (g *Gateway) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		g.m.sessionsRejected.Inc()
		g.writeError(w, ErrDraining)
		return
	}
	var req struct {
		Object   int  `json:"object"`
		Position *int `json:"position"`
		// Paused admits the session without starting playback: the slot is
		// reserved now, the pacer delivers nothing until a consumer attaches
		// (GET …/stream resumes it). The cure for admission-to-attach head
		// drops when the two requests race the round driver.
		Paused bool `json:"paused"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// The discard hook stops a stream whose opener has already been told the
	// open timed out: the client will retry and get a fresh session, so the
	// orphan must not play on, holding round capacity nobody is counting.
	discard := func(v any) {
		id := v.(sessionResponse).Session
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
		defer cancel()
		_, _ = g.exec(ctx, false, func(s *cm.Server) (any, error) {
			return nil, s.StopStream(id)
		})
	}
	v, err := g.execDiscard(r.Context(), false, func(s *cm.Server) (any, error) {
		start := s.StartStream
		if req.Paused {
			start = s.StartStreamPaused
		}
		st, err := start(req.Object)
		if err != nil {
			return nil, err
		}
		if req.Position != nil {
			if err := s.SeekStream(st.ID, *req.Position); err != nil {
				_ = s.StopStream(st.ID)
				return nil, err
			}
		}
		obj, err := s.Object(st.Object)
		if err != nil {
			return nil, err
		}
		return sessionBody(st, obj.Blocks), nil
	}, discard)
	if err != nil {
		g.m.sessionsRejected.Inc()
		g.writeError(w, err)
		return
	}
	g.m.sessionsOpened.Inc()
	writeJSON(w, http.StatusCreated, v)
}

func (g *Gateway) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	v, err := g.exec(r.Context(), false, func(s *cm.Server) (any, error) {
		st, err := s.Stream(id)
		if err != nil {
			return nil, err
		}
		obj, err := s.Object(st.Object)
		if err != nil {
			return nil, err
		}
		return sessionBody(st, obj.Blocks), nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (g *Gateway) handleSeek(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var req struct {
		Position int `json:"position"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	v, err := g.exec(r.Context(), false, func(s *cm.Server) (any, error) {
		if err := s.SeekStream(id, req.Position); err != nil {
			return nil, err
		}
		st, err := s.Stream(id)
		if err != nil {
			return nil, err
		}
		obj, err := s.Object(st.Object)
		if err != nil {
			return nil, err
		}
		return sessionBody(st, obj.Blocks), nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (g *Gateway) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	_, err = g.exec(r.Context(), false, func(s *cm.Server) (any, error) {
		if err := s.StopStream(id); err != nil {
			return nil, err
		}
		// StopStream outside Tick emits no StreamClosed; end any attached
		// streaming consumer here, on the owner goroutine.
		g.dp.closeStream(id, dataplane.CloseStopped)
		return nil, nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// scaleResponse summarizes an accepted scaling operation.
type scaleResponse struct {
	Op           string  `json:"op"`
	NBefore      int     `json:"nBefore"`
	NAfter       int     `json:"nAfter"`
	Moves        int     `json:"moves"`
	MoveFraction float64 `json:"moveFraction"`
}

func (g *Gateway) handleScale(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Add          int   `json:"add"`
		Remove       []int `json:"remove"`
		Redistribute bool  `json:"redistribute"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	modes := 0
	if req.Add > 0 {
		modes++
	}
	if len(req.Remove) > 0 {
		modes++
	}
	if req.Redistribute {
		modes++
	}
	if modes != 1 {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": `specify exactly one of "add", "remove", or "redistribute"`})
		return
	}
	v, err := g.exec(r.Context(), true, func(s *cm.Server) (any, error) {
		var (
			plan *reorg.Plan
			op   string
			err  error
		)
		switch {
		case req.Add > 0:
			op = "add"
			plan, err = s.ScaleUp(req.Add)
		case len(req.Remove) > 0:
			op = "remove"
			plan, err = s.ScaleDown(req.Remove...)
		default:
			op = "redistribute"
			plan, err = s.FullRedistribute()
		}
		if err != nil {
			return nil, err
		}
		g.inFlight = true
		return scaleResponse{
			Op:           op,
			NBefore:      plan.NBefore,
			NAfter:       plan.NAfter,
			Moves:        len(plan.Moves),
			MoveFraction: plan.MoveFraction(),
		}, nil
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (g *Gateway) handleDiskFail(w http.ResponseWriter, r *http.Request) {
	g.handleDiskOp(w, r, "failed", (*cm.Server).FailDisk)
}

func (g *Gateway) handleDiskRepair(w http.ResponseWriter, r *http.Request) {
	g.handleDiskOp(w, r, "repairing", (*cm.Server).RepairDisk)
}

func (g *Gateway) handleDiskOp(w http.ResponseWriter, r *http.Request, verb string, op func(*cm.Server, int) error) {
	id, err := pathInt(r, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	_, err = g.exec(r.Context(), true, func(s *cm.Server) (any, error) {
		return nil, op(s, id)
	})
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"disk": id, "state": verb})
}
