package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"scaddar/internal/bufpool"
	"scaddar/internal/dataplane"
)

// drainToEnd reads a stream response until its end frame and returns the
// close reason.
func drainToEnd(t *testing.T, resp *http.Response) dataplane.CloseReason {
	t.Helper()
	br := bufio.NewReader(resp.Body)
	for {
		f, err := dataplane.ReadFrame(br)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if f.End {
			return f.Reason
		}
	}
}

// TestStreamBufferLifecycle pins the payload buffer ownership chain: after
// exercising every way a chunk's life can end — framed and flushed to a
// client, dropped on a deadline miss, abandoned in the buffer when the
// session is evicted, swept when the consumer disconnects mid-stream, and
// the paused-open attach — the pool's in-use gauge must return to its
// baseline. Any other outcome means some path dropped (or double-kept) a
// reference.
func TestStreamBufferLifecycle(t *testing.T) {
	base := bufpool.InUse()

	// Short objects for the paths that play to completion.
	_, tsA := newStreamGateway(t, 4, 2, 16, nil)
	snapA := fetchWireSnapshot(t, tsA.URL)

	// Full playback: every chunk is framed, flushed, and released.
	id := openSession(t, tsA.URL, snapA.Objects[0].ID)
	resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", tsA.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	if reason := drainToEnd(t, resp); reason != dataplane.CloseDone {
		t.Fatalf("full playback ended %v, want done", reason)
	}
	resp.Body.Close()

	// Paused-open: the session exists with no consumer before the stream
	// attach resumes it; nothing may be delivered (or leaked) in between.
	body := strings.NewReader(fmt.Sprintf(`{"object":%d, "paused": true}`, snapA.Objects[1].ID))
	presp, err := http.Post(tsA.URL+"/v1/sessions", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var opened struct {
		Session int `json:"session"`
	}
	if presp.StatusCode != http.StatusCreated {
		t.Fatalf("open paused: status %d", presp.StatusCode)
	}
	if err := json.NewDecoder(presp.Body).Decode(&opened); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	resp, err = http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", tsA.URL, opened.Session))
	if err != nil {
		t.Fatal(err)
	}
	if reason := drainToEnd(t, resp); reason != dataplane.CloseDone {
		t.Fatalf("paused-open playback ended %v, want done", reason)
	}
	resp.Body.Close()

	// Long objects and a tiny buffer for the paths that abandon mid-stream.
	gB, tsB := newStreamGateway(t, 4, 2, 2000, func(c *Config) {
		c.StreamBuffer = 1
		c.StreamEvictAfter = 4
	})
	snapB := fetchWireSnapshot(t, tsB.URL)

	// Eviction: a consumer that never reads. Once the socket and session
	// buffers fill, every round's chunk is a miss (released by Deliver)
	// until the consecutive-miss limit evicts the session; whatever is
	// still buffered then is swept by the handler's exit.
	idSlow := openSession(t, tsB.URL, snapB.Objects[0].ID)
	respSlow, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", tsB.URL, idSlow))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, gB, "slow client eviction", func(st Status) bool {
		return st.Gateway.StreamEvictions >= 1
	})
	if reason := drainToEnd(t, respSlow); reason != dataplane.CloseEvicted {
		t.Fatalf("slow stream ended %v, want evicted", reason)
	}
	respSlow.Body.Close()

	// Mid-stream disconnect: read a few frames, then hang up. The handler
	// must stop the server-side stream and release everything it still
	// holds, including chunks buffered between Deliver and the drain loop.
	idGone := openSession(t, tsB.URL, snapB.Objects[1].ID)
	respGone, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream", tsB.URL, idGone))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(respGone.Body)
	for i := 0; i < 3; i++ {
		if _, err := dataplane.ReadFrame(br); err != nil {
			t.Fatalf("frame %d before disconnect: %v", i, err)
		}
	}
	respGone.Body.Close()
	waitStatus(t, gB, "abandoned streams stopped", func(st Status) bool {
		return st.ActiveStreams == 0
	})

	// Quiesce: with no consumers and no playing streams, every pooled
	// buffer must be back in its pool. Poll briefly — the last handler's
	// cleanup and the final round may still be in flight.
	deadline := time.Now().Add(10 * time.Second)
	for bufpool.InUse() != base {
		if time.Now().After(deadline) {
			t.Fatalf("bufpool in-use = %d, want %d: payload buffers leaked", bufpool.InUse(), base)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
