package gateway

import (
	"time"

	"scaddar/internal/obs"
)

// gwMetrics holds the gateway's registry cells. Counter/histogram updates
// are lock-free and allocation-free, so the request handlers use them
// directly; the phase histogram children are resolved once here, never on
// the hot path (HistogramVec.With takes a mutex).
type gwMetrics struct {
	reads            *obs.Counter
	readErrors       *obs.Counter
	overloads        *obs.Counter
	sessionsOpened   *obs.Counter
	sessionsRejected *obs.Counter
	tickErrors       *obs.Counter

	// Streaming data plane (stream.go): chunk deliveries into session
	// buffers, deadline misses (hiccups), backpressure evictions, bytes
	// written to streaming responses, and the locator feed's traffic.
	streamsAttached *obs.Counter
	streamChunks    *obs.Counter
	streamBytes     *obs.Counter
	streamFlushes   *obs.Counter
	streamMisses    *obs.Counter
	streamEvictions *obs.Counter
	deltasPublished *obs.Counter
	snapshotFetches *obs.Counter
	deltaPolls      *obs.Counter

	tickTime *obs.Histogram

	readTotal     *obs.Histogram
	readAdmission *obs.Histogram
	readLocate    *obs.Histogram
	readService   *obs.Histogram
}

// newGwMetrics registers the gateway's metric families in reg.
func newGwMetrics(reg *obs.Registry) *gwMetrics {
	phases := reg.NewHistogramVec("gateway_read_phase_seconds",
		"Read-path latency split by phase: admission (parse+validate), locate (snapshot lookup), service (response delivery).",
		"phase", obs.LatencyBuckets())
	return &gwMetrics{
		reads:            reg.NewCounter("gateway_reads_total", "Block-location lookups served from the snapshot."),
		readErrors:       reg.NewCounter("gateway_read_errors_total", "Lookups that failed (bad object or index)."),
		overloads:        reg.NewCounter("gateway_overloads_total", "Requests rejected because the command mailbox was full."),
		sessionsOpened:   reg.NewCounter("gateway_sessions_opened_total", "Successful session admissions."),
		sessionsRejected: reg.NewCounter("gateway_sessions_rejected_total", "Session admissions refused (admission control, overload, draining)."),
		tickErrors:       reg.NewCounter("gateway_tick_errors_total", "Rounds whose Tick returned an error."),

		streamsAttached: reg.NewCounter("gateway_streams_attached_total", "Streaming consumers attached to sessions."),
		streamChunks:    reg.NewCounter("gateway_stream_chunks_total", "Chunks delivered into session buffers by the round driver."),
		streamBytes:     reg.NewCounter("gateway_stream_bytes_total", "Payload bytes written to streaming responses."),
		streamFlushes:   reg.NewCounter("gateway_stream_flushes_total", "Write+flush syscall pairs issued by streaming responses (a coalesced drain covers many chunks per flush)."),
		streamMisses:    reg.NewCounter("gateway_stream_misses_total", "Round-deadline misses (chunks dropped because a session buffer was full)."),
		streamEvictions: reg.NewCounter("gateway_stream_evictions_total", "Sessions evicted after too many consecutive deadline misses."),
		deltasPublished: reg.NewCounter("gateway_locator_deltas_total", "Deltas published to the locator feed."),
		snapshotFetches: reg.NewCounter("gateway_locator_snapshots_total", "Full locator snapshot fetches served."),
		deltaPolls:      reg.NewCounter("gateway_locator_polls_total", "Locator delta long-poll requests served."),

		tickTime: reg.NewHistogram("gateway_tick_seconds",
			"Wall-clock time the owner goroutine spent executing one round.", obs.LatencyBuckets()),

		readTotal: reg.NewHistogram("gateway_read_seconds",
			"End-to-end read-path latency (all phases).", obs.LatencyBuckets()),
		readAdmission: phases.With("admission"),
		readLocate:    phases.With("locate"),
		readService:   phases.With("service"),
	}
}

// observeRead records one read's phase split. It is the only instrumentation
// on the hot path and performs no allocation — guarded by
// TestReadInstrumentationZeroAlloc.
func (m *gwMetrics) observeRead(admission, locate, service time.Duration) {
	m.readAdmission.ObserveDuration(admission)
	m.readLocate.ObserveDuration(locate)
	m.readService.ObserveDuration(service)
	m.readTotal.Observe(admission.Seconds() + locate.Seconds() + service.Seconds())
}
