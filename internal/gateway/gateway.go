// Package gateway turns the round-based cm.Server simulator into a live
// concurrent network service. The server itself is single-owner: one
// goroutine may call Tick and the control surface. The gateway supplies
// that owner — a wall-clock round driver running Tick on a real ticker —
// and serializes every control operation (open/seek/close session, scaling,
// failure drills) into it through a bounded command mailbox: a channel of
// closures with per-command reply channels.
//
// The read path does not pay for that serialization. Block-location
// lookups (GET /v1/objects/{id}/blocks/{idx}) run concurrently in the HTTP
// handlers against an immutable cm.LocatorSnapshot — backed by
// scaddar.SafeLocator, the paper's O(j) directory-free access function —
// republished through an atomic pointer after every placement-changing
// event and after each round while a migration drains. This is the
// architectural payoff of SCADDAR's AO1 property: because lookup needs no
// directory and no lock, the hot path scales with cores while scaling
// operations proceed underneath it.
//
// Overload surfaces at the edge, never as round overcommitment: admission
// rejections and a full mailbox both return 503 with Retry-After, requests
// carry per-request deadlines, and shutdown drains gracefully — new
// sessions are refused while active ones play out, bounded by the caller's
// context.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
	"scaddar/internal/obs"
	"scaddar/internal/repl"
	"scaddar/internal/scaddar"
	"scaddar/internal/store"
)

// Typed gateway errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrOverloaded is returned when the command mailbox is full — the
	// control plane is backlogged and the client should retry later.
	ErrOverloaded = fmt.Errorf("gateway: command mailbox full")
	// ErrDraining is returned for work refused because the gateway is
	// shutting down.
	ErrDraining = fmt.Errorf("gateway: draining")
)

// Config tunes the gateway around a server.
type Config struct {
	// Factory builds the per-object generators for locator snapshots; it
	// must match the generator family of the server strategy's X0Func.
	// Required.
	Factory scaddar.SourceFactory
	// Round is the wall-clock round period driven by the ticker. Zero
	// means the server's configured (simulated) round length.
	Round time.Duration
	// MailboxDepth bounds the command backlog; commands beyond it are
	// rejected with ErrOverloaded. Zero means 64.
	MailboxDepth int
	// RequestTimeout is the per-request deadline applied by Handler.
	// Zero means 5s.
	RequestTimeout time.Duration
	// Store, when non-nil, is the durable state store the server journals
	// into. The gateway group-commits it once per round (so a crash loses
	// at most the current round's data events), syncs it before
	// acknowledging mutating control operations (scale, fail, repair),
	// checkpoints it automatically, and exposes POST /v1/admin/checkpoint.
	// The server must already be bootstrapped into or recovered from it.
	Store *store.Store
	// CheckpointEvery triggers an automatic checkpoint once that many
	// events accumulate past the last one (attempted at quiescent rounds;
	// a busy server retries next round). Zero means 1024.
	CheckpointEvery int
	// Registry, when non-nil, is the metrics registry the gateway publishes
	// into (and serves at GET /v1/metrics in Prometheus text format). Nil
	// means a fresh registry owned by the gateway. Pass a shared one to
	// expose the same cells on a debug listener or to adopt the registry of
	// a server this one replaces.
	Registry *obs.Registry
	// TraceRing, when non-nil, is the span ring the server's event stream
	// appends to, served at GET /v1/trace. Nil means a fresh 4096-span ring.
	// Pass the ring the store replayed into during recovery and the live
	// trace continues where the retrace ended.
	TraceRing *obs.Ring
	// ReplLeader, when non-nil, is the journal-shipping replication leader
	// running beside this gateway; its follower connections are reported at
	// GET /v1/replication. The leader's lifecycle is the caller's (serve
	// starts and stops it with the store).
	ReplLeader *repl.Leader
	// StreamBuffer is the per-session chunk buffer capacity for streaming
	// consumers (GET /v1/sessions/{id}/stream). Zero means the dataplane
	// default (4 chunks).
	StreamBuffer int
	// StreamEvictAfter is how many consecutive deadline misses evict a
	// streaming session. Zero means the dataplane default (8).
	StreamEvictAfter int
	// FeedCapacity bounds the locator delta feed ring; clients further
	// behind than this must refetch the full snapshot. Zero means 1024.
	FeedCapacity int
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// command is one serialized control operation: a closure executed by the
// owner goroutine with its result sent back on a buffered reply channel.
type command struct {
	// ctx is the submitter's context: a command whose waiter has already
	// given up (mailbox queue wait outran the request deadline) is skipped
	// instead of executed, so its side effects — an attached stream
	// consumer, an opened session — cannot leak with nobody to own them.
	ctx     context.Context
	fn      func(*cm.Server) (any, error)
	mutates bool
	reply   chan cmdResult
	// discard, when set, receives the command's successful result if the
	// submitter gave up before the reply arrived — the compensation that
	// undoes side effects (an attached consumer, an opened session) the
	// skip in execute could not prevent because fn was already running.
	discard func(v any)
}

type cmdResult struct {
	v   any
	err error
}

// Counters are the gateway-level activity counters, all updated with
// atomics from the request handlers.
type Counters struct {
	// Reads counts block-location lookups served from the snapshot.
	Reads int64 `json:"reads"`
	// ReadErrors counts lookups that failed (bad object or index).
	ReadErrors int64 `json:"readErrors"`
	// Overloads counts requests rejected because the mailbox was full.
	Overloads int64 `json:"overloads"`
	// SessionsOpened counts successful session admissions.
	SessionsOpened int64 `json:"sessionsOpened"`
	// SessionsRejected counts admission-control rejections.
	SessionsRejected int64 `json:"sessionsRejected"`
	// TickErrors counts rounds whose Tick returned an error.
	TickErrors int64 `json:"tickErrors"`
	// StreamChunks counts chunks delivered into session buffers.
	StreamChunks int64 `json:"streamChunks"`
	// StreamBytes counts payload bytes written to streaming responses.
	StreamBytes int64 `json:"streamBytes"`
	// StreamFlushes counts Write+flush syscall pairs issued by streaming
	// responses; chunks/flushes is the coalescing factor of the drain loop.
	StreamFlushes int64 `json:"streamFlushes"`
	// StreamMisses counts round-deadline misses (dropped chunks).
	StreamMisses int64 `json:"streamMisses"`
	// StreamEvictions counts sessions evicted for falling behind the pacer.
	StreamEvictions int64 `json:"streamEvictions"`
	// DeltasPublished counts locator feed entries.
	DeltasPublished int64 `json:"deltasPublished"`
}

// Status is the owner-published view of the server, extended with gateway
// counters at serve time. It is the payload of GET /v1/status (the
// machine-scrapeable Prometheus form of the same state lives at
// GET /v1/metrics).
type Status struct {
	// Rounds is the number of rounds ticked.
	Rounds int `json:"rounds"`
	// Disks is the current logical disk count.
	Disks int `json:"disks"`
	// Objects is the number of loaded objects.
	Objects int `json:"objects"`
	// ActiveStreams is the number of playing sessions.
	ActiveStreams int `json:"activeStreams"`
	// Reorganizing reports an in-flight migration.
	Reorganizing bool `json:"reorganizing"`
	// MigrationRemaining is the number of pending migration moves.
	MigrationRemaining int `json:"migrationRemaining"`
	// Degraded reports a failed or rebuilding disk.
	Degraded bool `json:"degraded"`
	// RebuildRemaining is the number of pending rebuild items.
	RebuildRemaining int `json:"rebuildRemaining"`
	// Draining reports graceful shutdown in progress.
	Draining bool `json:"draining"`
	// BinAddr is the binary lookup listener's address (docs/PROTOCOL.md),
	// when one is serving. Clients discover the fast read path here.
	BinAddr string `json:"binAddr,omitempty"`
	// Server is the simulator's own metrics struct.
	Server cm.Metrics `json:"server"`
	// Gateway is the gateway-level counter set.
	Gateway Counters `json:"gateway"`
	// Journal is the durable store's status, when one is attached.
	Journal *store.Status `json:"journal,omitempty"`
}

// Gateway is the concurrent HTTP front end over one cm.Server.
type Gateway struct {
	cfg   Config
	srv   *cm.Server
	round time.Duration
	mux   *http.ServeMux
	cmds  chan command

	// snap and status are the owner-published read-path views.
	snap   atomic.Pointer[cm.LocatorSnapshot]
	status atomic.Pointer[Status]

	draining atomic.Bool
	stop     chan struct{} // closed by Shutdown/Close to end the owner loop
	closed   chan struct{} // closed by the owner loop on exit
	stopOnce sync.Once

	// closeHooks are auxiliary shutdowns (the binary lookup listener) run
	// once after the round driver stops.
	hooksMu    sync.Mutex
	closeHooks []func()
	hooksOnce  sync.Once
	// binAddr is the advertised binary lookup address (set by ServeBin).
	binAddr atomic.Value // string

	// reg/trace/m are the observability layer: the registry served at
	// /v1/metrics, the span ring served at /v1/trace, and the gateway's own
	// registry cells (see observe.go).
	reg   *obs.Registry
	trace *obs.Ring
	m     *gwMetrics

	// dp is the streaming data plane: per-session chunk buffers fed by the
	// server's delivery sink, and the snapshot+delta locator feed (stream.go).
	dp *dataPlane

	// inFlight tracks a started scaling operation until it is finished and
	// cleared; owner-goroutine only.
	inFlight bool
}

// New wraps a server in a gateway and starts the round driver. The gateway
// takes ownership of the server: no other goroutine may touch it except
// through Exec. Objects should be loaded before New is called (or via Exec
// afterwards).
func New(srv *cm.Server, cfg Config) (*Gateway, error) {
	if srv == nil {
		return nil, fmt.Errorf("gateway: nil server")
	}
	if cfg.Factory == nil {
		return nil, fmt.Errorf("gateway: config needs a source factory")
	}
	if cfg.Round == 0 {
		cfg.Round = srv.Config().Round
	}
	if cfg.Round <= 0 {
		return nil, fmt.Errorf("gateway: round %v must be positive", cfg.Round)
	}
	if cfg.MailboxDepth == 0 {
		cfg.MailboxDepth = 64
	}
	if cfg.MailboxDepth < 1 {
		return nil, fmt.Errorf("gateway: mailbox depth %d must be positive", cfg.MailboxDepth)
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 1024
	}
	if cfg.CheckpointEvery < 1 {
		return nil, fmt.Errorf("gateway: checkpoint threshold %d must be positive", cfg.CheckpointEvery)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	trace := cfg.TraceRing
	if trace == nil {
		trace = obs.NewRing(4096)
	}
	g := &Gateway{
		cfg:    cfg,
		srv:    srv,
		round:  cfg.Round,
		cmds:   make(chan command, cfg.MailboxDepth),
		stop:   make(chan struct{}),
		closed: make(chan struct{}),
		reg:    reg,
		trace:  trace,
		m:      newGwMetrics(reg),
	}
	// Wire the server and store into the shared registry and ring. The
	// gateway owns the server from here on, so installing the observer now
	// is safe; registration is idempotent, so adopting a registry another
	// server already populated reuses its cells.
	srv.SetObserver(cm.NewObserver(reg))
	srv.SetTraceRing(trace)
	if cfg.Store != nil {
		cfg.Store.Observe(reg)
		cfg.Store.SetTraceRing(trace)
	}
	// Fail fast if the strategy cannot produce concurrent locators.
	if err := g.publishSnapshot(); err != nil {
		return nil, err
	}
	// Wire the streaming data plane: delivery sink, event-sink tee, and the
	// initial wire-format locator snapshot (fails fast for the same reason).
	dp, err := newDataPlane(g, srv)
	if err != nil {
		return nil, err
	}
	g.dp = dp
	g.publishStatus()
	g.routes()
	go g.run()
	return g, nil
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// run is the owner goroutine: the only code that touches g.srv. It
// advances rounds on the wall-clock ticker and executes mailbox commands
// between them.
func (g *Gateway) run() {
	defer close(g.closed)
	// Unblock every streaming handler on exit: nobody else will ever close
	// their chunk channels once the owner loop is gone.
	defer g.dp.closeAll(dataplane.CloseStopped)
	ticker := time.NewTicker(g.round)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.tick()
		case c := <-g.cmds:
			g.execute(c)
		}
	}
}

// tick advances one round and keeps the published views fresh.
func (g *Gateway) tick() {
	start := time.Now()
	defer func() { g.m.tickTime.ObserveDuration(time.Since(start)) }()
	if err := g.srv.Tick(); err != nil {
		g.m.tickErrors.Inc()
		g.logf("gateway: tick: %v", err)
	}
	// Clear a drained migration: a completed scale-up immediately, a
	// drained scale-down once its rebuild backlog (if any) is empty too —
	// until then FinishReorganization refuses and we retry next round.
	if g.inFlight && !g.srv.Reorganizing() {
		if err := g.srv.FinishReorganization(); err == nil {
			g.inFlight = false
			g.republish()
			g.logf("gateway: reorganization complete, %d disks", g.srv.N())
		}
	}
	if g.inFlight || g.srv.Degraded() {
		g.republish()
	}
	g.dp.flush()
	g.syncStore()
	g.publishStatus()
}

// syncStore is the journal's group-commit point: every event this round
// becomes durable here, and once enough events accumulate past the last
// checkpoint a new one is cut. A mid-reorganization or degraded server
// refuses to checkpoint (cm.ErrBusy); the attempt simply repeats next
// round, once the migration and any rebuild backlog have drained.
func (g *Gateway) syncStore() {
	st := g.cfg.Store
	if st == nil {
		return
	}
	if err := st.Sync(); err != nil {
		g.logf("gateway: journal sync: %v", err)
		return
	}
	if st.EventsSinceCheckpoint() >= uint64(g.cfg.CheckpointEvery) {
		lsn, err := st.Checkpoint(g.srv)
		switch {
		case err == nil:
			g.logf("gateway: checkpoint at LSN %d", lsn)
		case errors.Is(err, cm.ErrBusy):
			// Reorganizing: retry once the drain completes.
		default:
			g.logf("gateway: checkpoint: %v", err)
		}
	}
}

// execute runs one mailbox command in the owner goroutine. Mutating
// commands — explicit operator actions like scale, fail, and repair — are
// made durable before the reply is sent, so the acknowledgement never
// outruns the journal; group commit stays for per-round data events only.
// A failed sync is sticky in the store and surfaces via healthz.
//
// A command abandoned by its submitter (context already expired while it
// sat in the queue) is answered with the context error and never run: the
// submitter can only have reported failure, so running the command would
// detach its side effects from any owner. The check is best-effort — a
// deadline landing between it and the reply still wins — but it closes the
// seconds-wide queue-wait window that matters under an open stampede.
func (g *Gateway) execute(c command) {
	if c.ctx != nil && c.ctx.Err() != nil {
		c.reply <- cmdResult{err: c.ctx.Err()}
		return
	}
	v, err := c.fn(g.srv)
	if err == nil && c.mutates {
		g.republish()
		g.dp.flush()
		if st := g.cfg.Store; st != nil {
			if serr := st.Sync(); serr != nil {
				g.logf("gateway: journal sync after control op: %v", serr)
			}
		}
	}
	g.publishStatus()
	c.reply <- cmdResult{v: v, err: err}
}

// republish rebuilds the locator snapshot, keeping the old one on error.
func (g *Gateway) republish() {
	if err := g.publishSnapshot(); err != nil {
		g.logf("gateway: snapshot: %v", err)
	}
}

func (g *Gateway) publishSnapshot() error {
	sn, err := g.srv.BuildSnapshot(g.cfg.Factory)
	if err != nil {
		return err
	}
	g.snap.Store(sn)
	return nil
}

func (g *Gateway) publishStatus() {
	m := g.srv.Metrics()
	st := &Status{
		Rounds:             m.Rounds,
		Disks:              g.srv.N(),
		Objects:            g.srv.Objects(),
		ActiveStreams:      g.srv.ActiveStreams(),
		Reorganizing:       g.srv.Reorganizing(),
		MigrationRemaining: g.srv.MigrationRemaining(),
		Degraded:           g.srv.Degraded(),
		RebuildRemaining:   g.srv.RebuildRemaining(),
		Server:             m,
	}
	g.status.Store(st)
}

// Snapshot returns the current read-path locator snapshot.
func (g *Gateway) Snapshot() *cm.LocatorSnapshot { return g.snap.Load() }

// Status returns the current published status, with live gateway counters
// and the draining flag filled in.
func (g *Gateway) Status() Status {
	st := *g.status.Load()
	st.Draining = g.draining.Load()
	if a, _ := g.binAddr.Load().(string); a != "" {
		st.BinAddr = a
	}
	if g.cfg.Store != nil {
		js := g.cfg.Store.Status()
		st.Journal = &js
	}
	st.Gateway = Counters{
		Reads:            int64(g.m.reads.Value()),
		ReadErrors:       int64(g.m.readErrors.Value()),
		Overloads:        int64(g.m.overloads.Value()),
		SessionsOpened:   int64(g.m.sessionsOpened.Value()),
		SessionsRejected: int64(g.m.sessionsRejected.Value()),
		TickErrors:       int64(g.m.tickErrors.Value()),
		StreamChunks:     int64(g.m.streamChunks.Value()),
		StreamBytes:      int64(g.m.streamBytes.Value()),
		StreamFlushes:    int64(g.m.streamFlushes.Value()),
		StreamMisses:     int64(g.m.streamMisses.Value()),
		StreamEvictions:  int64(g.m.streamEvictions.Value()),
		DeltasPublished:  int64(g.m.deltasPublished.Value()),
	}
	return st
}

// Registry returns the metrics registry the gateway publishes into — the
// same cells served at GET /v1/metrics. Useful for exposing them on a
// separate debug listener.
func (g *Gateway) Registry() *obs.Registry { return g.reg }

// TraceRing returns the span ring the server's event stream appends to —
// the same spans served at GET /v1/trace.
func (g *Gateway) TraceRing() *obs.Ring { return g.trace }

// exec submits a command to the owner goroutine and waits for its reply,
// the context deadline, or gateway shutdown. A full mailbox returns
// ErrOverloaded immediately — backpressure at the edge instead of an
// unbounded queue.
func (g *Gateway) exec(ctx context.Context, mutates bool, fn func(*cm.Server) (any, error)) (any, error) {
	return g.execDiscard(ctx, mutates, fn, nil)
}

// execDiscard is exec for commands with side effects that must not outlive
// their submitter. A reply that raced the deadline is preferred over the
// deadline (the command ran; report its true outcome rather than a timeout
// the side effects don't match). If the command is truly abandoned —
// deadline fired before fn finished — discard receives the eventual
// successful result so the handler's compensation (detach, stop) can run;
// a nil discard makes this identical to exec.
func (g *Gateway) execDiscard(ctx context.Context, mutates bool, fn func(*cm.Server) (any, error), discard func(v any)) (any, error) {
	c := command{ctx: ctx, fn: fn, mutates: mutates, reply: make(chan cmdResult, 1), discard: discard}
	select {
	case <-g.closed:
		return nil, ErrDraining
	default:
	}
	select {
	case g.cmds <- c:
	default:
		g.m.overloads.Inc()
		return nil, ErrOverloaded
	}
	select {
	case r := <-c.reply:
		return r.v, r.err
	case <-ctx.Done():
		select {
		case r := <-c.reply:
			return r.v, r.err
		default:
		}
		g.abandon(c)
		return nil, ctx.Err()
	case <-g.closed:
		select {
		case r := <-c.reply:
			return r.v, r.err
		default:
		}
		return nil, ErrDraining
	}
}

// abandon watches a command whose submitter gave up before the reply
// arrived. execute skips expired commands when it can, but a command
// already running when the deadline fires completes with side effects
// nobody owns — the watcher waits for the reply every queued command
// eventually gets and hands a successful result to the discard hook.
// On gateway shutdown queued commands are never answered and closeAll
// tears the sessions down anyway, so the watcher just exits.
func (g *Gateway) abandon(c command) {
	if c.discard == nil {
		return
	}
	go func() {
		select {
		case r := <-c.reply:
			if r.err == nil {
				c.discard(r.v)
			}
		case <-g.closed:
			select {
			case r := <-c.reply:
				if r.err == nil {
					c.discard(r.v)
				}
			default:
			}
		}
	}()
}

// Exec runs fn serialized with the round driver — the only sanctioned way
// to touch the underlying server from outside. It is treated as mutating:
// the read-path snapshot is republished after it succeeds.
func (g *Gateway) Exec(ctx context.Context, fn func(*cm.Server) (any, error)) (any, error) {
	return g.exec(ctx, true, fn)
}

// Rounds returns the number of rounds ticked so far.
func (g *Gateway) Rounds() int { return g.status.Load().Rounds }

// Draining reports whether graceful shutdown has begun.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Shutdown drains the gateway gracefully: new sessions are refused
// immediately, rounds keep ticking until every active session has finished
// and any migration has drained (or ctx expires), then the round driver
// stops. It returns ctx.Err() if the deadline cut the drain short.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	defer g.halt()
	for {
		v, err := g.exec(ctx, false, func(s *cm.Server) (any, error) {
			return s.ActiveStreams() + s.MigrationRemaining(), nil
		})
		if err != nil {
			if err == ErrOverloaded {
				// Backlogged control plane: wait a round and re-ask.
				select {
				case <-time.After(g.round):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return err
		}
		if v.(int) == 0 {
			return nil
		}
		select {
		case <-time.After(g.round):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close stops the round driver immediately without draining sessions.
func (g *Gateway) Close() {
	g.draining.Store(true)
	g.halt()
}

func (g *Gateway) halt() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.closed
	g.hooksOnce.Do(func() {
		g.hooksMu.Lock()
		hooks := g.closeHooks
		g.hooksMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
}

// onClose registers a shutdown hook run once when the gateway halts.
func (g *Gateway) onClose(fn func()) {
	g.hooksMu.Lock()
	g.closeHooks = append(g.closeHooks, fn)
	g.hooksMu.Unlock()
}
