package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"scaddar/internal/obs"
	"scaddar/internal/store"
)

// scrape fetches /v1/metrics from the handler and parses the exposition.
func scrape(t testing.TB, h http.Handler) *obs.MetricSet {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/metrics: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/v1/metrics Content-Type %q", ct)
	}
	samples, err := obs.ParseText(rec.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return obs.NewMetricSet(samples)
}

// TestMetricsEndpointUnderScaleUp is the observability integration test:
// a store-backed gateway serves reads over real HTTP while a scale-up
// drains, and afterwards /v1/metrics exposes a consistent Prometheus view —
// gateway latency histograms, per-disk load gauges, migration counters, and
// journal fsync stats.
func TestMetricsEndpointUnderScaleUp(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, 4, 3, 60, nil)
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	g := newTestGateway2(t, srv, st)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	client := ts.Client()

	get := func(path string) int {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < 50; i++ {
		if code := get(fmt.Sprintf("/v1/objects/%d/blocks/%d", i%3, i)); code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, code)
		}
	}
	get("/v1/objects/99/blocks/0") // one read error

	rec, _ := doJSON(t, g.Handler(), http.MethodPost, "/v1/scale", map[string]any{"add": 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %s", rec.Code, rec.Body.String())
	}
	waitStatus(t, g, "migration drain", func(s Status) bool { return !s.Reorganizing })
	for i := 0; i < 20; i++ {
		get(fmt.Sprintf("/v1/objects/%d/blocks/%d", i%3, i))
	}
	// One more settled round so the owner goroutine republishes the gauges.
	time.Sleep(10 * time.Millisecond)

	ms := scrape(t, g.Handler())
	want := func(name string) float64 {
		t.Helper()
		v, ok := ms.Value(name)
		if !ok {
			t.Fatalf("metric %s missing from exposition", name)
		}
		return v
	}

	if v := want("gateway_reads_total"); v < 70 {
		t.Errorf("gateway_reads_total = %g, want >= 70", v)
	}
	if v := want("gateway_read_errors_total"); v < 1 {
		t.Errorf("gateway_read_errors_total = %g, want >= 1", v)
	}
	if h, ok := ms.Histogram("gateway_read_seconds", "", ""); !ok || h.Count < 70 {
		t.Errorf("gateway_read_seconds count = %d (found %v), want >= 70", h.Count, ok)
	}
	for _, phase := range []string{"admission", "locate", "service"} {
		h, ok := ms.Histogram("gateway_read_phase_seconds", "phase", phase)
		if !ok || h.Count == 0 {
			t.Errorf("gateway_read_phase_seconds{phase=%q} empty (found %v)", phase, ok)
		}
	}
	if h, ok := ms.Histogram("gateway_tick_seconds", "", ""); !ok || h.Count == 0 {
		t.Error("gateway_tick_seconds recorded no rounds")
	}

	if v := want("cm_disks"); v != 6 {
		t.Errorf("cm_disks = %g, want 6", v)
	}
	if v := want("cm_rounds_total"); v == 0 {
		t.Error("cm_rounds_total did not advance")
	}
	if v := want("cm_blocks_migrated_total"); v == 0 {
		t.Error("cm_blocks_migrated_total = 0 after a scale-up")
	}
	if v := want("cm_migration_pending"); v != 0 {
		t.Errorf("cm_migration_pending = %g after drain", v)
	}
	if v, ok := ms.LabelValue("cm_events_total", "kind", "scale-up-started"); !ok || v != 1 {
		t.Errorf("cm_events_total{kind=scale-up-started} = %g (found %v), want 1", v, ok)
	}

	// Per-disk load gauges cover all six disks and add up to the total.
	var loadSum float64
	for d := 0; d < 6; d++ {
		v, ok := ms.LabelValue("cm_disk_load_blocks", "disk", strconv.Itoa(d))
		if !ok {
			t.Fatalf("cm_disk_load_blocks{disk=%d} missing", d)
		}
		loadSum += v
	}
	if total := want("cm_total_blocks"); loadSum != total {
		t.Errorf("per-disk loads sum to %g, cm_total_blocks = %g", loadSum, total)
	}

	// The journal saw the scale-up: appends, group commits, latency samples.
	if v := want("store_appends_total"); v == 0 {
		t.Error("store_appends_total = 0 with a store attached")
	}
	if v := want("store_fsyncs_total"); v == 0 {
		t.Error("store_fsyncs_total = 0 with a store attached")
	}
	if h, ok := ms.Histogram("store_fsync_seconds", "", ""); !ok || h.Count == 0 {
		t.Error("store_fsync_seconds recorded nothing")
	}
	if v := want("store_durable_lsn"); v == 0 {
		t.Error("store_durable_lsn = 0 after journaled mutations")
	}
}

// TestReadInstrumentationZeroAlloc is the acceptance guard: recording a
// read's phase split into the shared histograms must not allocate, so
// instrumentation never adds GC pressure to the hot path.
func TestReadInstrumentationZeroAlloc(t *testing.T) {
	g := newTestGateway(t, 4, 2, 50, nil, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		g.m.observeRead(50*time.Microsecond, 80*time.Microsecond, 120*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("observeRead allocates %.1f per call, want 0", allocs)
	}
}

// TestTraceAndStatusEndpoints checks the two JSON observability endpoints:
// /v1/status carries the status document (moved off /v1/metrics) and
// /v1/trace dumps the span ring with the server's event history.
func TestTraceAndStatusEndpoints(t *testing.T) {
	g := newTestGateway(t, 4, 2, 50, nil, nil)
	h := g.Handler()

	rec, body := doJSON(t, h, http.MethodGet, "/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/status: %d", rec.Code)
	}
	if disks, ok := body["disks"].(float64); !ok || disks != 4 {
		t.Fatalf("/v1/status disks = %v", body["disks"])
	}
	if _, ok := body["gateway"].(map[string]any); !ok {
		t.Fatalf("/v1/status has no gateway section: %v", body)
	}

	rec, _ = doJSON(t, h, http.MethodPost, "/v1/scale", map[string]any{"add": 1})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %s", rec.Code, rec.Body.String())
	}
	waitStatus(t, g, "migration drain", func(s Status) bool { return !s.Reorganizing })

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/trace", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/trace: %d", rec.Code)
	}
	var dump struct {
		Total uint64     `json:"total"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/v1/trace decode: %v", err)
	}
	if dump.Total == 0 || len(dump.Spans) == 0 {
		t.Fatalf("/v1/trace empty: total %d, %d spans", dump.Total, len(dump.Spans))
	}
	var sawScale, sawMigrate bool
	for _, sp := range dump.Spans {
		switch sp.Kind {
		case "scale-up-started":
			sawScale = true
			if sp.Count != 1 {
				t.Errorf("scale-up span count = %d, want 1", sp.Count)
			}
		case "blocks-migrated":
			sawMigrate = true
		}
	}
	if !sawScale || !sawMigrate {
		t.Fatalf("trace missing events: scale=%v migrate=%v in %d spans",
			sawScale, sawMigrate, len(dump.Spans))
	}
}
