package gateway

import (
	"net/http"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/store"
)

// TestGatewayDurableStore exercises the gateway's durability wiring end to
// end: a bootstrapped store journals gateway-driven mutations, the admin
// checkpoint endpoint cuts a checkpoint, healthz exposes the journal, and a
// second store recovers the state the gateway produced.
func TestGatewayDurableStore(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, 4, 3, 40, nil)
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	g := newTestGateway2(t, srv, st)
	h := g.Handler()

	// A scaling operation journals through the gateway's owner loop.
	rec, _ := doJSON(t, h, http.MethodPost, "/v1/scale", map[string]any{"add": 2})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %s", rec.Code, rec.Body.String())
	}
	waitStatus(t, g, "migration drain", func(s Status) bool { return !s.Reorganizing && !s.Draining })

	// Forcing a checkpoint succeeds once quiescent.
	rec, body := doJSON(t, h, http.MethodPost, "/v1/admin/checkpoint", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", rec.Code, rec.Body.String())
	}
	if lsn, ok := body["lsn"].(float64); !ok || lsn <= 0 {
		t.Fatalf("checkpoint returned %v", body)
	}

	// Healthz exposes the journal position.
	rec, body = doJSON(t, h, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	journal, ok := body["journal"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no journal section: %v", body)
	}
	if journal["lsn"].(float64) <= 0 {
		t.Fatalf("healthz journal: %v", journal)
	}

	// The journaled state recovers in a fresh process.
	g.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2, _, err := st2.Recover(placement.NewX0Func(testFactory))
	if err != nil {
		t.Fatal(err)
	}
	if srv2.N() != 6 {
		t.Fatalf("recovered %d disks, want 6 (4 + scale-up of 2)", srv2.N())
	}
	if srv2.Objects() != 3 {
		t.Fatalf("recovered %d objects, want 3", srv2.Objects())
	}
}

// TestControlOpsDurableBeforeReply locks in the admin-durability contract:
// a mutating control operation (here a scale-up) is fsynced into the
// journal before its HTTP acknowledgement, not deferred to the next round's
// group commit — a crash right after the 202 must not lose an operation the
// client was told succeeded. The store's batch threshold is set high and
// the round period long so the only possible sync is the one the command
// path itself performs.
func TestControlOpsDurableBeforeReply(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, 4, 2, 20, nil)
	st, err := store.Open(store.Config{Dir: dir, SyncEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	g, err := New(srv, Config{Factory: testFactory, Round: time.Hour, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)

	before := st.Status()
	rec, _ := doJSON(t, g.Handler(), http.MethodPost, "/v1/scale", map[string]any{"add": 1})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("scale: %d %s", rec.Code, rec.Body.String())
	}
	got := st.Status()
	if got.LSN <= before.LSN {
		t.Fatalf("scale journaled nothing: LSN %d before, %d after", before.LSN, got.LSN)
	}
	if got.DurableLSN != got.LSN {
		t.Fatalf("acknowledgement outran the journal: durable LSN %d, assigned LSN %d", got.DurableLSN, got.LSN)
	}
}

// TestCheckpointWithoutStore maps the admin endpoint to 501 when the
// gateway runs memory-only.
func TestCheckpointWithoutStore(t *testing.T) {
	g := newTestGateway(t, 4, 1, 20, nil, nil)
	rec, _ := doJSON(t, g.Handler(), http.MethodPost, "/v1/admin/checkpoint", nil)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("checkpoint without store: %d, want 501", rec.Code)
	}
}

// newTestGateway2 wraps an existing (already bootstrapped) server.
func newTestGateway2(t testing.TB, srv *cm.Server, st *store.Store) *Gateway {
	t.Helper()
	g, err := New(srv, Config{Factory: testFactory, Round: 2 * time.Millisecond, Store: st, CheckpointEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}
