package gateway

// This file is the gateway's data plane: it bridges the cm server's
// round-paced block deliveries into per-session bounded buffers drained by
// streaming HTTP handlers, and publishes the snapshot+delta locator feed
// that lets thousands of clients track a live reorganization without
// re-asking the server per block.
//
// Two sink interfaces wire it under the owner goroutine:
//
//   - cm.DeliverySink: Tick hands each served block's bytes to Deliver,
//     which offers them to the session's bounded channel without blocking.
//     A slow client misses the round's deadline (the chunk is dropped and
//     counted as a hiccup); enough consecutive misses evict the session —
//     backpressure protects the round, never the laggard.
//   - cm.EventSink (teed via AddEventSink): migrated-block events accumulate
//     into per-round "moves" deltas, epoch events (scale start/finish,
//     catalog changes) mark the feed dirty; flush — called after every tick
//     and mutating command — publishes them and refreshes the cached full
//     snapshot that GET /v1/locator/snapshot serves without touching the
//     mailbox.
//
// The pacer is the round driver itself: chunks arrive at session buffers
// once per round, so a client that keeps up reads one block per round and a
// client that doesn't hiccups. No timers exist on the stream path.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scaddar/internal/bufpool"
	"scaddar/internal/cm"
	"scaddar/internal/dataplane"
)

// ErrStreamAttached is returned when a second consumer tries to attach to a
// session's stream; each session has exactly one chunk consumer.
var ErrStreamAttached = fmt.Errorf("gateway: stream already has a consumer")

// dataPlane is the gateway-side state of the streaming data plane.
type dataPlane struct {
	g    *Gateway
	feed *dataplane.Feed
	// snap is the cached full locator snapshot, republished by flush so the
	// snapshot endpoint never pays for the mailbox (10k clients fetching
	// their baseline must not serialize behind the round driver).
	snap atomic.Pointer[dataplane.Snapshot]

	mu       sync.Mutex
	sessions map[int]*dataplane.Session // stream ID → attached consumer

	// moves and dirty accumulate event-sink updates between flushes.
	// Owner-goroutine only.
	moves []dataplane.MovedBlock
	dirty bool
}

// newDataPlane wires the delivery and event sinks into the server and
// caches the initial snapshot. Called from New before the round driver
// starts, on the soon-to-be owner goroutine.
func newDataPlane(g *Gateway, srv *cm.Server) (*dataPlane, error) {
	capacity := g.cfg.FeedCapacity
	if capacity == 0 {
		capacity = 1024
	}
	dp := &dataPlane{
		g:        g,
		feed:     dataplane.NewFeed(capacity),
		sessions: make(map[int]*dataplane.Session),
	}
	srv.SetDeliverySink(dp)
	srv.AddEventSink(dp.onEvent)
	snap, err := dp.buildSnapshot()
	if err != nil {
		return nil, err
	}
	dp.snap.Store(snap)
	return dp, nil
}

// WantsPayload implements cm.DeliverySink: the server materializes bytes
// only for streams with a live consumer.
func (dp *dataPlane) WantsPayload(stream int) bool {
	dp.mu.Lock()
	s := dp.sessions[stream]
	dp.mu.Unlock()
	return s != nil && !s.Closed()
}

// Deliver implements cm.DeliverySink: offer the round's chunk to the
// session buffer without blocking. Returning true evicts the stream.
//
// Ownership: a delivered chunk hands its payload reference to the session
// buffer (the handler's drain loop releases it); a missed or orphaned
// chunk is released here. The mutex is held across Offer so a detaching
// handler cannot slip between the lookup and the offer — once detach
// returns, no further chunk can land in the session, which makes the
// handler's final ReleaseBuffered sweep authoritative.
func (dp *dataPlane) Deliver(stream, object int, index int, p bufpool.Payload) bool {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	s := dp.sessions[stream]
	if s == nil || s.Closed() {
		p.Release()
		return false
	}
	delivered, evict := s.Offer(dataplane.Chunk{Index: index, Payload: p})
	switch {
	case delivered:
		dp.g.m.streamChunks.Inc()
	case evict:
		// The consecutive-miss limit: close toward the handler first so the
		// end frame says "evicted", then tell the server to stop the stream.
		p.Release()
		dp.g.m.streamMisses.Inc()
		dp.g.m.streamEvictions.Inc()
		s.Close(dataplane.CloseEvicted)
		return true
	default:
		p.Release()
		dp.g.m.streamMisses.Inc()
	}
	return false
}

// StreamClosed implements cm.DeliverySink: a stream left StreamPlaying
// during Tick; propagate the reason to the attached consumer. Close is
// idempotent and first-reason-wins, so an eviction already recorded by
// Deliver is preserved.
func (dp *dataPlane) StreamClosed(stream int, state cm.StreamState) {
	dp.mu.Lock()
	s := dp.sessions[stream]
	dp.mu.Unlock()
	if s == nil {
		return
	}
	reason := dataplane.CloseStopped
	if state == cm.StreamDone {
		reason = dataplane.CloseDone
	}
	s.Close(reason)
}

// attach registers a consumer session for a stream. Owner goroutine only
// (run inside an exec closure so registration is serialized with Tick and
// no round's delivery falls between the state check and the map insert).
func (dp *dataPlane) attach(s *dataplane.Session) error {
	dp.mu.Lock()
	defer dp.mu.Unlock()
	if cur, ok := dp.sessions[s.Stream()]; ok && !cur.Closed() {
		return ErrStreamAttached
	}
	dp.sessions[s.Stream()] = s
	return nil
}

// detach removes a stream's consumer registration (the handler's deferred
// cleanup; safe from any goroutine).
func (dp *dataPlane) detach(stream int, s *dataplane.Session) {
	dp.mu.Lock()
	if dp.sessions[stream] == s {
		delete(dp.sessions, stream)
	}
	dp.mu.Unlock()
}

// closeStream closes a stream's consumer with the given reason. Owner
// goroutine only (Session.Close contract).
func (dp *dataPlane) closeStream(stream int, reason dataplane.CloseReason) {
	dp.mu.Lock()
	s := dp.sessions[stream]
	dp.mu.Unlock()
	if s != nil {
		s.Close(reason)
	}
}

// closeObject closes every consumer playing the given object — the
// force-remove path stops the object's streams outside Tick, so no
// StreamClosed notification will arrive. Owner goroutine only.
func (dp *dataPlane) closeObject(object int) {
	dp.mu.Lock()
	var victims []*dataplane.Session
	for _, s := range dp.sessions {
		if s.Object() == object {
			victims = append(victims, s)
		}
	}
	dp.mu.Unlock()
	for _, s := range victims {
		s.Close(dataplane.CloseStopped)
	}
}

// closeAll ends every consumer session; the owner loop calls it on exit so
// no handler blocks on a channel nobody will ever close again.
func (dp *dataPlane) closeAll(reason dataplane.CloseReason) {
	dp.mu.Lock()
	victims := make([]*dataplane.Session, 0, len(dp.sessions))
	for _, s := range dp.sessions {
		victims = append(victims, s)
	}
	dp.mu.Unlock()
	for _, s := range victims {
		s.Close(reason)
	}
}

// onEvent is the cm.EventSink tee: accumulate migrated blocks for the next
// moves delta; mark the feed dirty at every boundary that changes the
// placement function or the catalog. Owner goroutine only; must not call
// back into the server (flush does the LocatorStateExport, after the
// mutation completes).
func (dp *dataPlane) onEvent(ev cm.Event) {
	switch ev.Kind {
	case cm.EventBlocksMigrated:
		for _, m := range ev.Moves {
			dp.moves = append(dp.moves, dataplane.MovedBlock{Object: m.Object, Index: int(m.Index)})
		}
	case cm.EventObjectAdded, cm.EventObjectRemoved, cm.EventIngestCommitted:
		dp.dirty = true
	default:
		if cm.IsEpochEvent(ev.Kind) {
			dp.dirty = true
		}
	}
}

// flush publishes accumulated deltas and keeps the cached snapshot current.
// Owner goroutine only, called after every tick and mutating command.
//
// Moves publish before any snapshot: within a round the server migrates
// blocks and may then complete the reorganization, and a client replaying
// the feed must see the same order. After publishing moves the cached
// snapshot is rebuilt (without a feed entry) so a freshly connecting client
// starts at the current sequence instead of replaying the whole drain —
// that refresh is also what keeps long migrations from outrunning the
// bounded feed ring and forcing ErrDeltaGone resyncs.
func (dp *dataPlane) flush() {
	moved := len(dp.moves) > 0
	if moved {
		dp.feed.Publish(dataplane.Delta{Kind: dataplane.DeltaMoves, Moves: dp.moves})
		dp.g.m.deltasPublished.Inc()
		dp.moves = nil
	}
	if !dp.dirty && !moved {
		return
	}
	snap, err := dp.buildSnapshot()
	if err != nil {
		dp.g.logf("gateway: locator snapshot: %v", err)
		return
	}
	if dp.dirty {
		dp.dirty = false
		// Stamp the sequence Publish is about to assign (flush is the feed's
		// only publisher): once the delta is in the ring, concurrent pollers
		// encode the shared snapshot, so it must never be written again.
		snap.Seq = dp.feed.Seq() + 1
		dp.feed.Publish(dataplane.Delta{Kind: dataplane.DeltaSnapshot, Snapshot: snap})
		dp.g.m.deltasPublished.Inc()
	} else {
		snap.Seq = dp.feed.Seq()
	}
	dp.snap.Store(snap)
}

// buildSnapshot converts the server's locator state into the wire snapshot.
// Owner goroutine only.
func (dp *dataPlane) buildSnapshot() (*dataplane.Snapshot, error) {
	ls, err := dp.g.srv.LocatorStateExport()
	if err != nil {
		return nil, err
	}
	snap := &dataplane.Snapshot{
		Seq:          dp.feed.Seq(),
		N:            ls.N,
		Epoch:        ls.Epoch,
		Bits:         ls.Bits,
		Reorganizing: ls.Reorganizing,
		History:      ls.History,
		PreOf:        ls.PreOf,
	}
	snap.Objects = make([]dataplane.ObjectInfo, len(ls.Objects))
	for i, o := range ls.Objects {
		snap.Objects[i] = dataplane.ObjectInfo{
			ID: o.ID, Seed: o.Seed, Blocks: o.Blocks, BlockBytes: o.BlockBytes,
		}
	}
	if len(ls.Pending) > 0 {
		snap.Pending = make([]dataplane.PendingBlock, len(ls.Pending))
		for i, p := range ls.Pending {
			snap.Pending[i] = dataplane.PendingBlock{Object: p.Object, Index: int(p.Index), From: p.From}
		}
	}
	return snap, nil
}

// Feed returns the locator delta feed (exposed for tests and embedding).
func (g *Gateway) Feed() *dataplane.Feed { return g.dp.feed }

// LocatorSnapshotWire returns the currently cached wire-format locator
// snapshot — the same value GET /v1/locator/snapshot serves.
func (g *Gateway) LocatorSnapshotWire() *dataplane.Snapshot { return g.dp.snap.Load() }
