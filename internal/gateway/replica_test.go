package gateway

// Replica front-end tests: a real leader (store + replication listener)
// with a follower tailing it, wrapped in the Replica HTTP surface. The
// interesting part is the error contract — fenced and stale reads must
// come back as retryable 503s with Retry-After, exactly like the leader
// gateway's admission pushback.

import (
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
	"scaddar/internal/placement"
	"scaddar/internal/repl"
	"scaddar/internal/store"
)

// newReplicaUnderTest stands up leader store + replication listener + one
// follower and returns the replica handler plus the leader pieces.
func newReplicaUnderTest(t *testing.T) (*cm.Server, *store.Store, *repl.Follower, *Replica) {
	t.Helper()
	srv := newTestServer(t, 4, 4, 6, nil)
	st, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	ldr, err := repl.NewLeader(repl.LeaderConfig{Store: st, Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ldr.Serve(ln)
	t.Cleanup(func() { ldr.Close() })

	reg := obs.NewRegistry()
	f, err := repl.StartFollower(repl.FollowerConfig{
		Addr:     ln.Addr().String(),
		X0:       placement.NewX0Func(testFactory),
		Factory:  testFactory,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	rp, err := NewReplica(ReplicaConfig{Follower: f, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return srv, st, f, rp
}

// waitReplicaApplied polls the follower until it reaches the leader's
// durable frontier.
func waitReplicaApplied(t *testing.T, st *store.Store, f *repl.Follower) {
	t.Helper()
	durable, _ := st.Durable()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v := f.View(); v != nil && v.AppliedLSN >= durable {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never reached durable LSN %d; status %+v", durable, f.Status())
}

func TestReplicaValidation(t *testing.T) {
	if _, err := NewReplica(ReplicaConfig{}); err == nil {
		t.Error("nil follower accepted")
	}
}

func TestReplicaServesReads(t *testing.T) {
	srv, st, f, rp := newReplicaUnderTest(t)
	waitReplicaApplied(t, st, f)

	rec, body := doJSON(t, rp.Handler(), http.MethodGet, "/v1/objects/0/blocks/2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read: %d %s", rec.Code, rec.Body.String())
	}
	// The replica's answer must match the leader's locator for the block.
	sn, err := srv.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sn.Locate(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(body["disk"].(float64)); got != want {
		t.Fatalf("replica read disk %d, leader locator %d", got, want)
	}
	if _, ok := body["appliedLsn"]; !ok {
		t.Fatalf("read response missing appliedLsn: %v", body)
	}

	rec, _ = doJSON(t, rp.Handler(), http.MethodGet, "/v1/objects/99/blocks/0", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown object: %d, want 404", rec.Code)
	}
	rec, _ = doJSON(t, rp.Handler(), http.MethodGet, "/v1/objects/0/blocks/999", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("out-of-range block: %d, want 404", rec.Code)
	}

	rec, body = doJSON(t, rp.Handler(), http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, rp.Handler(), http.MethodGet, "/v1/replication", nil)
	if rec.Code != http.StatusOK || body["role"] != "replica" {
		t.Fatalf("replication: %d %v", rec.Code, body)
	}
	rec, _ = doJSON(t, rp.Handler(), http.MethodGet, "/v1/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
}

// TestReplicaErrorContract pins the retryable mapping: fenced and stale
// reads are 503 with Retry-After, unknown names are 404, anything else is
// a plain 500. The fencing semantics themselves (when Locate returns these
// errors) are pinned by the repl package; this is the HTTP contract.
func TestReplicaErrorContract(t *testing.T) {
	for _, tc := range []struct {
		name  string
		err   error
		code  int
		retry bool
	}{
		{"fenced", cm.ErrEpochFenced, http.StatusServiceUnavailable, true},
		{"stale", cm.ErrStaleRead, http.StatusServiceUnavailable, true},
		{"unknown", cm.ErrUnknownObject, http.StatusNotFound, false},
		{"range", cm.ErrBlockOutOfRange, http.StatusNotFound, false},
		{"other", errTestOpaque, http.StatusInternalServerError, false},
	} {
		rec, _ := doJSON(t, errorHandler(tc.err), http.MethodGet, "/", nil)
		if rec.Code != tc.code {
			t.Fatalf("%s: %d, want %d", tc.name, rec.Code, tc.code)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != tc.retry {
			t.Fatalf("%s: Retry-After present=%v, want %v", tc.name, got, tc.retry)
		}
	}
}

var errTestOpaque = errors.New("opaque failure")

// errorHandler adapts writeReplicaError for direct contract tests.
func errorHandler(err error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeReplicaError(w, err)
	})
}

// TestReplicaNotBootstrapped drives the full HTTP stack against a follower
// that cannot reach its leader: every read is a retryable 503 and healthz
// reports bootstrapping, so load balancers keep the replica out of rotation
// until it has state.
func TestReplicaNotBootstrapped(t *testing.T) {
	// A listener we immediately close gives a port nothing accepts on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	f, err := repl.StartFollower(repl.FollowerConfig{
		Addr:        addr,
		X0:          placement.NewX0Func(testFactory),
		Factory:     testFactory,
		DialTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	rp, err := NewReplica(ReplicaConfig{Follower: f})
	if err != nil {
		t.Fatal(err)
	}

	rec, _ := doJSON(t, rp.Handler(), http.MethodGet, "/v1/objects/0/blocks/0", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("read before bootstrap: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("read before bootstrap: missing Retry-After")
	}
	rec, body := doJSON(t, rp.Handler(), http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable || body["status"] != "bootstrapping" {
		t.Fatalf("healthz before bootstrap: %d %v", rec.Code, body)
	}
	rec, _ = doJSON(t, rp.Handler(), http.MethodGet, "/v1/objects", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("objects before bootstrap: %d, want 503", rec.Code)
	}
}
