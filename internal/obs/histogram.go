package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram of non-negative observations —
// request latencies in seconds, fsync batch sizes, per-round move counts.
// Bucket bounds are precomputed at construction; Observe is one binary
// search plus three atomic updates: lock-free, allocation-free, and safe
// for any number of concurrent writers, so it may sit on the read hot path.
//
// Quantiles (p50/p95/p99/max) are estimated from a Snapshot by linear
// interpolation inside the owning bucket, so their resolution is the bucket
// width — choose bounds accordingly (ExpBuckets covers decades cheaply).
type Histogram struct {
	// bounds are the inclusive upper bounds of the finite buckets, strictly
	// increasing; observations above the last bound land in the implicit
	// +Inf bucket.
	bounds []float64
	// cells[i] counts observations v with bounds[i-1] < v <= bounds[i];
	// cells[len(bounds)] is the +Inf bucket.
	cells []atomic.Uint64
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits, CAS-updated
	max   atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a histogram with the given finite bucket upper
// bounds, which must be non-empty and strictly increasing. An implicit +Inf
// bucket is always appended.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i-1] < bounds[i]) {
			return nil, fmt.Errorf("obs: histogram bounds not strictly increasing at %g, %g",
				bounds[i-1], bounds[i])
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, cells: make([]atomic.Uint64, len(b)+1)}, nil
}

// MustNewHistogram is NewHistogram for statically valid bounds; it panics
// on error.
func MustNewHistogram(bounds []float64) *Histogram {
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// ExpBuckets returns n exponentially spaced bounds starting at lo with the
// given growth factor — the standard shape for latency buckets. lo must be
// positive, factor above 1, n at least 1.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if lo <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d)", lo, factor, n))
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets are the default request-latency bounds in seconds: 10µs to
// ~84s in 28 exponential steps of ×1.8 — fine enough that p99 interpolation
// stays within ~±40% anywhere in the range.
func LatencyBuckets() []float64 { return ExpBuckets(10e-6, 1.8, 28) }

// SizeBuckets are the default count/size bounds: 1 to 2^19 in doublings,
// for batch sizes, per-round move counts, and queue depths.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 20) }

// Observe records one observation. Values are clamped below at 0 (negative
// durations from clock steps land in the first bucket rather than
// corrupting the cumulative counts).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram. Cells are read
// individually (no lock), so a snapshot taken under concurrent writers is
// per-cell consistent only — fine for monitoring, by design.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; shared, not copied
		Counts: make([]uint64, len(h.cells)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Max:    math.Float64frombits(h.max.Load()),
	}
	for i := range h.cells {
		s.Counts[i] = h.cells[i].Load()
	}
	return s
}

// Reset zeroes every cell. Concurrent observations during a reset may land
// on either side of it.
func (h *Histogram) Reset() {
	for i := range h.cells {
		h.cells[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, the input to
// quantile estimation, merging, and exposition.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds (shared with the source
	// histogram; treat as read-only).
	Bounds []float64
	// Counts are the per-bucket counts; the final entry is the +Inf bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the running sum of all observed values.
	Sum float64
	// Max is the largest value observed.
	Max float64
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding that rank. Observations in the
// +Inf bucket report Max. An empty snapshot reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Max // +Inf bucket: best estimate is the observed max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if hi > s.Max {
			hi = s.Max // never report beyond the observed max
		}
		if hi < lo {
			return lo
		}
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Max
}

// Mean returns the exact arithmetic mean of the observations (Sum/Count),
// or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Merge combines two snapshots taken from histograms with identical bucket
// bounds into one, summing counts — the way per-client histograms roll up
// into a run total.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(s.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with %d and %d bounds",
			len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds at %d: %g vs %g",
				i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    math.Max(s.Max, o.Max),
	}
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}
