package obs

import "sync"

// Span is one typed trace event: a round executed, a scaling operation
// applied, blocks migrated or rebuilt, a disk failed. Spans come from two
// producers with one contract — the live cm event stream and the store's
// recovery replay of the same journaled events — so a recovered server
// retraces the ring of the run it replays.
type Span struct {
	// Seq is the ring-assigned sequence number, monotonically increasing
	// across the life of the ring (including overwritten spans).
	Seq uint64
	// Round is the cm round counter at emit time, or -1 for spans appended
	// during journal replay, where rounds are not re-executed.
	Round int64
	// Kind names the event, e.g. "scale_up", "blocks_migrated", "round".
	Kind string
	// Object is the object ID the span concerns, or -1 when not applicable.
	Object int64
	// Disk is the disk index the span concerns, or -1 when not applicable.
	Disk int64
	// Count is the span's magnitude: blocks moved, blocks rebuilt, disks
	// added — whatever the Kind measures; 0 when not applicable.
	Count int64
	// Aux carries a second dimension when one count is not enough (e.g.
	// disks removed alongside blocks migrated); 0 when not applicable.
	Aux int64
}

// Ring is a bounded, overwrite-oldest buffer of trace spans. Append takes a
// short mutex (it is called from control-plane paths — round ticks, scaling
// operations, replay — never from the per-request read path); Dump copies
// the live window oldest-first. A nil *Ring is valid and ignores appends,
// so instrumented code never branches on whether tracing is enabled.
type Ring struct {
	mu   sync.Mutex
	buf  []Span
	next uint64 // total spans ever appended; next Seq to assign
	base uint64 // Seq of the oldest span not discarded by Reset
}

// NewRing returns a ring holding the most recent capacity spans; capacity
// is clamped below at 1.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Span, capacity)}
}

// Append records a span, overwriting the oldest when full, and assigns its
// Seq. Appending to a nil ring is a no-op.
func (r *Ring) Append(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = s
	r.next++
	r.mu.Unlock()
}

// live returns the Seq of the oldest retained span and the count of
// retained spans. Caller holds mu.
func (r *Ring) live() (start, n uint64) {
	start = r.base
	if r.next > uint64(len(r.buf)) && r.next-uint64(len(r.buf)) > start {
		start = r.next - uint64(len(r.buf))
	}
	return start, r.next - start
}

// Len returns the number of spans currently held (at most the capacity).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, n := r.live()
	return int(n)
}

// Total returns the number of spans ever appended, including overwritten
// and Reset ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Dump returns a copy of the retained spans, oldest first. A nil ring
// dumps nil.
func (r *Ring) Dump() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start, n := r.live()
	out := make([]Span, 0, n)
	for seq := start; seq < start+n; seq++ {
		out = append(out, r.buf[seq%uint64(len(r.buf))])
	}
	return out
}

// Reset drops all retained spans but keeps the sequence counter, so Seq
// stays unique across the ring's life.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.base = r.next
}
