package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric family in Prometheus text
// exposition format (version 0.0.4), in registration order, with stable
// (sorted) label-value order inside each family. It reads cells atomically
// without pausing writers, so the output is per-cell consistent — the same
// contract as Snapshot.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	families := append([]*entry(nil), r.ordered...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, e := range families {
		fmt.Fprintf(bw, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.kind)
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(float64(e.counter.Value())))
		case kindGauge:
			fmt.Fprintf(bw, "%s %s\n", e.name, formatFloat(e.gauge.Value()))
		case kindHistogram:
			writeHistogram(bw, e.name, "", "", e.hist.Snapshot())
		case kindCounterVec:
			keys, cells := e.cvec.snapshot()
			for i, k := range keys {
				fmt.Fprintf(bw, "%s{%s=%q} %s\n", e.name, e.cvec.label, k,
					formatFloat(float64(cells[i].Value())))
			}
		case kindGaugeVec:
			keys, cells := e.gvec.snapshot()
			for i, k := range keys {
				fmt.Fprintf(bw, "%s{%s=%q} %s\n", e.name, e.gvec.label, k,
					formatFloat(cells[i].Value()))
			}
		case kindHistogramVec:
			keys, cells := e.hvec.snapshot()
			for i, k := range keys {
				writeHistogram(bw, e.name, e.hvec.label, k, cells[i].Snapshot())
			}
		}
	}
	return bw.Flush()
}

// writeHistogram emits the _bucket/_sum/_count series for one histogram,
// with cumulative bucket counts as the format requires. label may be empty
// for an unlabelled histogram.
func writeHistogram(w io.Writer, name, label, value string, s HistogramSnapshot) {
	extra := ""
	if label != "" {
		extra = fmt.Sprintf("%s=%q,", label, value)
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, le, cum)
	}
	series := ""
	if label != "" {
		series = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, series, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, series, s.Count)
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Sample is one parsed series from a Prometheus text page: a metric name,
// optional labels, and a value. It is the unit loadgen's dashboard consumes
// after scraping GET /v1/metrics.
type Sample struct {
	// Name is the metric name, including any _bucket/_sum/_count suffix for
	// histogram series.
	Name string
	// Labels holds the label pairs, nil when the series is unlabelled.
	Labels map[string]string
	// Value is the sample value; bucket "le" bounds stay in Labels.
	Value float64
}

// Label returns the value of the named label, or "" if absent.
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses a Prometheus text exposition page into samples in page
// order, skipping comments and blank lines. It accepts the subset of the
// format WritePrometheus emits (no timestamps, no exemplars) — enough for
// loadgen and tests to scrape our own endpoint; it is not a general
// Prometheus client.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses one sample line: name[{label="value",...}] value.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	rest = strings.TrimLeft(rest, " \t")
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimLeft(rest[end+1:], " \t")
	}
	val := strings.TrimSpace(rest)
	if val == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", val, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `a="x",b="y"` (contents between the braces).
func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := strings.TrimSpace(body)
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		val, n, err := unquoteLabel(rest)
		if err != nil {
			return nil, err
		}
		labels[name] = val
		rest = strings.TrimSpace(rest[n:])
		rest = strings.TrimPrefix(rest, ",")
		rest = strings.TrimSpace(rest)
	}
	return labels, nil
}

// unquoteLabel consumes a leading double-quoted string (with \\, \", \n
// escapes) and returns its value and the number of input bytes consumed.
func unquoteLabel(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			i++
			if i >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", s)
}

// parseValue parses a sample value, accepting the +Inf/-Inf/NaN spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// MetricSet indexes parsed samples for convenient lookup in dashboards and
// tests.
type MetricSet struct {
	samples []Sample
}

// NewMetricSet wraps parsed samples for lookup.
func NewMetricSet(samples []Sample) *MetricSet { return &MetricSet{samples: samples} }

// Value returns the first sample with the given name and no le label, and
// whether one was found.
func (m *MetricSet) Value(name string) (float64, bool) {
	for _, s := range m.samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// LabelValue returns the sample with the given name whose label matches,
// and whether one was found.
func (m *MetricSet) LabelValue(name, label, value string) (float64, bool) {
	for _, s := range m.samples {
		if s.Name == name && s.Labels[label] == value {
			return s.Value, true
		}
	}
	return 0, false
}

// Histogram reconstructs a HistogramSnapshot for the named histogram family
// from its _bucket/_sum/_count series, optionally filtered to one label
// value (pass "" for both filter arguments to take an unlabelled
// histogram). The +Inf bucket is required; Max is unavailable from the
// exposition format, so it is approximated by the largest finite bound with
// a non-empty bucket (or the last bound when only +Inf holds counts).
func (m *MetricSet) Histogram(name, label, value string) (HistogramSnapshot, bool) {
	var bounds []float64
	var counts []uint64
	var snap HistogramSnapshot
	seen := false
	match := func(s Sample) bool {
		if label == "" {
			return true
		}
		return s.Labels[label] == value
	}
	for _, s := range m.samples {
		switch s.Name {
		case name + "_bucket":
			if !match(s) {
				continue
			}
			le := s.Labels["le"]
			cum := uint64(s.Value)
			var prev uint64
			for _, c := range counts {
				prev += c
			}
			if cum < prev {
				return snap, false // buckets must be cumulative
			}
			if le == "+Inf" {
				counts = append(counts, cum-prev)
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return snap, false
				}
				bounds = append(bounds, b)
				counts = append(counts, cum-prev)
			}
			seen = true
		case name + "_sum":
			if match(s) {
				snap.Sum = s.Value
			}
		case name + "_count":
			if match(s) {
				snap.Count = uint64(s.Value)
			}
		}
	}
	if !seen || len(counts) != len(bounds)+1 {
		return snap, false
	}
	snap.Bounds = bounds
	snap.Counts = counts
	for i := len(bounds) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			snap.Max = bounds[i]
			break
		}
	}
	if snap.Max == 0 && counts[len(counts)-1] > 0 && len(bounds) > 0 {
		snap.Max = bounds[len(bounds)-1]
	}
	return snap, true
}
