package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "help")
	b := r.NewCounter("x_total", "other help ignored")
	if a != b {
		t.Fatal("same-name counter registration returned a different cell")
	}
	g1 := r.NewGauge("g", "h")
	if g2 := r.NewGauge("g", "h"); g1 != g2 {
		t.Fatal("same-name gauge registration returned a different cell")
	}
	h1 := r.NewHistogram("h_seconds", "h", []float64{1, 2})
	if h2 := r.NewHistogram("h_seconds", "h", []float64{9}); h1 != h2 {
		t.Fatal("same-name histogram registration returned a different cell")
	}
	v1 := r.NewGaugeVec("v", "h", "disk")
	if v2 := r.NewGaugeVec("v", "h", "disk"); v1 != v2 {
		t.Fatal("same-name vec registration returned a different family")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.NewGauge("x", "h")
}

func TestVecWithAndDelete(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("cm_disk_load", "blocks per disk", "disk")
	v.With("0").Set(10)
	v.With("1").Set(20)
	if got := v.With("0").Value(); got != 10 {
		t.Fatalf("child 0 = %g", got)
	}
	v.Delete("1")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `cm_disk_load{disk="0"} 10`) {
		t.Fatalf("missing surviving child:\n%s", out)
	}
	if strings.Contains(out, `disk="1"`) {
		t.Fatalf("deleted child still exposed:\n%s", out)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "h")
	g := r.NewGauge("g", "h")
	h := r.NewHistogram("h_seconds", "h", []float64{1})
	v := r.NewCounterVec("v_total", "h", "k")
	c.Add(5)
	g.Set(2)
	h.Observe(0.5)
	v.With("a").Inc()
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("Reset left cells nonzero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `v_total{k="a"}`) {
		t.Fatal("Reset kept vec children")
	}
}

// TestExpositionGolden locks down the exposition format byte-for-byte: the
// loadgen dashboard, EXPERIMENTS scripts, and any external Prometheus
// scraper all parse this exact shape.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	reads := r.NewCounter("gateway_reads_total", "Block reads served.")
	reads.Add(1234)
	depth := r.NewGaugeVec("cm_disk_queue_depth", "Blocks queued per disk this round.", "disk")
	depth.With("0").SetInt(3)
	depth.With("10").SetInt(7) // sorts lexicographically: "0" < "10"
	unfair := r.NewGauge("cm_unfairness", "Live max/mean load ratio minus one.")
	unfair.Set(0.125)
	bound := r.NewGauge("cm_unfairness_bound", "Analytic f(R_k,N_k) bound.")
	bound.Set(math.Inf(1))
	lat := r.NewHistogram("gateway_read_seconds", "End-to-end read latency.", []float64{0.001, 0.01, 0.1})
	lat.Observe(0.0005)
	lat.Observe(0.005)
	lat.Observe(0.005)
	lat.Observe(5) // +Inf bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gateway_reads_total Block reads served.
# TYPE gateway_reads_total counter
gateway_reads_total 1234
# HELP cm_disk_queue_depth Blocks queued per disk this round.
# TYPE cm_disk_queue_depth gauge
cm_disk_queue_depth{disk="0"} 3
cm_disk_queue_depth{disk="10"} 7
# HELP cm_unfairness Live max/mean load ratio minus one.
# TYPE cm_unfairness gauge
cm_unfairness 0.125
# HELP cm_unfairness_bound Analytic f(R_k,N_k) bound.
# TYPE cm_unfairness_bound gauge
cm_unfairness_bound +Inf
# HELP gateway_read_seconds End-to-end read latency.
# TYPE gateway_read_seconds histogram
gateway_read_seconds_bucket{le="0.001"} 1
gateway_read_seconds_bucket{le="0.01"} 3
gateway_read_seconds_bucket{le="0.1"} 3
gateway_read_seconds_bucket{le="+Inf"} 4
gateway_read_seconds_sum 5.0105
gateway_read_seconds_count 4
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "h").Add(7)
	r.NewGauge("b", "h").Set(-2.5)
	r.NewGauge("inf", "h").Set(math.Inf(1))
	hv := r.NewHistogramVec("lat_seconds", "h", "phase", []float64{0.01, 0.1})
	hv.With("locate").Observe(0.005)
	hv.With("locate").Observe(0.05)
	hv.With("service").Observe(0.2)
	gv := r.NewGaugeVec("load", "h", "disk")
	gv.With("0").Set(4)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseText on our own output: %v", err)
	}
	m := NewMetricSet(samples)
	if v, ok := m.Value("a_total"); !ok || v != 7 {
		t.Fatalf("a_total = %v, %v", v, ok)
	}
	if v, ok := m.Value("b"); !ok || v != -2.5 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	if v, ok := m.Value("inf"); !ok || !math.IsInf(v, 1) {
		t.Fatalf("inf = %v, %v", v, ok)
	}
	if v, ok := m.LabelValue("load", "disk", "0"); !ok || v != 4 {
		t.Fatalf("load{disk=0} = %v, %v", v, ok)
	}
	snap, ok := m.Histogram("lat_seconds", "phase", "locate")
	if !ok {
		t.Fatal("histogram lat_seconds{phase=locate} not reconstructed")
	}
	if snap.Count != 2 || snap.Counts[0] != 1 || snap.Counts[1] != 1 || snap.Counts[2] != 0 {
		t.Fatalf("reconstructed %+v", snap)
	}
	if q := snap.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("reconstructed p50 = %g, want in (0, 0.01]", q)
	}
	other, ok := m.Histogram("lat_seconds", "phase", "service")
	if !ok || other.Count != 1 || other.Counts[2] != 1 {
		t.Fatalf("service histogram %+v, %v", other, ok)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{
		"name_only",
		`m{a="x} 1`,
		`m{a=x} 1`,
		"m not_a_number",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText accepted %q", bad)
		}
	}
	// Comments, blanks, and escaped label values are fine.
	samples, err := ParseText(strings.NewReader(
		"# HELP x h\n\nx{p=\"a\\\"b\\n\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Label("p") != "a\"b\n" {
		t.Fatalf("samples = %+v", samples)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.NewCounter("shared_total", "h")
			v := r.NewGaugeVec("vec", "h", "k")
			for i := 0; i < 1000; i++ {
				c.Inc()
				v.With("a").Add(1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := r.NewCounter("shared_total", "h").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}
