package obs

import (
	"fmt"
	"sort"
	"sync"
)

// metricKind discriminates what a registry entry holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeVec:
		return "gauge"
	case kindHistogram, kindHistogramVec:
		return "histogram"
	}
	return "untyped"
}

// entry is one registered metric family.
type entry struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
	hvec    *HistogramVec
}

// Registry is a typed, name-keyed collection of metric families. Metric
// construction (NewCounter and friends) takes a mutex and is meant for
// startup or low-frequency paths; the returned cells are then lock-free for
// the lifetime of the registry. Registering the same name twice with the
// same type returns the existing metric (idempotent), so independent
// subsystems may safely ask for a shared family; re-registering a name with
// a different type panics — that is always a programming error.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*entry
	ordered []*entry // registration order, the exposition order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// lookup returns the existing entry for name after checking its kind, or
// nil if the name is free. Caller holds mu.
func (r *Registry) lookup(name string, kind metricKind) *entry {
	e, ok := r.byName[name]
	if !ok {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, e.kind))
	}
	return e
}

func (r *Registry) add(e *entry) {
	r.byName[e.name] = e
	r.ordered = append(r.ordered, e)
}

// NewCounter registers (or returns the existing) counter with the given
// name and help text.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounter); e != nil {
		return e.counter
	}
	c := &Counter{}
	r.add(&entry{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// NewGauge registers (or returns the existing) gauge with the given name
// and help text.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGauge); e != nil {
		return e.gauge
	}
	g := &Gauge{}
	r.add(&entry{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// NewHistogram registers (or returns the existing) histogram with the given
// name, help text, and finite bucket bounds. Invalid bounds panic: bucket
// layouts are static program structure, not runtime input.
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.hist
	}
	h := MustNewHistogram(bounds)
	r.add(&entry{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// NewCounterVec registers (or returns the existing) counter family keyed by
// one label.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounterVec); e != nil {
		return e.cvec
	}
	v := &CounterVec{label: label, children: make(map[string]*Counter)}
	r.add(&entry{name: name, help: help, kind: kindCounterVec, cvec: v})
	return v
}

// NewGaugeVec registers (or returns the existing) gauge family keyed by one
// label.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGaugeVec); e != nil {
		return e.gvec
	}
	v := &GaugeVec{label: label, children: make(map[string]*Gauge)}
	r.add(&entry{name: name, help: help, kind: kindGaugeVec, gvec: v})
	return v
}

// NewHistogramVec registers (or returns the existing) histogram family
// keyed by one label; every child shares the same bucket bounds.
func (r *Registry) NewHistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogramVec); e != nil {
		return e.hvec
	}
	v := &HistogramVec{label: label, bounds: append([]float64(nil), bounds...),
		children: make(map[string]*Histogram)}
	r.add(&entry{name: name, help: help, kind: kindHistogramVec, hvec: v})
	return v
}

// Reset zeroes every counter, gauge, and histogram cell in the registry and
// drops all vec children. Meant for test isolation and loadgen warm-up
// windows, not for the serving path.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.ordered {
		switch e.kind {
		case kindCounter:
			e.counter.Set(0)
		case kindGauge:
			e.gauge.Set(0)
		case kindHistogram:
			e.hist.Reset()
		case kindCounterVec:
			e.cvec.reset()
		case kindGaugeVec:
			e.gvec.reset()
		case kindHistogramVec:
			e.hvec.reset()
		}
	}
}

// CounterVec is a family of counters distinguished by one label value, e.g.
// gateway_requests_total{code="200"}. With retrieves children under a
// short mutex; hot paths should call With once at setup and keep the
// returned *Counter, which is then lock-free.
type CounterVec struct {
	mu       sync.Mutex
	label    string
	children map[string]*Counter
}

// With returns the counter for the given label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Delete removes the child for the given label value, if any. Used when the
// labelled resource goes away (a disk removed by scale-down).
func (v *CounterVec) Delete(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

func (v *CounterVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children = make(map[string]*Counter)
}

// snapshot returns label values in sorted order with their counters.
func (v *CounterVec) snapshot() ([]string, []*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return keys, out
}

// GaugeVec is a family of gauges distinguished by one label value, e.g.
// cm_disk_queue_depth{disk="3"}. Locking behaves as in CounterVec.
type GaugeVec struct {
	mu       sync.Mutex
	label    string
	children map[string]*Gauge
}

// With returns the gauge for the given label value, creating it on first
// use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// Delete removes the child for the given label value, if any.
func (v *GaugeVec) Delete(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

func (v *GaugeVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children = make(map[string]*Gauge)
}

func (v *GaugeVec) snapshot() ([]string, []*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Gauge, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return keys, out
}

// HistogramVec is a family of histograms sharing one bucket layout,
// distinguished by one label value, e.g.
// gateway_read_phase_seconds{phase="locate"}.
type HistogramVec struct {
	mu       sync.Mutex
	label    string
	bounds   []float64
	children map[string]*Histogram
}

// With returns the histogram for the given label value, creating it on
// first use. Hot paths must call With once at setup and keep the returned
// *Histogram — With itself takes a mutex and may allocate.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = MustNewHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

// Delete removes the child for the given label value, if any.
func (v *HistogramVec) Delete(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

func (v *HistogramVec) reset() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.children = make(map[string]*Histogram)
}

func (v *HistogramVec) snapshot() ([]string, []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Histogram, len(keys))
	for i, k := range keys {
		out[i] = v.children[k]
	}
	return keys, out
}
