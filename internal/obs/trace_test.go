package obs

import (
	"sync"
	"testing"
)

func TestRingAppendDump(t *testing.T) {
	r := NewRing(4)
	if r.Len() != 0 || r.Dump() != nil && len(r.Dump()) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 3; i++ {
		r.Append(Span{Kind: "round", Count: int64(i)})
	}
	d := r.Dump()
	if len(d) != 3 {
		t.Fatalf("len = %d", len(d))
	}
	for i, s := range d {
		if s.Seq != uint64(i) || s.Count != int64(i) {
			t.Fatalf("span %d = %+v", i, s)
		}
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Span{Count: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	d := r.Dump()
	for i, s := range d {
		want := int64(6 + i) // oldest retained is #6
		if s.Count != want || s.Seq != uint64(want) {
			t.Fatalf("span %d = %+v, want count/seq %d", i, s, want)
		}
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Append(Span{Count: int64(i)})
	}
	r.Reset()
	if r.Len() != 0 || len(r.Dump()) != 0 {
		t.Fatal("Reset did not empty the ring")
	}
	r.Append(Span{Kind: "after"})
	d := r.Dump()
	if len(d) != 1 || d[0].Seq != 6 {
		t.Fatalf("post-Reset dump %+v; Seq must continue from 6", d)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Append(Span{Kind: "ignored"})
	if r.Len() != 0 || r.Total() != 0 || r.Dump() != nil {
		t.Fatal("nil ring not inert")
	}
	r.Reset()
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append(Span{Kind: "x"})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			d := r.Dump()
			for j := 1; j < len(d); j++ {
				if d[j].Seq != d[j-1].Seq+1 {
					t.Errorf("dump not sequential: %d then %d", d[j-1].Seq, d[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Total() != 4000 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestRingCapacityClamp(t *testing.T) {
	r := NewRing(0)
	r.Append(Span{Count: 1})
	r.Append(Span{Count: 2})
	d := r.Dump()
	if len(d) != 1 || d[0].Count != 2 {
		t.Fatalf("clamped ring dump %+v", d)
	}
}
