// Package obs is the observability layer of the repository: a stdlib-only,
// allocation-conscious metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms with snapshot/reset semantics), a
// Prometheus text-exposition writer and parser, and a bounded
// overwrite-oldest trace ring of typed span events.
//
// The paper's claims are statistical — RO2 load balance, the Section 4.3
// unfairness bound, minimal movement per operation — and this package is
// what makes them continuously measurable from the serving path instead of
// only at end of run: the gateway exposes a Registry at GET /v1/metrics,
// the cm server feeds per-round gauges into it, and the trace Ring records
// the same control-plane event stream the durable store journals, so a
// replayed recovery retraces the ring identically.
//
// Concurrency: every metric cell is a single atomic word. Observe, Add,
// Inc, and Set are lock-free, safe for any number of concurrent writers,
// and allocation-free — they may sit on request hot paths. Snapshots and
// exposition take no locks over the cells either; a snapshot is therefore
// only per-cell consistent, which is the standard monitoring trade-off.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric: requests served, blocks
// migrated, fsyncs issued. All methods are lock-free, allocation-free, and
// safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter. It exists for mirroring an external monotonic
// total (for example a cm.Metrics field) into the registry; the caller is
// responsible for monotonicity.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down: queue depth, disks in the
// array, migration backlog, a live unfairness estimate. Values are float64
// (stored as bits in one atomic word); all methods are lock-free,
// allocation-free, and safe for concurrent use.
type Gauge struct {
	v atomic.Uint64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// SetInt overwrites the gauge with an integer value.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add adds delta (which may be negative) with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.v.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }
