package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// naiveQuantile is the reference implementation: sort all raw samples and
// index by rank, the way loadgen used to do it.
func naiveQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// bucketFor mirrors Observe's bucket selection for the naive cross-check.
func bucketFor(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

func TestHistogramBucketsMatchNaiveCount(t *testing.T) {
	bounds := LatencyBuckets()
	h := MustNewHistogram(bounds)
	rng := rand.New(rand.NewSource(7))
	want := make([]uint64, len(bounds)+1)
	var sum, max float64
	const n = 10000
	for i := 0; i < n; i++ {
		// Log-uniform over the bucket range plus outliers beyond the last
		// bound to exercise the +Inf bucket.
		v := math.Exp(rng.Float64()*math.Log(1e7)) * 1e-6
		h.Observe(v)
		want[bucketFor(bounds, v)]++
		sum += v
		if v > max {
			max = v
		}
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("Count = %d, want %d", s.Count, n)
	}
	for i := range want {
		if s.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], want[i])
		}
	}
	if math.Abs(s.Sum-sum) > 1e-6*sum {
		t.Fatalf("Sum = %g, want %g", s.Sum, sum)
	}
	if s.Max != max {
		t.Fatalf("Max = %g, want %g", s.Max, max)
	}
}

func TestHistogramQuantileVsNaive(t *testing.T) {
	bounds := LatencyBuckets()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		h := MustNewHistogram(bounds)
		var samples []float64
		n := 100 + rng.Intn(5000)
		for i := 0; i < n; i++ {
			v := math.Exp(rng.Float64()*math.Log(1e6)) * 1e-5
			samples = append(samples, v)
			h.Observe(v)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
			got := s.Quantile(q)
			want := naiveQuantile(samples, q)
			// The estimate must land within one bucket of the true value:
			// the buckets grow by ×1.8, so accept a factor of 1.8 either way.
			if got < want/1.8-1e-12 || got > want*1.8+1e-12 {
				t.Fatalf("trial %d q=%g: got %g, naive %g (off by more than one bucket)",
					trial, q, got, want)
			}
		}
		if got := s.Quantile(1.0); got > s.Max {
			t.Fatalf("q=1.0 gave %g above max %g", got, s.Max)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := MustNewHistogram([]float64{1, 2, 4})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	h.Observe(3)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 2 || got > 3 {
		t.Fatalf("single sample in (2,4] gave %g, want within (2,3]", got)
	}
	// +Inf bucket: quantile falls back to the tracked max.
	h2 := MustNewHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Snapshot().Quantile(0.99); got != 100 {
		t.Fatalf("+Inf bucket quantile = %g, want 100 (the max)", got)
	}
	// NaN and negative observations clamp to the first bucket.
	h3 := MustNewHistogram([]float64{1, 2})
	h3.Observe(math.NaN())
	h3.Observe(-5)
	s3 := h3.Snapshot()
	if s3.Counts[0] != 2 || s3.Count != 2 {
		t.Fatalf("NaN/negative not clamped: %+v", s3)
	}
}

func TestHistogramMerge(t *testing.T) {
	bounds := SizeBuckets()
	a := MustNewHistogram(bounds)
	b := MustNewHistogram(bounds)
	all := MustNewHistogram(bounds)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		v := float64(rng.Intn(1 << 20))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	merged, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := all.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged totals %+v, want %+v", merged, want)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("merged bucket %d = %d, want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	// Mismatched bounds must refuse to merge.
	c := MustNewHistogram([]float64{1, 2, 3})
	if _, err := a.Snapshot().Merge(c.Snapshot()); err == nil {
		t.Fatal("merge with different bounds succeeded")
	}
	d := MustNewHistogram(append(ExpBuckets(1, 2, 19), 1 << 20))
	if _, err := a.Snapshot().Merge(d.Snapshot()); err == nil {
		t.Fatal("merge with same-length different bounds succeeded")
	}
}

func TestHistogramConcurrentWriters(t *testing.T) {
	h := MustNewHistogram(LatencyBuckets())
	const (
		writers = 8
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Observe(rng.Float64() * 10)
			}
		}(int64(w))
	}
	// Concurrent snapshots must not trip the race detector either.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = h.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perW)
	}
	var cells uint64
	for _, c := range s.Counts {
		cells += c
	}
	if cells != s.Count {
		t.Fatalf("bucket cells sum to %d, Count is %d", cells, s.Count)
	}
}

func TestHistogramReset(t *testing.T) {
	h := MustNewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
	for i, c := range s.Counts {
		if c != 0 {
			t.Fatalf("bucket %d nonzero after Reset", i)
		}
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Fatal("non-increasing bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Fatal("decreasing bounds accepted")
	}
}

func TestObserveDuration(t *testing.T) {
	h := MustNewHistogram(LatencyBuckets())
	h.ObserveDuration(500 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || math.Abs(s.Sum-0.0005) > 1e-12 {
		t.Fatalf("ObserveDuration recorded %+v", s)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	h := MustNewHistogram(LatencyBuckets())
	c := &Counter{}
	g := &Gauge{}
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.001)
		c.Inc()
		g.Set(42)
		g.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("hot-path metric ops allocate: %v allocs/run", allocs)
	}
}
