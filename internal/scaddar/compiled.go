package scaddar

import (
	"math/bits"
	"sync/atomic"
)

// This file compiles the interpreted REMAP chain into straight-line integer
// arithmetic. The interpreted path (History.Step) pays, per operation and
// per lookup: a kind switch, two or three hardware divisions by the
// operation's disk counts, and — for removals — a linear scan over the
// removed-index list. All of those inputs are fixed the moment the
// operation is recorded, so a History can be compiled once into:
//
//   - Granlund–Montgomery multiply-shift reciprocals for every div/mod
//     (see magicdiv.go), and
//   - a flat survivor-rank table new[r] → (newIndex | gone) per removal,
//     replacing the per-lookup scan with one indexed load.
//
// The compiled form is immutable and therefore trivially safe for any
// number of concurrent readers; a version counter on History invalidates it
// when the log grows (see History.Compile).

// survivorTableBudget caps the total survivor-rank table entries one
// compiled chain may materialize. Real histories (arrays of thousands of
// disks, tens of operations) use a tiny fraction of it; only forged or
// synthetic logs — huge additions followed by long runs of removals, which
// the codecs accept — can exhaust it. Removal operations beyond the budget
// fall back to binary search over the removed list, keeping Compile's
// memory bounded at a few megabytes no matter what the log claims.
const survivorTableBudget = 1 << 20

// compiledOp is one REMAP operation lowered to precomputed arithmetic.
type compiledOp struct {
	kind    OpKind
	nBefore uint64
	nAfter  uint64
	dBefore magicDiv // div/mod by NBefore
	dAfter  magicDiv // additions: the q mod NAfter step
	// dBoth is the addition fast path: a reciprocal for NBefore*NAfter.
	// Since ⌊⌊x/a⌋/b⌋ = ⌊x/(ab)⌋, the quotient q = x/NBefore and the
	// product quotient qab = x/(NBefore·NAfter) can be computed from x in
	// parallel, and the staying block's next value is NAfter·qab + x mod
	// NBefore — two independent multiply-highs instead of a serial chain of
	// two. Only set (fused=true) when the product fits in 64 bits.
	dBoth magicDiv
	fused bool
	// survivor is the removal's rank table: survivor[r] is disk r's index
	// in the compacted post-removal numbering, or -1 if r was removed.
	// nil for additions and for removals wider than survivorTableMax.
	survivor []int32
	// removed backs the binary-search fallback when survivor is nil.
	removed []int
}

// CompiledChain is an immutable compiled form of a History's REMAP chain.
// Locate, Final, Moved, and LocateBatch are allocation-free and safe for
// unlimited concurrent readers. A chain answers for the exact log contents
// it was compiled from; once the source History records another operation,
// Valid reports false and History.Compile builds a fresh chain.
type CompiledChain struct {
	hist    *History
	version uint64
	n0      uint64
	n       uint64 // N_j, the current disk count
	nPrev   uint64 // N_{j-1}, for Moved's before-disk
	ops     []compiledOp
	dN      magicDiv // mod by N_j
	dNPrev  magicDiv // mod by N_{j-1}
}

// chainCache is the holder History keeps its compiled form in. It is a
// separate allocation (not an embedded atomic) so the codecs' whole-struct
// assignment of History stays legal, and so concurrent readers can publish
// a freshly compiled chain without coordinating.
type chainCache struct {
	p atomic.Pointer[CompiledChain]
}

// Version returns the history's mutation counter. Every recorded operation
// (and every codec decode) increases it; a CompiledChain is valid exactly
// while its recorded version matches.
func (h *History) Version() uint64 { return h.version }

// Compile returns a compiled chain for the history's current contents,
// reusing the cached one when it is still valid. Readers may call Compile
// concurrently with each other (compilation is deterministic, so a racing
// publish is harmless); like all History reads it must not run concurrently
// with mutation.
func (h *History) Compile() *CompiledChain {
	if c := h.cc.p.Load(); c != nil && c.version == h.version {
		return c
	}
	c := compileChain(h)
	h.cc.p.Store(c)
	return c
}

// compileChain lowers every recorded operation.
func compileChain(h *History) *CompiledChain {
	c := &CompiledChain{
		hist:    h,
		version: h.version,
		n0:      uint64(h.n0),
		n:       uint64(h.N()),
		nPrev:   uint64(h.NAt(maxInt(len(h.ops)-1, 0))),
		ops:     make([]compiledOp, len(h.ops)),
	}
	c.dN = newMagicDiv(c.n)
	c.dNPrev = newMagicDiv(c.nPrev)
	budget := survivorTableBudget
	for i, op := range h.ops {
		co := compiledOp{
			kind:    op.Kind,
			nBefore: uint64(op.NBefore),
			nAfter:  uint64(op.NAfter),
			dBefore: newMagicDiv(uint64(op.NBefore)),
		}
		switch op.Kind {
		case OpAdd:
			co.dAfter = newMagicDiv(uint64(op.NAfter))
			if hi, lo := bits.Mul64(co.nBefore, co.nAfter); hi == 0 {
				co.dBoth = newMagicDiv(lo)
				co.fused = true
			}
		case OpRemove:
			if op.NBefore <= budget {
				co.survivor = survivorTable(op.NBefore, op.Removed)
				budget -= op.NBefore
			} else {
				co.removed = op.Removed
			}
		}
		c.ops[i] = co
	}
	return c
}

// survivorTable materializes the paper's new() function for one removal:
// t[r] is the compacted index of pre-removal disk r, or -1 if removed.
func survivorTable(nBefore int, removed []int) []int32 {
	t := make([]int32, nBefore)
	ri, shift := 0, int32(0)
	for r := 0; r < nBefore; r++ {
		if ri < len(removed) && removed[ri] == r {
			t[r] = -1
			ri++
			shift++
			continue
		}
		t[r] = int32(r) - shift
	}
	return t
}

// survivorSearch is the table-free fallback: binary search over the sorted
// removed list for rank and membership.
func survivorSearch(r uint64, removed []int) (newIndex uint64, gone bool) {
	lo, hi := 0, len(removed)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if uint64(removed[mid]) < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(removed) && uint64(removed[lo]) == r {
		return 0, true
	}
	return r - uint64(lo), false
}

// Valid reports whether the chain still matches its source history, i.e.
// no operation has been recorded since compilation.
func (c *CompiledChain) Valid() bool { return c.version == c.hist.version }

// N returns the disk count the chain locates into.
func (c *CompiledChain) N() int { return int(c.n) }

// Ops returns the number of compiled operations (the paper's j).
func (c *CompiledChain) Ops() int { return len(c.ops) }

// step applies one compiled operation.
func (op *compiledOp) step(x uint64) (xj uint64, moved bool) {
	q, r := op.dBefore.divmod(x)
	if op.kind == OpAdd {
		if t := op.dAfter.mod(q); t < op.nBefore {
			return q - t + r, false
		}
		return q, true
	}
	if op.survivor != nil {
		if nr := op.survivor[r]; nr >= 0 {
			return q*op.nAfter + uint64(nr), false
		}
		return q, true
	}
	nr, gone := survivorSearch(r, op.removed)
	if gone {
		return q, true
	}
	return q*op.nAfter + nr, false
}

// applyOps remaps x through every compiled operation. The per-op arithmetic
// is written out inline (mirroring compiledOp.step, which stays as the
// single-step form Moved needs) because the chain walk is the hottest loop
// in the system: step is beyond the compiler's inlining budget, and a call
// per operation roughly doubles the cost of a lookup.
func (c *CompiledChain) applyOps(x uint64) uint64 {
	for i := range c.ops {
		op := &c.ops[i]
		if op.fused {
			// Both outcomes are computed and the winner selected, so the
			// data-dependent stay/move decision compiles to a conditional
			// move instead of an unpredictable branch.
			q := op.dBefore.div(x)
			qab := op.dBoth.div(x)
			stay := op.nAfter*qab + (x - q*op.nBefore)
			if q-op.nAfter*qab < op.nBefore {
				x = stay
			} else {
				x = q
			}
			continue
		}
		q, r := op.dBefore.divmod(x)
		switch {
		case op.kind == OpAdd:
			stay := q - op.dAfter.mod(q) + r
			if op.dAfter.mod(q) < op.nBefore {
				x = stay
			} else {
				x = q
			}
		case op.survivor != nil:
			nr := op.survivor[r]
			stay := q*op.nAfter + uint64(uint32(nr))
			if nr >= 0 {
				x = stay
			} else {
				x = q
			}
		default:
			if nr, gone := survivorSearch(r, op.removed); !gone {
				x = q*op.nAfter + nr
			} else {
				x = q
			}
		}
	}
	return x
}

// Locate is the compiled access function AF(): the block's current logical
// disk, allocation-free in O(j) multiply-shift operations.
func (c *CompiledChain) Locate(x0 uint64) int {
	return int(c.dN.mod(c.applyOps(x0)))
}

// Final returns the fully remapped random value X_j and the block's current
// logical disk.
func (c *CompiledChain) Final(x0 uint64) (xj uint64, disk int) {
	x := c.applyOps(x0)
	return x, int(c.dN.mod(x))
}

// Moved reports whether the most recent operation moved the block, and its
// disks before and after that operation — the compiled form of
// History.Moved, the predicate RF() builds move plans with.
func (c *CompiledChain) Moved(x0 uint64) (moved bool, before, after int) {
	x := x0
	if len(c.ops) == 0 {
		d := int(c.dN.mod(x))
		return false, d, d
	}
	for i := 0; i < len(c.ops)-1; i++ {
		x, _ = c.ops[i].step(x)
	}
	before = int(c.dNPrev.mod(x))
	xj, movedStep := c.ops[len(c.ops)-1].step(x)
	return movedStep, before, int(c.dN.mod(xj))
}

// batchChunk is the block count LocateBatch processes per pass. Chunks keep
// the working set inside L1 while letting each operation's inner loop run
// branch-uniform over many blocks (the kind dispatch is hoisted out of the
// per-block loop).
const batchChunk = 256

// LocateBatch locates len(x0s) blocks into out, allocation-free:
// out[i] = Locate(x0s[i]). It iterates operation-major over fixed-size
// chunks, which is substantially faster than per-block Locate calls for
// bulk sweeps. out must be at least as long as x0s.
func (c *CompiledChain) LocateBatch(x0s []uint64, out []int) {
	if len(out) < len(x0s) {
		panic("scaddar: LocateBatch output shorter than input")
	}
	var buf [batchChunk]uint64
	for base := 0; base < len(x0s); base += batchChunk {
		n := len(x0s) - base
		if n > batchChunk {
			n = batchChunk
		}
		copy(buf[:n], x0s[base:base+n])
		for oi := range c.ops {
			op := &c.ops[oi]
			switch {
			case op.fused:
				for i := 0; i < n; i++ {
					x := buf[i]
					q := op.dBefore.div(x)
					qab := op.dBoth.div(x)
					if q-op.nAfter*qab < op.nBefore {
						buf[i] = op.nAfter*qab + (x - q*op.nBefore)
					} else {
						buf[i] = q
					}
				}
			case op.kind == OpAdd:
				for i := 0; i < n; i++ {
					x := buf[i]
					q, r := op.dBefore.divmod(x)
					if t := op.dAfter.mod(q); t < op.nBefore {
						buf[i] = q - t + r
					} else {
						buf[i] = q
					}
				}
			case op.survivor != nil:
				for i := 0; i < n; i++ {
					q, r := op.dBefore.divmod(buf[i])
					if nr := op.survivor[r]; nr >= 0 {
						buf[i] = q*op.nAfter + uint64(nr)
					} else {
						buf[i] = q
					}
				}
			default:
				for i := 0; i < n; i++ {
					q, r := op.dBefore.divmod(buf[i])
					if nr, gone := survivorSearch(r, op.removed); !gone {
						buf[i] = q*op.nAfter + nr
					} else {
						buf[i] = q
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			out[base+i] = int(c.dN.mod(buf[i]))
		}
	}
}

// maxInt is a tiny pre-generics helper.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
