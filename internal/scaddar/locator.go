package scaddar

import (
	"fmt"

	"scaddar/internal/par"
	"scaddar/internal/prng"
)

// SourceFactory builds the per-object pseudo-random generator p_r(s_m) for a
// seed. All objects of a server share one factory so their sequences come
// from the same generator family and width.
type SourceFactory func(seed uint64) prng.Source

// Locator binds a History to per-object pseudo-random sequences: it is the
// complete access function AF() of the paper. Given an object's seed s_m and
// a block index i, it regenerates X(i)_0 = p_r(s_m) at position i and remaps
// it through every recorded scaling operation, yielding the block's current
// logical disk. No directory is consulted; the only state is the operation
// log and the seed.
//
// Locator memoizes one Indexed sequence per seed, so with a counter-based
// generator a lookup costs O(j) for j scaling operations, and with a
// sequential generator O(j) plus a one-time O(i) prefix generation.
type Locator struct {
	hist    *History
	factory SourceFactory
	bits    uint
	seqs    map[uint64]prng.Indexed
}

// NewLocator creates a Locator over the given history. factory must produce
// generators of a fixed width; the width of the first generator is recorded
// and later mismatches are rejected.
func NewLocator(hist *History, factory SourceFactory) (*Locator, error) {
	if hist == nil {
		return nil, fmt.Errorf("scaddar: locator needs a history")
	}
	if factory == nil {
		return nil, fmt.Errorf("scaddar: locator needs a source factory")
	}
	hist.Compile()
	return &Locator{hist: hist, factory: factory, seqs: make(map[uint64]prng.Indexed)}, nil
}

// History returns the underlying operation log.
func (l *Locator) History() *History { return l.hist }

// Bits returns the generator width, or 0 if no sequence has been created yet.
func (l *Locator) Bits() uint { return l.bits }

// sequence returns the memoized indexed sequence for a seed.
func (l *Locator) sequence(seed uint64) (prng.Indexed, error) {
	if seq, ok := l.seqs[seed]; ok {
		return seq, nil
	}
	src := l.factory(seed)
	if l.bits == 0 {
		l.bits = src.Bits()
	} else if src.Bits() != l.bits {
		return nil, fmt.Errorf("scaddar: factory width changed from %d to %d bits", l.bits, src.Bits())
	}
	seq := prng.EnsureIndexed(src)
	l.seqs[seed] = seq
	return seq, nil
}

// X0 returns the block's original random number X(i)_0.
func (l *Locator) X0(seed uint64, block uint64) (uint64, error) {
	seq, err := l.sequence(seed)
	if err != nil {
		return 0, err
	}
	return seq.At(block), nil
}

// Disk returns the current logical disk of block i of the object with the
// given seed — AF() in full.
func (l *Locator) Disk(seed uint64, block uint64) (int, error) {
	x0, err := l.X0(seed, block)
	if err != nil {
		return 0, err
	}
	return l.hist.Locate(x0), nil
}

// DiskAt returns the block's logical disk after only the first j operations.
func (l *Locator) DiskAt(seed uint64, block uint64, j int) (int, error) {
	x0, err := l.X0(seed, block)
	if err != nil {
		return 0, err
	}
	return l.hist.DiskAt(x0, j), nil
}

// Layout returns the logical disk of every block of an object with nblocks
// blocks, in block order. It is the bulk form RF() uses when recomputing
// placements after an addition. The object's random numbers are drawn
// serially (sequential generators memoize under the hood), then the
// compiled chain sweeps them across GOMAXPROCS workers; the result is
// identical to per-block Disk calls.
func (l *Locator) Layout(seed uint64, nblocks int) ([]int, error) {
	seq, err := l.sequence(seed)
	if err != nil {
		return nil, err
	}
	chain := l.hist.Compile()
	xs := make([]uint64, nblocks)
	for i := range xs {
		xs[i] = seq.At(uint64(i))
	}
	disks := make([]int, nblocks)
	par.Ranges(nblocks, func(lo, hi int) {
		chain.LocateBatch(xs[lo:hi], disks[lo:hi])
	})
	return disks, nil
}

// LoadVector counts the blocks of the given objects per logical disk —
// the E[n_d] estimate the paper's Section 5 evaluates. Objects are given as
// (seed, nblocks) pairs. The sweep runs on the compiled chain with
// per-worker accumulators merged in worker order, so the counts match the
// serial loop exactly.
func (l *Locator) LoadVector(objects map[uint64]int) ([]int, error) {
	n := l.hist.N()
	total := 0
	for _, nblocks := range objects {
		total += nblocks
	}
	xs := make([]uint64, 0, total)
	for seed, nblocks := range objects {
		seq, err := l.sequence(seed)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nblocks; i++ {
			xs = append(xs, seq.At(uint64(i)))
		}
	}
	chain := l.hist.Compile()
	counts := make([]int, n)
	workers := par.Workers()
	if len(xs) < par.MinParallel || workers < 2 {
		var disks [batchChunk]int
		for base := 0; base < len(xs); base += batchChunk {
			m := len(xs) - base
			if m > batchChunk {
				m = batchChunk
			}
			chain.LocateBatch(xs[base:base+m], disks[:m])
			for _, d := range disks[:m] {
				counts[d]++
			}
		}
		return counts, nil
	}
	locals := make([][]int, workers)
	par.RangesN(workers, workers, func(lo, hi int) {
		for w := lo; w < hi; w++ {
			local := make([]int, n)
			var disks [batchChunk]int
			for base := w * len(xs) / workers; base < (w+1)*len(xs)/workers; base += batchChunk {
				m := (w+1)*len(xs)/workers - base
				if m > batchChunk {
					m = batchChunk
				}
				chain.LocateBatch(xs[base:base+m], disks[:m])
				for _, d := range disks[:m] {
					local[d]++
				}
			}
			locals[w] = local
		}
	})
	for _, local := range locals {
		for d, c := range local {
			counts[d] += c
		}
	}
	return counts, nil
}
