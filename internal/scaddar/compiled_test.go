package scaddar

import (
	"encoding/json"
	"testing"

	"scaddar/internal/prng"
)

// interpLocate is the interpreted reference for CompiledChain.Locate: the
// original per-operation Step walk with hardware division.
func interpLocate(h *History, x0 uint64) int {
	return h.DiskAt(x0, h.Ops())
}

// interpFinal is the interpreted reference for CompiledChain.Final.
func interpFinal(h *History, x0 uint64) (uint64, int) {
	x := x0
	for j := 1; j <= h.Ops(); j++ {
		x, _ = h.Step(j, x)
	}
	return x, int(x % uint64(h.N()))
}

// interpMoved is the interpreted reference for CompiledChain.Moved.
func interpMoved(h *History, x0 uint64) (moved bool, before, after int) {
	if h.Ops() == 0 {
		d := int(x0 % uint64(h.N()))
		return false, d, d
	}
	x := x0
	for j := 1; j < h.Ops(); j++ {
		x, _ = h.Step(j, x)
	}
	before = int(x % uint64(h.NAt(h.Ops()-1)))
	xj, movedStep := h.Step(h.Ops(), x)
	return movedStep, before, int(xj % uint64(h.N()))
}

// randomHistory builds a deterministic pseudo-random history of nops mixed
// operations from a seed.
func randomHistory(t testing.TB, seed uint64, n0, nops int) *History {
	t.Helper()
	src := prng.NewSplitMix64(seed)
	h := MustNewHistory(n0)
	for i := 0; i < nops; i++ {
		r := src.Next()
		if h.N() > 1 && r%3 == 0 {
			k := int(r/3%3) + 1
			if k > h.N()-1 {
				k = h.N() - 1
			}
			seen := make(map[int]bool)
			var idx []int
			for len(idx) < k {
				cand := int(src.Next() % uint64(h.N()))
				if !seen[cand] {
					seen[cand] = true
					idx = append(idx, cand)
				}
			}
			if _, err := h.Remove(idx...); err != nil {
				t.Fatalf("remove %v: %v", idx, err)
			}
		} else {
			if _, err := h.Add(int(r%8) + 1); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
	}
	return h
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	src := prng.NewSplitMix64(0xC0FFEE)
	for hi := 0; hi < 40; hi++ {
		h := randomHistory(t, uint64(hi)*0x9E3779B97F4A7C15+1, int(src.Next()%16)+1, int(src.Next()%13))
		chain := h.Compile()
		if chain.N() != h.N() || chain.Ops() != h.Ops() {
			t.Fatalf("history %d: chain shape (%d disks, %d ops) != history (%d, %d)",
				hi, chain.N(), chain.Ops(), h.N(), h.Ops())
		}
		for bi := 0; bi < 200; bi++ {
			x0 := src.Next()
			if got, want := chain.Locate(x0), interpLocate(h, x0); got != want {
				t.Fatalf("history %d %v: Locate(%d) = %d, interpreted %d", hi, h, x0, got, want)
			}
			gx, gd := chain.Final(x0)
			wx, wd := interpFinal(h, x0)
			if gx != wx || gd != wd {
				t.Fatalf("history %d %v: Final(%d) = (%d,%d), interpreted (%d,%d)", hi, h, x0, gx, gd, wx, wd)
			}
			gm, gb, ga := chain.Moved(x0)
			wm, wb, wa := interpMoved(h, x0)
			if gm != wm || gb != wb || ga != wa {
				t.Fatalf("history %d %v: Moved(%d) = (%v,%d,%d), interpreted (%v,%d,%d)",
					hi, h, x0, gm, gb, ga, wm, wb, wa)
			}
		}
	}
}

func TestCompileCachesUntilMutation(t *testing.T) {
	h := MustNewHistory(4)
	c1 := h.Compile()
	if !c1.Valid() {
		t.Fatal("fresh chain reports invalid")
	}
	if c2 := h.Compile(); c2 != c1 {
		t.Fatal("second Compile did not reuse the cached chain")
	}
	v := h.Version()
	if _, err := h.Add(2); err != nil {
		t.Fatal(err)
	}
	if h.Version() <= v {
		t.Fatalf("Add did not raise the version: %d -> %d", v, h.Version())
	}
	if c1.Valid() {
		t.Fatal("stale chain still reports valid after Add")
	}
	c3 := h.Compile()
	if c3 == c1 {
		t.Fatal("Compile returned the stale chain after mutation")
	}
	if c3.N() != 6 || !c3.Valid() {
		t.Fatalf("recompiled chain wrong: N=%d valid=%v", c3.N(), c3.Valid())
	}
	if _, err := h.Remove(1); err != nil {
		t.Fatal(err)
	}
	if c3.Valid() {
		t.Fatal("stale chain still reports valid after Remove")
	}
}

func TestDecodeInvalidatesCompiled(t *testing.T) {
	h := MustNewHistory(4)
	if _, err := h.Add(3); err != nil {
		t.Fatal(err)
	}
	chain := h.Compile()

	other := MustNewHistory(9)
	if _, err := other.Remove(2); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	v := h.Version()
	if err := json.Unmarshal(blob, h); err != nil {
		t.Fatal(err)
	}
	if h.Version() <= v {
		t.Fatalf("decode did not raise the version: %d -> %d", v, h.Version())
	}
	if chain.Valid() {
		t.Fatal("pre-decode chain still reports valid")
	}
	if got, want := h.Compile().Locate(12345), interpLocate(h, 12345); got != want {
		t.Fatalf("post-decode Locate = %d, interpreted %d", got, want)
	}
}

func TestLocateBatchMatchesLocate(t *testing.T) {
	h := randomHistory(t, 77, 8, 10)
	chain := h.Compile()
	src := prng.NewSplitMix64(99)
	for _, n := range []int{0, 1, 2, 255, 256, 257, 512, 1000} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = src.Next()
		}
		out := make([]int, n)
		chain.LocateBatch(xs, out)
		for i, x0 := range xs {
			if want := chain.Locate(x0); out[i] != want {
				t.Fatalf("n=%d: batch[%d] = %d, Locate = %d", n, i, out[i], want)
			}
		}
	}
}

func TestLocateBatchShortOutputPanics(t *testing.T) {
	chain := MustNewHistory(4).Compile()
	defer func() {
		if recover() == nil {
			t.Fatal("LocateBatch with short output did not panic")
		}
	}()
	chain.LocateBatch(make([]uint64, 8), make([]int, 7))
}

func TestSurvivorSearchFallback(t *testing.T) {
	// An array wider than the survivor-table budget forces the removal op
	// onto the binary-search path.
	h := MustNewHistory(3)
	if _, err := h.Add(survivorTableBudget + 100); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Remove(0, 5, survivorTableBudget/2, survivorTableBudget+50); err != nil {
		t.Fatal(err)
	}
	chain := h.Compile()
	last := &chain.ops[len(chain.ops)-1]
	if last.survivor != nil {
		t.Fatal("over-budget removal still materialized a survivor table")
	}
	if len(last.removed) != 4 {
		t.Fatalf("fallback removal list has %d entries, want 4", len(last.removed))
	}
	src := prng.NewSplitMix64(5)
	for i := 0; i < 500; i++ {
		x0 := src.Next()
		if got, want := chain.Locate(x0), interpLocate(h, x0); got != want {
			t.Fatalf("fallback Locate(%d) = %d, interpreted %d", x0, got, want)
		}
	}
	xs := make([]uint64, 300)
	for i := range xs {
		xs[i] = src.Next()
	}
	out := make([]int, len(xs))
	chain.LocateBatch(xs, out)
	for i, x0 := range xs {
		if want := interpLocate(h, x0); out[i] != want {
			t.Fatalf("fallback batch[%d] = %d, interpreted %d", i, out[i], want)
		}
	}
}

func TestSurvivorSearchDirect(t *testing.T) {
	removed := []int{2, 5, 6, 9}
	wantIdx := map[uint64]uint64{0: 0, 1: 1, 3: 2, 4: 3, 7: 4, 8: 5, 10: 6, 11: 7}
	for r := uint64(0); r < 12; r++ {
		idx, gone := survivorSearch(r, removed)
		if want, ok := wantIdx[r]; ok {
			if gone || idx != want {
				t.Fatalf("survivorSearch(%d) = (%d,%v), want (%d,false)", r, idx, gone, want)
			}
		} else if !gone {
			t.Fatalf("survivorSearch(%d) did not report removed", r)
		}
	}
}

func TestCompiledZeroAlloc(t *testing.T) {
	h := randomHistory(t, 31, 8, 12)
	chain := h.Compile()
	xs := make([]uint64, 1024)
	src := prng.NewSplitMix64(13)
	for i := range xs {
		xs[i] = src.Next()
	}
	out := make([]int, len(xs))
	sink := 0
	if n := testing.AllocsPerRun(100, func() { sink += chain.Locate(xs[0]) }); n != 0 {
		t.Fatalf("CompiledChain.Locate allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { sink += h.Locate(xs[1]) }); n != 0 {
		t.Fatalf("History.Locate (cached compile) allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, d := chain.Final(xs[2]); sink += d }); n != 0 {
		t.Fatalf("CompiledChain.Final allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { _, b, a := chain.Moved(xs[3]); sink += b + a }); n != 0 {
		t.Fatalf("CompiledChain.Moved allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(50, func() { chain.LocateBatch(xs, out) }); n != 0 {
		t.Fatalf("CompiledChain.LocateBatch allocates %.1f/op", n)
	}
	_ = sink
}

// benchChain builds the shared j-operation benchmark history (same mix as
// bench_test.go's benchHistory at the repository root).
func benchChain(b *testing.B, ops int) *History {
	b.Helper()
	h := MustNewHistory(8)
	for j := 0; j < ops; j++ {
		if j%3 == 2 {
			if _, err := h.Remove(j % h.N()); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := h.Add(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	return h
}

func BenchmarkCompiledChain(b *testing.B) {
	h := benchChain(b, 16)
	chain := h.Compile()
	xs := make([]uint64, 4096)
	src := prng.NewSplitMix64(7)
	for i := range xs {
		xs[i] = src.Next()
	}
	out := make([]int, len(xs))

	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += h.DiskAt(xs[i&4095], h.Ops())
		}
		_ = sink
	})
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += chain.Locate(xs[i&4095])
		}
		_ = sink
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			chain.LocateBatch(xs, out)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(xs)), "ns/block")
	})
}
