package scaddar

import (
	"fmt"
)

// This file implements capacity planning over future scaling operations:
// given where an array is today (its history and generator width) and a
// list of planned operations, Forecast computes each operation's expected
// block movement (the z_j of Definition 3.4), the cumulative I/O, and the
// randomness-budget trajectory, flagging the operation after which the
// paper recommends a complete redistribution. Operators can evaluate a
// growth plan — and compare batched against incremental variants — before
// touching a single block.

// PlannedOp is one future scaling operation.
type PlannedOp struct {
	// Add is the number of disks to add (exclusive with Remove).
	Add int
	// Remove is the number of disks to remove.
	Remove int
}

// ForecastStep is the prediction for one planned operation.
type ForecastStep struct {
	// Op is 1-based among the planned operations.
	Op int
	// NBefore and NAfter are the disk counts around the operation.
	NBefore, NAfter int
	// MoveFraction is z_j, the expected fraction of all blocks moved.
	MoveFraction float64
	// CumulativeMoves is the expected total per-block move count so far
	// (a block can move more than once across operations).
	CumulativeMoves float64
	// WithinTolerance reports whether the Lemma 4.3 precondition still
	// holds after this operation.
	WithinTolerance bool
	// GuaranteedUnfairness is the analytical bound after this operation.
	GuaranteedUnfairness float64
}

// Forecast is the full plan evaluation.
type Forecast struct {
	Steps []ForecastStep
	// RedistributeAfter is the 1-based index of the last operation the
	// budget supports; operations beyond it need a complete redistribution
	// first. Zero means even the first operation breaks the budget;
	// len(Steps) means the whole plan fits.
	RedistributeAfter int
}

// ForecastPlan evaluates planned operations against the current state. The
// history may be freshly created (a new array) or carry past operations;
// bits is the generator width and eps the unfairness tolerance.
func ForecastPlan(hist *History, bits uint, eps float64, plan []PlannedOp) (*Forecast, error) {
	if hist == nil {
		return nil, fmt.Errorf("scaddar: forecast needs a history")
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("scaddar: forecast tolerance %g outside (0,1)", eps)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("scaddar: empty plan")
	}
	budget, err := NewBudget(bits, hist.N0())
	if err != nil {
		return nil, err
	}
	for j := 1; j <= hist.Ops(); j++ {
		if err := budget.Record(hist.NAt(j)); err != nil {
			return nil, err
		}
	}

	f := &Forecast{}
	n := hist.N()
	cumulative := 0.0
	supported := true
	for i, op := range plan {
		if (op.Add > 0) == (op.Remove > 0) {
			return nil, fmt.Errorf("scaddar: plan op %d must add or remove, not both/neither", i+1)
		}
		var nAfter int
		if op.Add > 0 {
			nAfter = n + op.Add
		} else {
			nAfter = n - op.Remove
			if nAfter < 1 {
				return nil, fmt.Errorf("scaddar: plan op %d removes %d of %d disks", i+1, op.Remove, n)
			}
		}
		var z float64
		if nAfter > n {
			z = float64(nAfter-n) / float64(nAfter)
		} else {
			z = float64(n-nAfter) / float64(n)
		}
		cumulative += z
		if err := budget.Record(nAfter); err != nil {
			return nil, err
		}
		within := budget.WithinTolerance(eps)
		if within && supported {
			f.RedistributeAfter = i + 1
		}
		if !within {
			supported = false
		}
		f.Steps = append(f.Steps, ForecastStep{
			Op:                   i + 1,
			NBefore:              n,
			NAfter:               nAfter,
			MoveFraction:         z,
			CumulativeMoves:      cumulative,
			WithinTolerance:      within,
			GuaranteedUnfairness: budget.GuaranteedUnfairness(),
		})
		n = nAfter
	}
	return f, nil
}
