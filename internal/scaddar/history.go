package scaddar

import (
	"fmt"
	"sort"
)

// OpKind distinguishes the two scaling operations of Definition 3.3.
type OpKind uint8

// Scaling operation kinds.
const (
	// OpAdd grows the array by a disk group.
	OpAdd OpKind = iota + 1
	// OpRemove shrinks the array by a disk group.
	OpRemove
)

// String returns "add" or "remove".
func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one recorded scaling operation. For OpAdd, Count disks were appended
// (logical indices NBefore..NAfter-1). For OpRemove, Removed lists the
// removed logical indices in the pre-operation numbering, sorted ascending.
type Op struct {
	Kind    OpKind `json:"kind"`
	NBefore int    `json:"nBefore"`
	NAfter  int    `json:"nAfter"`
	Removed []int  `json:"removed,omitempty"`
}

// Count returns the number of disks in the operation's disk group.
func (o Op) Count() int {
	if o.Kind == OpAdd {
		return o.NAfter - o.NBefore
	}
	return o.NBefore - o.NAfter
}

// History is the ordered log of scaling operations applied to an array that
// started with N0 disks. Together with per-object seeds it is the ONLY state
// SCADDAR persists — the paper's "storage structure for recording scaling
// operations" — and it is what both the redistribution function RF() and the
// access function AF() consult.
//
// A History is not safe for concurrent mutation; concurrent readers are fine
// once mutation stops. The continuous-media server layer serializes scaling
// operations, which the paper assumes to be infrequent events.
//
// Lookups (Locate, Final, Moved) run on a compiled form of the chain —
// multiply-shift reciprocals instead of hardware divisions, flat
// survivor-rank tables instead of removed-list scans (see compiled.go).
// Every mutation bumps an internal version counter that invalidates the
// compiled form; the next lookup transparently recompiles. Call Compile
// directly to hold a pinned compiled chain across many lookups.
type History struct {
	n0      int
	ops     []Op
	version uint64
	cc      *chainCache
}

// NewHistory creates a History for an array that starts with n0 >= 1 disks
// and no scaling operations.
func NewHistory(n0 int) (*History, error) {
	if n0 < 1 {
		return nil, fmt.Errorf("scaddar: initial disk count %d, need at least 1", n0)
	}
	return &History{n0: n0, cc: &chainCache{}}, nil
}

// MustNewHistory is NewHistory for statically valid arguments; it panics on
// error.
func MustNewHistory(n0 int) *History {
	h, err := NewHistory(n0)
	if err != nil {
		panic(err)
	}
	return h
}

// N0 returns the initial disk count.
func (h *History) N0() int { return h.n0 }

// N returns the current disk count N_j.
func (h *History) N() int { return h.NAt(len(h.ops)) }

// NAt returns the disk count after the first j operations; NAt(0) == N0.
func (h *History) NAt(j int) int {
	if j == 0 {
		return h.n0
	}
	return h.ops[j-1].NAfter
}

// Ops returns the number of recorded scaling operations.
func (h *History) Ops() int { return len(h.ops) }

// Op returns the j-th operation (1-based, matching the paper's numbering of
// scaling operations 1..j).
func (h *History) Op(j int) Op { return h.ops[j-1] }

// Add records the addition of a disk group of count disks and returns the
// recorded operation.
func (h *History) Add(count int) (Op, error) {
	if count < 1 {
		return Op{}, fmt.Errorf("scaddar: add of %d disks, need at least 1", count)
	}
	op := Op{Kind: OpAdd, NBefore: h.N(), NAfter: h.N() + count}
	h.ops = append(h.ops, op)
	h.version++
	return op, nil
}

// Remove records the removal of the disk group with the given logical
// indices (in the current numbering) and returns the recorded operation. At
// least one disk must survive. The indices may be given in any order but
// must be distinct and in range.
func (h *History) Remove(indices ...int) (Op, error) {
	n := h.N()
	if len(indices) == 0 {
		return Op{}, fmt.Errorf("scaddar: removal of empty disk group")
	}
	if len(indices) >= n {
		return Op{}, fmt.Errorf("scaddar: removing %d of %d disks leaves none", len(indices), n)
	}
	removed := make([]int, len(indices))
	copy(removed, indices)
	sort.Ints(removed)
	for i, r := range removed {
		if r < 0 || r >= n {
			return Op{}, fmt.Errorf("scaddar: removal index %d outside [0,%d)", r, n)
		}
		if i > 0 && removed[i-1] == r {
			return Op{}, fmt.Errorf("scaddar: duplicate removal index %d", r)
		}
	}
	op := Op{Kind: OpRemove, NBefore: n, NAfter: n - len(removed), Removed: removed}
	h.ops = append(h.ops, op)
	h.version++
	return op, nil
}

// Step applies the j-th operation's REMAP to a random value that is valid
// after j-1 operations, returning the new value and whether the block moved.
func (h *History) Step(j int, x uint64) (xj uint64, moved bool) {
	op := h.ops[j-1]
	switch op.Kind {
	case OpAdd:
		return remapAdd(x, op.NBefore, op.NAfter)
	case OpRemove:
		return remapRemove(x, op.NBefore, op.NAfter, op.Removed)
	default:
		panic(fmt.Sprintf("scaddar: corrupt history: %v", op.Kind))
	}
}

// Locate is the access function AF(): it remaps the block's original random
// number x0 through every recorded operation and returns the block's current
// logical disk index. Cost is O(j) integer operations (AO1), with every
// division compiled to a multiply-shift reciprocal (see Compile).
func (h *History) Locate(x0 uint64) int {
	return h.Compile().Locate(x0)
}

// Final returns both the fully remapped random value X_j and the block's
// current logical disk.
func (h *History) Final(x0 uint64) (xj uint64, disk int) {
	return h.Compile().Final(x0)
}

// DiskAt returns the block's logical disk after only the first j operations;
// DiskAt(x0, 0) is the initial placement X0 mod N0.
func (h *History) DiskAt(x0 uint64, j int) int {
	x := x0
	for i := 1; i <= j; i++ {
		x, _ = h.Step(i, x)
	}
	return int(x % uint64(h.NAt(j)))
}

// Trace returns the full remap chain X_0, X_1, ..., X_j for a block — the
// sequence the paper uses to reason about block locations. Element i is the
// random value after i operations.
func (h *History) Trace(x0 uint64) []uint64 {
	xs := make([]uint64, len(h.ops)+1)
	xs[0] = x0
	x := x0
	for j := 1; j <= len(h.ops); j++ {
		x, _ = h.Step(j, x)
		xs[j] = x
	}
	return xs
}

// Moved reports whether the most recent operation moved the block with
// original random value x0, and the block's disks before and after that
// operation. It is the predicate RF() uses to build move plans.
func (h *History) Moved(x0 uint64) (moved bool, before, after int) {
	return h.Compile().Moved(x0)
}

// Clone returns a deep copy of the history. The clone carries its own
// compiled-chain cache, so compiling one never disturbs the other.
func (h *History) Clone() *History {
	c := &History{n0: h.n0, ops: make([]Op, len(h.ops)), version: h.version, cc: &chainCache{}}
	copy(c.ops, h.ops)
	for i := range c.ops {
		if len(h.ops[i].Removed) > 0 {
			c.ops[i].Removed = append([]int(nil), h.ops[i].Removed...)
		}
	}
	return c
}

// OpsProduct returns the product N0·N1·…·Nj as the paper's μ_j, but clamped
// to uint64 range; ok is false if the product overflowed. Budget tracks the
// exact value with big integers; this cheap variant serves quick checks.
func (h *History) OpsProduct() (mu uint64, ok bool) {
	mu = uint64(h.n0)
	for _, op := range h.ops {
		n := uint64(op.NAfter)
		if mu > ^uint64(0)/n {
			return 0, false
		}
		mu *= n
	}
	return mu, true
}

// String summarizes the history, e.g. "N0=4 add(1)→5 remove(2)→3".
func (h *History) String() string {
	s := fmt.Sprintf("N0=%d", h.n0)
	for _, op := range h.ops {
		s += fmt.Sprintf(" %s(%d)→%d", op.Kind, op.Count(), op.NAfter)
	}
	return s
}
