package scaddar

import (
	"math"
	"math/big"
	"testing"

	"scaddar/internal/prng"
)

// TestRuleOfThumbPaperExample reproduces the Section 4.3 worked example:
// "if we have an average of sixteen disks, desire ε ≈ 1%, and are using a
// 64-bit random number generator ... a total of 13 disk addition/removal
// operations can be supported."
func TestRuleOfThumbPaperExample(t *testing.T) {
	if got := RuleOfThumb(64, 0.01, 16); got != 13 {
		t.Fatalf("RuleOfThumb(64, 1%%, 16) = %d, want 13", got)
	}
}

// TestRuleOfThumbSection5Setting reproduces the Section 5 simulation
// setting: "we find k ≈ 8 where ε ≈ 5%, N̄ = 8 and b = 32".
func TestRuleOfThumbSection5Setting(t *testing.T) {
	if got := RuleOfThumb(32, 0.05, 8); got != 8 {
		t.Fatalf("RuleOfThumb(32, 5%%, 8) = %d, want 8", got)
	}
}

func TestRuleOfThumbDegenerate(t *testing.T) {
	if got := RuleOfThumb(0, 0.01, 16); got != 0 {
		t.Errorf("zero bits: %d", got)
	}
	if got := RuleOfThumb(64, 0, 16); got != 0 {
		t.Errorf("zero eps: %d", got)
	}
	if got := RuleOfThumb(64, 0.01, 1); got != 0 {
		t.Errorf("one disk: %d", got)
	}
	// Tiny budget: 8 bits with 16 disks cannot guarantee 1%.
	if got := RuleOfThumb(8, 0.01, 16); got != 0 {
		t.Errorf("8-bit budget: %d", got)
	}
}

func TestNewBudgetValidation(t *testing.T) {
	if _, err := NewBudget(0, 4); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := NewBudget(65, 4); err == nil {
		t.Error("65 bits accepted")
	}
	if _, err := NewBudget(32, 0); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestMustNewBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewBudget(0, 4) did not panic")
		}
	}()
	MustNewBudget(0, 4)
}

func TestBudgetRecordAndMu(t *testing.T) {
	b := MustNewBudget(32, 4)
	if b.Mu().Int64() != 4 {
		t.Fatalf("initial mu = %v, want 4", b.Mu())
	}
	if err := b.Record(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Record(6); err != nil {
		t.Fatal(err)
	}
	if b.Mu().Int64() != 4*5*6 {
		t.Fatalf("mu = %v, want 120", b.Mu())
	}
	if b.Ops() != 2 {
		t.Fatalf("ops = %d, want 2", b.Ops())
	}
	if err := b.Record(0); err == nil {
		t.Error("record of zero disks accepted")
	}
	// Mu must return a copy.
	b.Mu().SetInt64(999)
	if b.Mu().Int64() != 120 {
		t.Fatal("Mu leaked internal state")
	}
}

func TestBudgetTolerance(t *testing.T) {
	// b=16: R0 = 65535. eps=0.05: bound = 65535*0.05/1.05 ~ 3120.7.
	b := MustNewBudget(16, 8)
	if !b.WithinTolerance(0.05) {
		t.Fatal("mu=8 should be within tolerance")
	}
	b.Record(9)  // 72
	b.Record(10) // 720
	if !b.WithinTolerance(0.05) {
		t.Fatal("mu=720 should be within tolerance")
	}
	if !b.NextWithinTolerance(4, 0.05) { // 2880 <= 3120
		t.Fatal("mu=2880 should be within tolerance")
	}
	if b.NextWithinTolerance(5, 0.05) { // 3600 > 3120
		t.Fatal("mu=3600 should exceed tolerance")
	}
	b.Record(5)
	if b.WithinTolerance(0.05) {
		t.Fatal("recorded beyond tolerance but still reported within")
	}
	if b.WithinTolerance(0) || b.WithinTolerance(-1) {
		t.Fatal("non-positive tolerance accepted")
	}
}

func TestBudgetGuaranteedUnfairness(t *testing.T) {
	b := MustNewBudget(16, 8)
	// R0/mu = 65535/8 ~ 8191.9 -> f ~ 1/8190.9.
	f := b.GuaranteedUnfairness()
	if f <= 0 || f > 1.0/8000 {
		t.Fatalf("f = %g, want ~1/8191", f)
	}
	// Exhaust the range: mu >= R0 -> +Inf.
	for i := 0; i < 6; i++ {
		b.Record(8)
	}
	// mu = 8^7 = 2097152 > 65535.
	if f := b.GuaranteedUnfairness(); !math.IsInf(f, 1) {
		t.Fatalf("exhausted budget f = %g, want +Inf", f)
	}
}

func TestBudgetRangeAfter(t *testing.T) {
	b := MustNewBudget(16, 8)
	if got := b.RangeAfter(); got.Cmp(big.NewInt(8191)) != 0 {
		t.Fatalf("RangeAfter = %v, want 8191", got)
	}
	b.Record(10)
	if got := b.RangeAfter(); got.Cmp(big.NewInt(819)) != 0 {
		t.Fatalf("RangeAfter = %v, want 819", got)
	}
}

func TestBudgetReset(t *testing.T) {
	b := MustNewBudget(16, 8)
	b.Record(9)
	b.Record(10)
	if err := b.Reset(12); err != nil {
		t.Fatal(err)
	}
	if b.Ops() != 0 || b.Mu().Int64() != 12 {
		t.Fatalf("after reset: ops=%d mu=%v", b.Ops(), b.Mu())
	}
	if err := b.Reset(0); err == nil {
		t.Error("reset with zero disks accepted")
	}
}

// TestMaxOpsExactMatchesRuleOfThumb checks that for a constant-size array
// the exact Lemma 4.3 simulation and the rule of thumb agree to within one
// operation (the rule of thumb is an approximation via the geometric mean).
func TestMaxOpsExactMatchesRuleOfThumb(t *testing.T) {
	cases := []struct {
		bits uint
		n    int
		eps  float64
	}{
		{64, 16, 0.01},
		{32, 8, 0.05},
		{48, 10, 0.02},
		{32, 4, 0.01},
	}
	for _, c := range cases {
		exact, err := MaxOpsExact(c.bits, c.n, c.eps, func(int) int { return c.n }, 100)
		if err != nil {
			t.Fatal(err)
		}
		thumb := RuleOfThumb(c.bits, c.eps, float64(c.n))
		if exact < thumb-1 || exact > thumb+1 {
			t.Errorf("b=%d n=%d eps=%g: exact %d vs rule-of-thumb %d", c.bits, c.n, c.eps, exact, thumb)
		}
	}
}

func TestMaxOpsExactErrors(t *testing.T) {
	if _, err := MaxOpsExact(0, 4, 0.05, func(int) int { return 4 }, 10); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := MaxOpsExact(32, 4, 0.05, func(int) int { return 0 }, 10); err == nil {
		t.Error("zero-disk trajectory accepted")
	}
}

func TestBudgetFor(t *testing.T) {
	h := MustNewHistory(8)
	h.Add(1) // 9
	h.Add(1) // 10
	b, err := BudgetFor(prng.NewPCG32(1), h)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bits() != 32 {
		t.Fatalf("bits = %d, want 32", b.Bits())
	}
	if b.Mu().Int64() != 8*9*10 {
		t.Fatalf("mu = %v, want 720", b.Mu())
	}
}

// TestBudgetPredictsEmpiricalUnfairness checks the bound is sound: the
// empirical unfairness of a SCADDAR placement never exceeds the analytical
// guarantee while the budget is within tolerance. We use a small width so
// the bound is within measurable reach.
func TestBudgetPredictsEmpiricalUnfairness(t *testing.T) {
	const (
		bits   = 24
		n0     = 4
		blocks = 1 << 18
		eps    = 0.30
	)
	h := MustNewHistory(n0)
	b := MustNewBudget(bits, n0)
	src := prng.Truncate(prng.NewSplitMix64(77), bits).(prng.Indexed)
	for op := 0; op < 4; op++ {
		if !b.NextWithinTolerance(h.N()+1, eps) {
			break
		}
		h.Add(1)
		b.Record(h.N())
		counts := make([]int, h.N())
		for i := 0; i < blocks; i++ {
			counts[h.Locate(src.At(uint64(i)))]++
		}
		// The analytical bound is on expected loads; empirical counts add
		// sampling noise of about 1/sqrt(blocks/N) ≈ 1.3%, far below eps.
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		got := float64(max)/float64(min) - 1
		if got > eps+0.05 {
			t.Fatalf("after %d ops empirical unfairness %.4f exceeds tolerance %.2f", h.Ops(), got, eps)
		}
	}
}
