package scaddar

import (
	"sync"
	"testing"

	"scaddar/internal/prng"
)

func TestSafeLocatorValidation(t *testing.T) {
	h := MustNewHistory(4)
	if _, err := NewSafeLocator(nil, splitMixFactory); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := NewSafeLocator(h, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestSafeLocatorMatchesLocator(t *testing.T) {
	h := MustNewHistory(6)
	h.Add(2)
	h.Remove(1, 5)
	plain, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	safe, err := NewSafeLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		for i := uint64(0); i < 200; i++ {
			a, err := plain.Disk(seed, i)
			if err != nil {
				t.Fatal(err)
			}
			b, err := safe.Disk(seed, i)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("seed %d block %d: plain %d, safe %d", seed, i, a, b)
			}
			if da, _ := plain.DiskAt(seed, i, 1); da >= h.NAt(1) {
				t.Fatal("DiskAt out of range")
			}
		}
	}
	if safe.History() != h {
		t.Fatal("history accessor broken")
	}
}

// TestSafeLocatorConcurrent hammers the locator from many goroutines; run
// with -race to verify the synchronization. Both the pure-At fast path
// (SplitMix64) and the mutex-guarded path (PCG32 via SyncCached) are
// exercised.
func TestSafeLocatorConcurrent(t *testing.T) {
	factories := map[string]SourceFactory{
		"splitmix64": func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) },
		"pcg32":      func(seed uint64) prng.Source { return prng.NewPCG32(seed) },
		"trunc32":    func(seed uint64) prng.Source { return prng.Truncate(prng.NewSplitMix64(seed), 32) },
	}
	for name, factory := range factories {
		t.Run(name, func(t *testing.T) {
			h := MustNewHistory(8)
			h.Add(2)
			h.Remove(3)
			safe, err := NewSafeLocator(h, factory)
			if err != nil {
				t.Fatal(err)
			}
			// Reference answers computed single-threaded.
			ref, err := NewLocator(h.Clone(), factory)
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines = 8
				perG       = 500
			)
			want := make([]int, perG)
			for i := range want {
				d, err := ref.Disk(uint64(i%4+1), uint64(i))
				if err != nil {
					t.Fatal(err)
				}
				want[i] = d
			}
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						// Interleave access orders per goroutine.
						idx := (i*7 + g*13) % perG
						d, err := safe.Disk(uint64(idx%4+1), uint64(idx))
						if err != nil {
							errs <- err
							return
						}
						if d != want[idx] {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestSafeLocatorWidthChangeRejected(t *testing.T) {
	h := MustNewHistory(4)
	calls := 0
	factory := func(seed uint64) prng.Source {
		calls++
		if calls > 1 {
			return prng.NewPCG32(seed)
		}
		return prng.NewSplitMix64(seed)
	}
	safe, err := NewSafeLocator(h, factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := safe.X0(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := safe.X0(2, 0); err == nil {
		t.Fatal("width change accepted")
	}
}

func TestSyncCachedMatchesCached(t *testing.T) {
	a := prng.NewCached(prng.NewPCG32(9))
	b := prng.NewSyncCached(prng.NewPCG32(9))
	for _, i := range []uint64{10, 0, 5, 10, 3} {
		if a.At(i) != b.At(i) {
			t.Fatalf("SyncCached.At(%d) diverges", i)
		}
	}
	if a.Bits() != b.Bits() || a.Seed() != b.Seed() {
		t.Fatal("metadata diverges")
	}
	v := b.Next()
	b.Reset()
	first := b.At(uint64(0))
	_ = v
	_ = first
}

func TestEnsureConcurrentIndexedFastPaths(t *testing.T) {
	sm := prng.NewSplitMix64(1)
	if prng.EnsureConcurrentIndexed(sm) != prng.Indexed(sm) {
		t.Error("SplitMix64 was wrapped unnecessarily")
	}
	tr := prng.Truncate(prng.NewSplitMix64(1), 32)
	if _, wrapped := prng.EnsureConcurrentIndexed(tr).(*prng.SyncCached); wrapped {
		t.Error("truncated SplitMix64 was wrapped unnecessarily")
	}
	if _, wrapped := prng.EnsureConcurrentIndexed(prng.NewPCG32(1)).(*prng.SyncCached); !wrapped {
		t.Error("sequential source not wrapped")
	}
}
