package scaddar

import "testing"

// FuzzCompiledChain differentially tests the compiled REMAP chain against
// the interpreted one: over a history derived from the fuzz schedule, Locate,
// Final, Moved, and LocateBatch must agree exactly with the per-operation
// Step walk, and mutating the history must invalidate the compiled form.
// Seed inputs live in testdata/fuzz/FuzzCompiledChain.
func FuzzCompiledChain(f *testing.F) {
	f.Add(uint64(28), uint8(6), uint32(0x1234), uint16(3))
	f.Add(uint64(41), uint8(6), uint32(0xFFFFFFFF), uint16(0xFFFF))
	f.Add(^uint64(0), uint8(2), uint32(1), uint16(0))
	f.Add(uint64(0), uint8(0), uint32(0xAAAAAAAA), uint16(7))
	f.Fuzz(func(t *testing.T, x0 uint64, n0Raw uint8, schedule uint32, removeSel uint16) {
		n0 := int(n0Raw%16) + 1
		h := MustNewHistory(n0)
		// Derive up to 12 operations from the schedule bits: 00/01 add,
		// 10 remove one disk, 11 remove up to three disks.
		for op := 0; op < 12; op++ {
			bits := (schedule >> (op * 2)) & 3
			switch {
			case bits == 0:
				if _, err := h.Add(1); err != nil {
					t.Fatal(err)
				}
			case bits == 1:
				if _, err := h.Add(int(schedule>>16)%7 + 2); err != nil {
					t.Fatal(err)
				}
			case h.N() > 1:
				k := 1
				if bits == 3 {
					k = int(removeSel%3) + 1
					if k > h.N()-1 {
						k = h.N() - 1
					}
				}
				idx := make([]int, 0, k)
				used := make(map[int]bool, k)
				for i := 0; len(idx) < k; i++ {
					cand := (int(removeSel) + op + i) % h.N()
					if !used[cand] {
						used[cand] = true
						idx = append(idx, cand)
					}
				}
				if _, err := h.Remove(idx...); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := h.Add(1); err != nil {
					t.Fatal(err)
				}
			}
		}

		chain := h.Compile()
		if !chain.Valid() {
			t.Fatal("fresh chain reports invalid")
		}
		if chain.N() != h.N() || chain.Ops() != h.Ops() {
			t.Fatalf("chain shape (%d,%d) != history (%d,%d)", chain.N(), chain.Ops(), h.N(), h.Ops())
		}
		// Probe the fuzzed value and a spread of its neighbors.
		xs := []uint64{x0, x0 + 1, x0 ^ 0xFFFF, x0 >> 1, x0 * 0x9E3779B97F4A7C15, 0, 1, ^uint64(0)}
		for _, x := range xs {
			if got, want := chain.Locate(x), interpLocate(h, x); got != want {
				t.Fatalf("%v: compiled Locate(%d) = %d, interpreted %d", h, x, got, want)
			}
			gx, gd := chain.Final(x)
			wx, wd := interpFinal(h, x)
			if gx != wx || gd != wd {
				t.Fatalf("%v: compiled Final(%d) = (%d,%d), interpreted (%d,%d)", h, x, gx, gd, wx, wd)
			}
			gm, gb, ga := chain.Moved(x)
			wm, wb, wa := interpMoved(h, x)
			if gm != wm || gb != wb || ga != wa {
				t.Fatalf("%v: compiled Moved(%d) = (%v,%d,%d), interpreted (%v,%d,%d)",
					h, x, gm, gb, ga, wm, wb, wa)
			}
		}
		out := make([]int, len(xs))
		chain.LocateBatch(xs, out)
		for i, x := range xs {
			if want := interpLocate(h, x); out[i] != want {
				t.Fatalf("%v: batch[%d] = %d, interpreted %d", h, i, out[i], want)
			}
		}
		// Mutation must invalidate; the recompiled chain must agree again.
		if _, err := h.Add(1); err != nil {
			t.Fatal(err)
		}
		if chain.Valid() {
			t.Fatal("chain still valid after mutation")
		}
		if got, want := h.Compile().Locate(x0), interpLocate(h, x0); got != want {
			t.Fatalf("recompiled Locate(%d) = %d, interpreted %d", x0, got, want)
		}
	})
}
