package scaddar

import "math/bits"

// This file implements Granlund–Montgomery ("magic number") division:
// truncated division of an arbitrary uint64 by a divisor known ahead of
// time, compiled into a multiply-high and a shift. The REMAP chain performs
// two or three divisions per operation per lookup, all by disk counts that
// are fixed once the operation is recorded — exactly the shape this
// technique wants. The algorithm is the classical round-up/round-down
// magic-number construction (Granlund & Montgomery, PLDI '94; the same one
// compilers emit for division by constants and libdivide implements at
// runtime).

// divAlg selects the post-multiply fixup a compiled divisor needs.
type divAlg uint8

const (
	// algDown: round-down magic number, q = mulhi(x, m) >> s. Powers of two
	// 2^k (k >= 1) are folded into this form with m = 2^(64-k), s = 0,
	// since mulhi(x, 2^(64-k)) is exactly x >> k — one arm fewer on the
	// lookup hot path.
	algDown divAlg = iota
	// algUp: round-up magic number (the 65-bit case),
	// q = ((x - mulhi(x, m))/2 + mulhi(x, m)) >> s.
	algUp
	// algOne: divisor 1, q = x.
	algOne
)

// magicDiv is a compiled reciprocal for one fixed divisor. The zero value
// is invalid; build with newMagicDiv.
type magicDiv struct {
	m   uint64 // magic multiplier (algDown, algUp)
	d   uint64 // the divisor itself, for remainder computation
	s   uint8  // post shift
	alg divAlg
}

// newMagicDiv compiles a reciprocal for divisor d >= 1.
func newMagicDiv(d uint64) magicDiv {
	if d == 0 {
		panic("scaddar: magic division by zero")
	}
	if d == 1 {
		return magicDiv{d: 1, alg: algOne}
	}
	if d&(d-1) == 0 {
		k := uint(bits.TrailingZeros64(d))
		return magicDiv{m: uint64(1) << (64 - k), d: d, alg: algDown}
	}
	// floor(log2 d) for a non-power-of-two divisor; 2^l < d < 2^(l+1).
	l := uint8(63 - bits.LeadingZeros64(d))
	// proposed = floor(2^(64+l) / d), rem its remainder. The numerator's
	// high word 2^l is < d, as bits.Div64 requires.
	proposed, rem := bits.Div64(uint64(1)<<l, 0, d)
	if e := d - rem; e < uint64(1)<<l {
		// Rounding the magic up by one stays within 64 bits.
		return magicDiv{m: proposed + 1, d: d, s: l, alg: algDown}
	}
	// The 65-bit case: double precision, re-deriving the rounding carry
	// from the doubled remainder, and recover the lost top bit with the
	// add-and-halve fixup in div.
	m := 2*proposed + 1
	if twiceRem := rem + rem; twiceRem >= d || twiceRem < rem {
		m++
	}
	return magicDiv{m: m, d: d, s: l, alg: algUp}
}

// div returns x / d. The shift counts are masked to 63 so the compiler can
// elide its variable-shift overflow guard on the hot path.
func (mv magicDiv) div(x uint64) uint64 {
	switch mv.alg {
	case algDown:
		hi, _ := bits.Mul64(x, mv.m)
		return hi >> (mv.s & 63)
	case algUp:
		hi, _ := bits.Mul64(x, mv.m)
		return (((x - hi) >> 1) + hi) >> (mv.s & 63)
	default: // algOne
		return x
	}
}

// mod returns x % d.
func (mv magicDiv) mod(x uint64) uint64 { return x - mv.div(x)*mv.d }

// divmod returns x / d and x % d with one reciprocal multiply.
func (mv magicDiv) divmod(x uint64) (q, r uint64) {
	q = mv.div(x)
	return q, x - q*mv.d
}
