package scaddar

import (
	"fmt"
	"math"
	"math/big"

	"scaddar/internal/prng"
)

// Budget tracks the shrinking random-number range across scaling operations
// and implements the paper's Section 4.3 analysis. Each operation j divides
// the usable range by N_{j-1}; Lemma 4.2 bounds the post-op range by
// R_0 div μ_k with μ_k = N_0·N_1·…·N_k, and Lemma 4.3 shows the unfairness
// coefficient stays below ε while μ_k ≤ R_0·ε/(1+ε). Budget keeps μ_k as an
// exact big integer — the paper's "in an implementation of this scheme, we
// can keep track of the quantity μ_k explicitly and find out whether the
// next operation will lead to a violation of the precondition".
type Budget struct {
	bits uint
	r0   *big.Int // 2^bits - 1
	mu   *big.Int // N0 * N1 * ... * Nk
	k    int      // number of recorded operations
}

// NewBudget creates a budget for a b-bit generator and an initial array of
// n0 disks (so μ_0 = N_0).
func NewBudget(bits uint, n0 int) (*Budget, error) {
	if bits == 0 || bits > 64 {
		return nil, fmt.Errorf("scaddar: budget bits %d outside [1,64]", bits)
	}
	if n0 < 1 {
		return nil, fmt.Errorf("scaddar: budget initial disks %d, need at least 1", n0)
	}
	r0 := new(big.Int).Lsh(big.NewInt(1), bits)
	r0.Sub(r0, big.NewInt(1))
	return &Budget{bits: bits, r0: r0, mu: big.NewInt(int64(n0))}, nil
}

// MustNewBudget is NewBudget for statically valid arguments; it panics on
// error.
func MustNewBudget(bits uint, n0 int) *Budget {
	b, err := NewBudget(bits, n0)
	if err != nil {
		panic(err)
	}
	return b
}

// Bits returns the generator width b.
func (b *Budget) Bits() uint { return b.bits }

// Ops returns the number of operations recorded so far.
func (b *Budget) Ops() int { return b.k }

// Mu returns a copy of the exact product μ_k = N_0·N_1·…·N_k.
func (b *Budget) Mu() *big.Int { return new(big.Int).Set(b.mu) }

// Record accounts for a scaling operation that leaves the array with nAfter
// disks, multiplying μ by N_j = nAfter.
func (b *Budget) Record(nAfter int) error {
	if nAfter < 1 {
		return fmt.Errorf("scaddar: budget record of %d disks", nAfter)
	}
	b.mu.Mul(b.mu, big.NewInt(int64(nAfter)))
	b.k++
	return nil
}

// GuaranteedUnfairness returns the Lemma 4.2/4.3 upper bound on the
// unfairness coefficient after the recorded operations:
// f ≤ 1/(R_0 div μ_k - ... ), conservatively 1/(R_0/μ_k - 1). It returns
// +Inf when the guaranteed range has collapsed (μ_k ≥ R_0).
func (b *Budget) GuaranteedUnfairness() float64 {
	// f(R_k, N_k) = 1/(R_k div N_k) and R_k div N_k >= R_0 div mu_k
	// (Lemma 4.2), but the proof of Lemma 4.3 uses the safer
	// R_0 div mu_k > R_0/mu_k - 1, so we report 1/(R_0/mu_k - 1).
	ratio := new(big.Rat).SetFrac(b.r0, b.mu)
	f, _ := ratio.Float64()
	if f <= 1 {
		return math.Inf(1)
	}
	return 1 / (f - 1)
}

// WithinTolerance reports whether the Lemma 4.3 precondition
// μ_k ≤ R_0·ε/(1+ε) still holds for the given tolerance, i.e. whether the
// unfairness coefficient is guaranteed to be below eps.
func (b *Budget) WithinTolerance(eps float64) bool {
	return b.satisfies(b.mu, eps)
}

// NextWithinTolerance reports whether recording one more operation that
// leaves nAfter disks would still satisfy the Lemma 4.3 precondition. A
// false result is the paper's signal that a complete redistribution (which
// resets the chain and the budget) should be scheduled instead.
func (b *Budget) NextWithinTolerance(nAfter int, eps float64) bool {
	next := new(big.Int).Mul(b.mu, big.NewInt(int64(nAfter)))
	return b.satisfies(next, eps)
}

// satisfies checks mu <= R0 * eps / (1+eps) exactly, in rational arithmetic.
func (b *Budget) satisfies(mu *big.Int, eps float64) bool {
	if eps <= 0 {
		return false
	}
	e := new(big.Rat).SetFloat64(eps)
	if e == nil {
		return false
	}
	bound := new(big.Rat).SetInt(b.r0)
	bound.Mul(bound, e)
	onePlus := new(big.Rat).Add(big.NewRat(1, 1), e)
	bound.Quo(bound, onePlus)
	muRat := new(big.Rat).SetInt(mu)
	return muRat.Cmp(bound) <= 0
}

// Reset restores the budget to its initial state with n0 disks, modeling the
// complete redistribution the paper recommends once the precondition fails:
// after redistributing every block with fresh X_0 values, the chain restarts.
func (b *Budget) Reset(n0 int) error {
	if n0 < 1 {
		return fmt.Errorf("scaddar: budget reset with %d disks", n0)
	}
	b.mu = big.NewInt(int64(n0))
	b.k = 0
	return nil
}

// RuleOfThumb returns the paper's a-priori estimate of the number of scaling
// operations k supportable with a b-bit generator, an average of avgDisks
// disks, and unfairness tolerance eps:
//
//	k + 1 <= (b - log2(1/eps)) / log2(avgDisks)
//
// The worked example in Section 4.3 — b=64, eps=1%, 16 disks — yields k=13.
// It returns 0 if even a single operation cannot be guaranteed.
func RuleOfThumb(bits uint, eps float64, avgDisks float64) int {
	if bits == 0 || eps <= 0 || avgDisks <= 1 {
		return 0
	}
	num := float64(bits) - math.Log2(1/eps)
	den := math.Log2(avgDisks)
	kPlus1 := math.Floor(num / den)
	if kPlus1 < 1 {
		return 0
	}
	return int(kPlus1) - 1
}

// MaxOpsExact simulates the exact Lemma 4.3 precondition for a fixed
// per-operation disk count trajectory and returns the largest number of
// operations whose product stays within tolerance. disksAfterOp returns N_j
// given j (1-based); the simulation stops after maxOps probes.
func MaxOpsExact(bits uint, n0 int, eps float64, disksAfterOp func(j int) int, maxOps int) (int, error) {
	b, err := NewBudget(bits, n0)
	if err != nil {
		return 0, err
	}
	for j := 1; j <= maxOps; j++ {
		n := disksAfterOp(j)
		if n < 1 {
			return 0, fmt.Errorf("scaddar: trajectory gives %d disks at op %d", n, j)
		}
		if !b.NextWithinTolerance(n, eps) {
			return j - 1, nil
		}
		if err := b.Record(n); err != nil {
			return 0, err
		}
	}
	return maxOps, nil
}

// RangeAfter returns the guaranteed remaining random range R_0 div μ_k after
// the recorded operations (Lemma 4.2's lower bound on R_k div N_k times N_k,
// i.e. the per-disk resolution of the remaining randomness).
func (b *Budget) RangeAfter() *big.Int {
	return new(big.Int).Div(b.r0, b.mu)
}

// BudgetFor builds a Budget that has already recorded every operation of a
// History, pairing an existing log with the Section 4.3 analysis.
func BudgetFor(src prng.Source, h *History) (*Budget, error) {
	b, err := NewBudget(src.Bits(), h.N0())
	if err != nil {
		return nil, err
	}
	for j := 1; j <= h.Ops(); j++ {
		if err := b.Record(h.NAt(j)); err != nil {
			return nil, err
		}
	}
	return b, nil
}
