package scaddar

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzHistoryBinary feeds arbitrary bytes to the binary decoder: it must
// never panic, and anything it accepts must re-encode to a log that decodes
// to the same history.
func FuzzHistoryBinary(f *testing.F) {
	h := MustNewHistory(6)
	h.Add(3)
	h.Remove(1, 4)
	seedData, _ := h.MarshalBinary()
	f.Add(seedData)
	f.Add([]byte{})
	f.Add([]byte("SCDR"))
	f.Add([]byte("SCDR\x01\x06\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var back History
		if err := back.UnmarshalBinary(data); err != nil {
			return // rejected: fine
		}
		re, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted history failed to re-encode: %v", err)
		}
		var again History
		if err := again.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-encoded history rejected: %v", err)
		}
		if again.String() != back.String() {
			t.Fatalf("round trip changed history: %q vs %q", again.String(), back.String())
		}
		// An accepted history must be internally consistent.
		if back.N() < 1 {
			t.Fatalf("accepted history with %d disks", back.N())
		}
		for x0 := uint64(0); x0 < 64; x0++ {
			if d := back.Locate(x0); d < 0 || d >= back.N() {
				t.Fatalf("accepted history locates out of range: %d of %d", d, back.N())
			}
		}
	})
}

// FuzzHistoryJSON does the same for the JSON codec.
func FuzzHistoryJSON(f *testing.F) {
	h := MustNewHistory(4)
	h.Add(2)
	seedData, _ := json.Marshal(h)
	f.Add(seedData)
	f.Add([]byte(`{"n0":4,"ops":[]}`))
	f.Add([]byte(`{"n0":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var back History
		if err := json.Unmarshal(data, &back); err != nil {
			return
		}
		re, err := json.Marshal(&back)
		if err != nil {
			t.Fatalf("accepted history failed to re-encode: %v", err)
		}
		var again History
		if err := json.Unmarshal(re, &again); err != nil {
			t.Fatalf("re-encoded history rejected: %v (%s)", err, re)
		}
		if !bytes.Equal(re, mustJSON(t, &again)) {
			t.Fatalf("JSON round trip unstable")
		}
	})
}

func mustJSON(t *testing.T, h *History) []byte {
	t.Helper()
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzRemapChain fuzzes the remap arithmetic over a derived operation
// schedule: the chain must stay deterministic and in range, movers on adds
// must land on added disks, and stayers on removals must keep their
// physical disks.
func FuzzRemapChain(f *testing.F) {
	f.Add(uint64(28), uint8(6), uint16(0x1234))
	f.Add(uint64(41), uint8(6), uint16(0xFFFF))
	f.Add(^uint64(0), uint8(2), uint16(1))
	f.Fuzz(func(t *testing.T, x0 uint64, n0Raw uint8, schedule uint16) {
		n0 := int(n0Raw%16) + 1
		h := MustNewHistory(n0)
		// Derive up to 8 operations from the schedule bits.
		for op := 0; op < 8; op++ {
			bits := (schedule >> (op * 2)) & 3
			switch {
			case bits == 0:
				if _, err := h.Add(1); err != nil {
					t.Fatal(err)
				}
			case bits == 1:
				if _, err := h.Add(int(bits) + 1); err != nil {
					t.Fatal(err)
				}
			case h.N() > 1:
				if _, err := h.Remove(int(schedule) % h.N()); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := h.Add(1); err != nil {
					t.Fatal(err)
				}
			}
		}
		d1 := h.Locate(x0)
		d2 := h.Locate(x0)
		if d1 != d2 {
			t.Fatal("Locate not deterministic")
		}
		if d1 < 0 || d1 >= h.N() {
			t.Fatalf("disk %d outside [0,%d)", d1, h.N())
		}
		// Per-step invariants along the trace.
		trace := h.Trace(x0)
		for j := 1; j <= h.Ops(); j++ {
			op := h.Op(j)
			before := int(trace[j-1] % uint64(op.NBefore))
			after := int(trace[j] % uint64(op.NAfter))
			switch op.Kind {
			case OpAdd:
				if after != before && after < op.NBefore {
					t.Fatalf("op %d: mover landed on old disk %d", j, after)
				}
			case OpRemove:
				nw, gone := survivorIndex(before, op.Removed)
				if gone {
					continue // mover: any survivor is legal
				}
				if after != nw {
					t.Fatalf("op %d: stayer moved from %d to %d (want %d)", j, before, after, nw)
				}
			}
		}
	})
}

// FuzzCodec cross-checks the two History codecs against each other: any log
// the binary decoder accepts must survive a binary → JSON → binary round
// trip bit-for-bit, and any log the JSON decoder accepts must survive the
// trip the other way around. A divergence means the codecs disagree on what
// a history is — exactly the corruption AO1's directory-free lookup cannot
// tolerate. Seed inputs live in testdata/fuzz/FuzzCodec.
func FuzzCodec(f *testing.F) {
	h := MustNewHistory(6)
	h.Add(3)
	h.Remove(1, 4)
	binSeed, _ := h.MarshalBinary()
	jsonSeed, _ := json.Marshal(h)
	f.Add(binSeed)
	f.Add(jsonSeed)
	f.Add([]byte(`{"n0":4,"ops":[]}`))
	f.Add([]byte("SCDR\x01\x06\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fromBin History
		if err := fromBin.UnmarshalBinary(data); err == nil {
			viaJSON, err := json.Marshal(&fromBin)
			if err != nil {
				t.Fatalf("binary-accepted history failed JSON encode: %v", err)
			}
			var back History
			if err := json.Unmarshal(viaJSON, &back); err != nil {
				t.Fatalf("JSON decode of binary-accepted history: %v (%s)", err, viaJSON)
			}
			reBin, err := back.MarshalBinary()
			if err != nil {
				t.Fatalf("binary re-encode after JSON trip: %v", err)
			}
			canonical, _ := fromBin.MarshalBinary()
			if !bytes.Equal(reBin, canonical) {
				t.Fatalf("binary → JSON → binary diverged:\n  %x\n  %x", canonical, reBin)
			}
			// Both codecs must agree on lookups, not just encodings.
			for x0 := uint64(0); x0 < 32; x0++ {
				if fromBin.Locate(x0) != back.Locate(x0) {
					t.Fatalf("codecs disagree on Locate(%d): %d vs %d",
						x0, fromBin.Locate(x0), back.Locate(x0))
				}
			}
		}
		var fromJSON History
		if err := json.Unmarshal(data, &fromJSON); err == nil {
			viaBin, err := fromJSON.MarshalBinary()
			if err != nil {
				t.Fatalf("JSON-accepted history failed binary encode: %v", err)
			}
			var back History
			if err := back.UnmarshalBinary(viaBin); err != nil {
				t.Fatalf("binary decode of JSON-accepted history: %v", err)
			}
			reJSON, err := json.Marshal(&back)
			if err != nil {
				t.Fatalf("JSON re-encode after binary trip: %v", err)
			}
			if !bytes.Equal(reJSON, mustJSON(t, &fromJSON)) {
				t.Fatalf("JSON → binary → JSON diverged:\n  %s\n  %s", mustJSON(t, &fromJSON), reJSON)
			}
		}
	})
}
