package scaddar

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

// TestPaperRemovalExampleMovedBlock reproduces the worked example of
// Section 4.2.1, first case: disks {0..5}, disk 4 removed, a block with
// X_{j-1} = 28 (so D_{j-1} = 28 mod 6 = 4) must move. The paper derives
// X_j = q_{j-1} = 4 and D_j = 4 mod 5 = 4, which maps to physical Disk 5.
func TestPaperRemovalExampleMovedBlock(t *testing.T) {
	xj, moved := remapRemove(28, 6, 5, []int{4})
	if !moved {
		t.Fatal("block on removed disk reported as not moved")
	}
	if xj != 4 {
		t.Fatalf("X_j = %d, want 4", xj)
	}
	if d := xj % 5; d != 4 {
		t.Fatalf("D_j = %d, want 4 (the 4-th surviving disk, physical Disk 5)", d)
	}
}

// TestPaperRemovalExampleStayingBlock reproduces the second case: a block
// with X_{j-1} = 41 (D_{j-1} = 41 mod 6 = 5) stays on Disk 5 when Disk 4 is
// removed. The paper derives X_j = 34 via Eq. 3a: new(5) = 4 and
// q·N_j + new(r) = 6·5 + 4 = 34, so D_j = 34 mod 5 = 4 — still physical
// Disk 5.
func TestPaperRemovalExampleStayingBlock(t *testing.T) {
	xj, moved := remapRemove(41, 6, 5, []int{4})
	if moved {
		t.Fatal("block on surviving disk reported as moved")
	}
	if xj != 34 {
		t.Fatalf("X_j = %d, want 34", xj)
	}
	if d := xj % 5; d != 4 {
		t.Fatalf("D_j = %d, want 4", d)
	}
}

// TestPaperRemovalExampleViaArray runs the same example through the
// physical-naming layer: logical index 4 after removing Disk 4 from {0..5}
// must be physical Disk 5.
func TestPaperRemovalExampleViaArray(t *testing.T) {
	a := MustNewArray(6)
	if err := a.Remove(4); err != nil {
		t.Fatal(err)
	}
	if got := a.Locate(28); got != DiskID(5) {
		t.Fatalf("moved block lands on physical disk %d, want 5", got)
	}
	if got := a.Locate(41); got != DiskID(5) {
		t.Fatalf("staying block lands on physical disk %d, want 5", got)
	}
}

func TestSurvivorIndex(t *testing.T) {
	// Paper's example: removing disk 1 from {0,1,2,3}, new(2) = 1.
	if got, gone := survivorIndex(2, []int{1}); gone || got != 1 {
		t.Fatalf("new(2) with {1} removed = %d gone=%v, want 1 false", got, gone)
	}
	if _, gone := survivorIndex(1, []int{1}); !gone {
		t.Fatal("removed disk not reported gone")
	}
	if got, gone := survivorIndex(0, []int{1}); gone || got != 0 {
		t.Fatalf("new(0) = %d gone=%v, want 0 false", got, gone)
	}
	if got, gone := survivorIndex(5, []int{0, 2, 4}); gone || got != 2 {
		t.Fatalf("new(5) with {0,2,4} removed = %d, want 2", got)
	}
}

func TestRemapAddStayKeepsDisk(t *testing.T) {
	// x = 103, 4 -> 5 disks: q = 25, r = 3, t = 25 mod 5 = 0 < 4: stays.
	xj, moved := remapAdd(103, 4, 5)
	if moved {
		t.Fatal("staying block reported as moved")
	}
	if d := xj % 5; d != 3 {
		t.Fatalf("disk after add = %d, want 3 (unchanged)", d)
	}
	// X_j = (q - t) + r = 25 - 0 + 3 = 28.
	if xj != 28 {
		t.Fatalf("X_j = %d, want 28", xj)
	}
}

func TestRemapAddMoveLandsOnNewDisk(t *testing.T) {
	// x = 97, 4 -> 5 disks: q = 24, r = 1, t = 24 mod 5 = 4 >= 4: moves to 4.
	xj, moved := remapAdd(97, 4, 5)
	if !moved {
		t.Fatal("moving block reported as staying")
	}
	if xj != 24 {
		t.Fatalf("X_j = %d, want q = 24", xj)
	}
	if d := xj % 5; d != 4 {
		t.Fatalf("disk after add = %d, want 4 (the added disk)", d)
	}
}

func TestNewHistoryValidation(t *testing.T) {
	if _, err := NewHistory(0); err == nil {
		t.Error("zero initial disks accepted")
	}
	if _, err := NewHistory(-3); err == nil {
		t.Error("negative initial disks accepted")
	}
	h, err := NewHistory(4)
	if err != nil || h.N0() != 4 || h.N() != 4 || h.Ops() != 0 {
		t.Fatalf("fresh history: %v %v", h, err)
	}
}

func TestMustNewHistoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewHistory(0) did not panic")
		}
	}()
	MustNewHistory(0)
}

func TestAddValidation(t *testing.T) {
	h := MustNewHistory(4)
	if _, err := h.Add(0); err == nil {
		t.Error("add of zero disks accepted")
	}
	if _, err := h.Add(-2); err == nil {
		t.Error("add of negative disks accepted")
	}
	op, err := h.Add(3)
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpAdd || op.NBefore != 4 || op.NAfter != 7 || op.Count() != 3 {
		t.Fatalf("recorded op = %+v", op)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
}

func TestRemoveValidation(t *testing.T) {
	h := MustNewHistory(4)
	if _, err := h.Remove(); err == nil {
		t.Error("empty removal accepted")
	}
	if _, err := h.Remove(0, 1, 2, 3); err == nil {
		t.Error("removal of all disks accepted")
	}
	if _, err := h.Remove(4); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := h.Remove(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := h.Remove(1, 1); err == nil {
		t.Error("duplicate index accepted")
	}
	op, err := h.Remove(3, 1) // unsorted input must be accepted
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpRemove || op.NAfter != 2 || op.Count() != 2 {
		t.Fatalf("recorded op = %+v", op)
	}
	if got := op.Removed; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Removed = %v, want [1 3]", got)
	}
}

func TestNAt(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	h.Remove(0)
	h.Add(1)
	want := []int{4, 6, 5, 6}
	for j, n := range want {
		if got := h.NAt(j); got != n {
			t.Errorf("NAt(%d) = %d, want %d", j, got, n)
		}
	}
	if h.N() != 6 {
		t.Errorf("N = %d, want 6", h.N())
	}
}

func TestLocateMatchesTrace(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	h.Remove(1, 4)
	h.Add(3)
	for x0 := uint64(0); x0 < 5000; x0 += 7 {
		trace := h.Trace(x0)
		if len(trace) != 4 {
			t.Fatalf("trace length %d, want 4", len(trace))
		}
		xj, disk := h.Final(x0)
		if trace[3] != xj {
			t.Fatalf("trace end %d != final %d", trace[3], xj)
		}
		if got := h.Locate(x0); got != disk {
			t.Fatalf("Locate %d != Final disk %d", got, disk)
		}
		if got := h.DiskAt(x0, h.Ops()); got != disk {
			t.Fatalf("DiskAt(full) %d != %d", got, disk)
		}
		if got := h.DiskAt(x0, 0); got != int(x0%4) {
			t.Fatalf("DiskAt(0) = %d, want %d", got, x0%4)
		}
	}
}

func TestMoved(t *testing.T) {
	h := MustNewHistory(4)
	// No operations: nothing has moved.
	moved, before, after := h.Moved(11)
	if moved || before != 3 || after != 3 {
		t.Fatalf("fresh history Moved = %v %d %d", moved, before, after)
	}
	h.Add(1)
	sawMove, sawStay := false, false
	for x0 := uint64(0); x0 < 2000; x0++ {
		moved, before, after := h.Moved(x0)
		if moved {
			sawMove = true
			if after != 4 {
				t.Fatalf("x0=%d moved to %d, want the added disk 4", x0, after)
			}
			if before == after {
				t.Fatalf("x0=%d reported moved but disk unchanged", x0)
			}
		} else {
			sawStay = true
			if before != after {
				t.Fatalf("x0=%d reported staying but moved %d->%d", x0, before, after)
			}
		}
	}
	if !sawMove || !sawStay {
		t.Fatal("expected both movers and stayers in 2000 blocks")
	}
}

func TestClone(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	h.Remove(1)
	c := h.Clone()
	h.Add(5)
	if c.Ops() != 2 || c.N() != 5 {
		t.Fatalf("clone changed by original mutation: %v", c)
	}
	// Mutating the clone's removed slice must not affect the original.
	c.Op(2).Removed[0] = 99
	if h.Op(2).Removed[0] != 99 {
		// Op returns a struct copy sharing the slice; the clone must have
		// its own backing array, so the original stays 1.
		if h.Op(2).Removed[0] != 1 {
			t.Fatalf("original removed = %v", h.Op(2).Removed)
		}
	} else {
		t.Fatal("clone shares removed-slice storage with the original")
	}
}

func TestOpsProduct(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2) // N=6
	h.Add(2) // N=8
	mu, ok := h.OpsProduct()
	if !ok || mu != 4*6*8 {
		t.Fatalf("OpsProduct = %d %v, want 192 true", mu, ok)
	}
	// Force overflow with huge disk counts.
	h2 := MustNewHistory(1 << 30)
	for i := 0; i < 3; i++ {
		h2.Add(1 << 30)
	}
	if _, ok := h2.OpsProduct(); ok {
		t.Fatal("overflowed product reported ok")
	}
}

func TestHistoryString(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(1)
	h.Remove(2, 0)
	want := "N0=4 add(1)→5 remove(2)→3"
	if got := h.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "add" || OpRemove.String() != "remove" {
		t.Fatal("OpKind strings wrong")
	}
	if OpKind(9).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	h.Remove(1, 3)
	h.Add(1)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != h.String() {
		t.Fatalf("round trip: %s != %s", back.String(), h.String())
	}
	for x0 := uint64(0); x0 < 1000; x0 += 13 {
		if back.Locate(x0) != h.Locate(x0) {
			t.Fatalf("round-tripped history locates x0=%d differently", x0)
		}
	}
}

func TestJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"n0":0,"ops":[]}`,
		`{"n0":4,"ops":[{"kind":1,"nBefore":5,"nAfter":6}]}`,               // wrong nBefore
		`{"n0":4,"ops":[{"kind":2,"nBefore":4,"nAfter":3,"removed":[9]}]}`, // bad index
		`{"n0":4,"ops":[{"kind":7,"nBefore":4,"nAfter":5}]}`,               // unknown kind
		`{"n0":4,"ops":[{"kind":2,"nBefore":4,"nAfter":1,"removed":[0,1]}]}`,
	}
	for _, c := range cases {
		var h History
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("corrupt history accepted: %s", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	h := MustNewHistory(7)
	h.Add(3)
	h.Remove(0, 5, 9)
	h.Add(2)
	h.Remove(4)
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back History
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.String() != h.String() {
		t.Fatalf("round trip: %s != %s", back.String(), h.String())
	}
	for x0 := uint64(1); x0 < 100000; x0 *= 3 {
		if back.Locate(x0) != h.Locate(x0) {
			t.Fatalf("binary round trip locates x0=%d differently", x0)
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(1)
	good, _ := h.MarshalBinary()

	var back History
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Error("empty data accepted")
	}
	bad := append([]byte("XXXX"), good[4:]...)
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
	truncated := good[:len(good)-1]
	if err := back.UnmarshalBinary(truncated); err == nil {
		t.Error("truncated data accepted")
	}
	trailing := append(append([]byte{}, good...), 0x01)
	if err := back.UnmarshalBinary(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBinaryCompactness(t *testing.T) {
	// The operation log must stay tiny — that is SCADDAR's storage pitch.
	h := MustNewHistory(100)
	for i := 0; i < 50; i++ {
		h.Add(2)
	}
	data, _ := h.MarshalBinary()
	if len(data) > 200 {
		t.Fatalf("50-op binary log is %d bytes; want compact (<200)", len(data))
	}
}

// TestQuickAddInvariants property-tests RO1/RO2 structure for a single
// addition: stayers keep their disk, movers land only on added disks, and
// the remapped value's disk is consistent.
func TestQuickAddInvariants(t *testing.T) {
	f := func(x uint64, nbRaw, addRaw uint8) bool {
		nBefore := int(nbRaw%64) + 1
		added := int(addRaw%16) + 1
		nAfter := nBefore + added
		xj, moved := remapAdd(x, nBefore, nAfter)
		dBefore := int(x % uint64(nBefore))
		dAfter := int(xj % uint64(nAfter))
		if moved {
			return dAfter >= nBefore && dAfter < nAfter
		}
		return dAfter == dBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemoveInvariants property-tests the removal REMAP: stayers keep
// their physical disk (up to compaction), movers were exactly the blocks on
// removed disks.
func TestQuickRemoveInvariants(t *testing.T) {
	f := func(x uint64, nbRaw, maskRaw uint8) bool {
		nBefore := int(nbRaw%62) + 2
		// Build a non-empty, non-total removal set from the mask.
		var removed []int
		for d := 0; d < nBefore && len(removed) < nBefore-1; d++ {
			if maskRaw&(1<<(d%8)) != 0 && d%3 == int(maskRaw)%3 {
				removed = append(removed, d)
			}
		}
		if len(removed) == 0 {
			removed = []int{0}
		}
		nAfter := nBefore - len(removed)
		xj, moved := remapRemove(x, nBefore, nAfter, removed)
		dBefore := int(x % uint64(nBefore))
		dAfter := int(xj % uint64(nAfter))
		wasRemoved := false
		for _, r := range removed {
			if r == dBefore {
				wasRemoved = true
			}
		}
		if moved != wasRemoved {
			return false
		}
		if dAfter < 0 || dAfter >= nAfter {
			return false
		}
		if !moved {
			want, gone := survivorIndex(dBefore, removed)
			return !gone && dAfter == want
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickChainDeterminism property-tests that Locate is a pure function of
// (x0, history).
func TestQuickChainDeterminism(t *testing.T) {
	h := MustNewHistory(5)
	h.Add(2)
	h.Remove(3)
	h.Add(4)
	h.Remove(0, 2)
	f := func(x0 uint64) bool {
		return h.Locate(x0) == h.Locate(x0) && h.Locate(x0) < h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdditionMoveFraction checks RO1 quantitatively: the fraction of blocks
// moved by an addition is close to z_j = (N_j - N_{j-1})/N_j.
func TestAdditionMoveFraction(t *testing.T) {
	const blocks = 200000
	h := MustNewHistory(8)
	h.Add(2) // z = 2/10
	moves := 0
	for i := 0; i < blocks; i++ {
		// Use a mixed value as x0 so the sample is effectively random.
		x0 := uint64(i)*0x9e3779b97f4a7c15 + 0x1234567
		x0 = x0 ^ (x0 >> 29)
		if moved, _, _ := h.Moved(x0); moved {
			moves++
		}
	}
	got := float64(moves) / blocks
	if got < 0.19 || got > 0.21 {
		t.Fatalf("moved fraction %.4f, want ~0.20", got)
	}
}

// TestUniformityAfterChain checks RO2 end-to-end: after a realistic chain of
// operations the placement is still statistically uniform (chi-square should
// not reject wildly; we use a loose bound on relative deviation).
func TestUniformityAfterChain(t *testing.T) {
	const blocks = 120000
	h := MustNewHistory(6)
	h.Add(2)    // 8
	h.Remove(3) // 7
	h.Add(3)    // 10
	counts := make([]int, h.N())
	for i := 0; i < blocks; i++ {
		x0 := uint64(i)*0x9e3779b97f4a7c15 + 99
		x0 ^= x0 >> 31
		counts[h.Locate(x0)]++
	}
	want := blocks / h.N()
	for d, c := range counts {
		if c < want*85/100 || c > want*115/100 {
			t.Fatalf("disk %d holds %d blocks, want within 15%% of %d (counts %v)", d, c, want, counts)
		}
	}
}
