package scaddar

// This file holds the pure REMAP arithmetic of the paper's Section 4.2.
// Everything operates on logical disk indices 0..N-1; the functions are
// deliberately free of any History state so they can be property-tested in
// isolation.

// remapAdd applies Eq. 5 of the paper: REMAP_j for an addition operation
// that grows the array from nBefore to nAfter disks. It returns the new
// random number xj and whether the block moved (onto one of the added
// disks).
//
// With q = x div nBefore, r = x mod nBefore and t = q mod nAfter:
//
//	t <  nBefore: block stays on r;   X_j = (q - t) + r
//	t >= nBefore: block moves to t;   X_j = q
//
// In both cases X_j mod nAfter is the block's disk and X_j div nAfter is a
// fresh random value for future operations.
func remapAdd(x uint64, nBefore, nAfter int) (xj uint64, moved bool) {
	nb := uint64(nBefore)
	na := uint64(nAfter)
	q := x / nb
	r := x % nb
	t := q % na
	if t < nb {
		return q - t + r, false
	}
	return q, true
}

// remapRemove applies Eq. 3 of the paper: REMAP_j for a removal operation.
// removed lists the removed logical indices in the pre-operation numbering;
// it must be sorted ascending and duplicate-free (History validates this).
// nAfter = nBefore - len(removed).
//
// With q = x div nBefore, r = x mod nBefore:
//
//	r not removed: block stays;  X_j = q*nAfter + new(r)
//	r removed:     block moves;  X_j = q, so D_j = q mod nAfter is uniform
//	               over the survivors.
func remapRemove(x uint64, nBefore, nAfter int, removed []int) (xj uint64, moved bool) {
	nb := uint64(nBefore)
	q := x / nb
	r := int(x % nb)
	nr, gone := survivorIndex(r, removed)
	if gone {
		return q, true
	}
	return q*uint64(nAfter) + uint64(nr), false
}

// survivorIndex implements the paper's new() function: the index of
// pre-removal disk r in the compacted post-removal numbering. gone reports
// that r itself was removed. removed must be sorted ascending.
func survivorIndex(r int, removed []int) (newIndex int, gone bool) {
	below := 0
	for _, s := range removed {
		if s == r {
			return 0, true
		}
		if s < r {
			below++
		} else {
			break
		}
	}
	return r - below, false
}
