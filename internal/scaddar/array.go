package scaddar

import "fmt"

// DiskID is the stable physical identity of a disk. Logical indices (the
// 0..N_j-1 numbers the remap arithmetic produces) change when disks are
// removed; DiskIDs never do. This is the paper's final mapping step: after
// removing Disk 4 from {0..5}, a block that remaps to logical index 4 lives
// on "the 4-th disk among all the disks", i.e. physical Disk 5.
type DiskID int

// Array couples a History with the ordered roster of physical disks, so
// callers can work in terms of stable disk identities while the remap
// arithmetic works on logical indices.
type Array struct {
	hist  *History
	disks []DiskID // logical index -> physical ID
	next  DiskID   // next physical ID to assign
}

// NewArray creates an array of n0 disks with physical IDs 0..n0-1.
func NewArray(n0 int) (*Array, error) {
	h, err := NewHistory(n0)
	if err != nil {
		return nil, err
	}
	a := &Array{hist: h, disks: make([]DiskID, n0), next: DiskID(n0)}
	for i := range a.disks {
		a.disks[i] = DiskID(i)
	}
	return a, nil
}

// MustNewArray is NewArray for statically valid arguments; it panics on
// error.
func MustNewArray(n0 int) *Array {
	a, err := NewArray(n0)
	if err != nil {
		panic(err)
	}
	return a
}

// History exposes the underlying operation log (shared, not a copy).
func (a *Array) History() *History { return a.hist }

// N returns the current number of disks.
func (a *Array) N() int { return a.hist.N() }

// Disks returns the physical IDs in logical order (a copy).
func (a *Array) Disks() []DiskID {
	return append([]DiskID(nil), a.disks...)
}

// Physical translates a logical disk index to its physical ID.
func (a *Array) Physical(logical int) (DiskID, error) {
	if logical < 0 || logical >= len(a.disks) {
		return 0, fmt.Errorf("scaddar: logical disk %d outside [0,%d)", logical, len(a.disks))
	}
	return a.disks[logical], nil
}

// Logical translates a physical disk ID to its current logical index.
func (a *Array) Logical(id DiskID) (int, error) {
	for i, d := range a.disks {
		if d == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("scaddar: disk %d is not in the array", id)
}

// Add appends a group of count new disks and returns their physical IDs.
func (a *Array) Add(count int) ([]DiskID, error) {
	if _, err := a.hist.Add(count); err != nil {
		return nil, err
	}
	added := make([]DiskID, count)
	for i := range added {
		added[i] = a.next
		a.next++
		a.disks = append(a.disks, added[i])
	}
	return added, nil
}

// Remove removes the disks with the given physical IDs.
func (a *Array) Remove(ids ...DiskID) error {
	indices := make([]int, len(ids))
	for i, id := range ids {
		logical, err := a.Logical(id)
		if err != nil {
			return err
		}
		indices[i] = logical
	}
	op, err := a.hist.Remove(indices...)
	if err != nil {
		return err
	}
	// Compact the roster exactly as new() compacts logical indices.
	survivors := a.disks[:0]
	ri := 0
	for i, d := range a.disks {
		if ri < len(op.Removed) && op.Removed[ri] == i {
			ri++
			continue
		}
		survivors = append(survivors, d)
	}
	a.disks = survivors
	return nil
}

// Locate returns the physical disk holding the block with original random
// value x0.
func (a *Array) Locate(x0 uint64) DiskID {
	return a.disks[a.hist.Locate(x0)]
}
