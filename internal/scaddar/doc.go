// Package scaddar implements SCADDAR (SCAling Disks for Data Arranged
// Randomly), the block-remapping technique of Goel, Shahabi, Yao and
// Zimmermann (USC TR 742, 2001 / ICDE 2002) for reorganizing pseudo-randomly
// placed continuous-media blocks when disks are added to or removed from a
// storage array.
//
// # Model
//
// Every block i of an object m has a b-bit pseudo-random number X(i)_0
// produced by a seeded generator p_r(s_m); before any scaling the block
// lives on disk D(i)_0 = X(i)_0 mod N_0. A scaling operation j changes the
// disk count from N_{j-1} to N_j by adding or removing a disk group. SCADDAR
// defines, per operation, a REMAP_j function taking X_{j-1} to X_j such that
// D_j = X_j mod N_j and:
//
//   - RO1 (minimal movement): only z_j = (N_j-N_{j-1})/N_j of all blocks
//     change disks on addition, and exactly the blocks of removed disks on
//     removal;
//   - RO2 (randomness): moved blocks land uniformly on the added disks
//     (addition) or the surviving disks (removal), because each REMAP_j
//     draws on the fresh randomness q_{j-1} = X_{j-1} div N_{j-1};
//   - AO1 (cheap access): locating a block after j operations costs a chain
//     of j integer mod/div steps — no directory.
//
// The package exposes the remap chain through History (the ordered log of
// scaling operations — the only persistent state SCADDAR needs besides
// per-object seeds), Array (History plus a physical-disk naming layer), a
// Locator that binds a History to per-object pseudo-random sequences, and
// Budget, which tracks the shrinking random range and decides — exactly as
// Section 4.3 prescribes — when the next operation would push the unfairness
// coefficient past a tolerance ε and a full redistribution is warranted.
//
// # Numbering
//
// The remap arithmetic works on *logical* disk indices 0..N_j-1; after a
// removal the survivors are compacted (the paper's new() function). Mapping
// a logical index to a stable physical disk identity (the paper's final
// "the 4-th disk is Disk 5" step) is the job of Array.
package scaddar
