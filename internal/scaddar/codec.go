package scaddar

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// This file gives History durable encodings. The paper's point is that
// SCADDAR needs "only a storage structure for recording scaling operations,
// which is significantly less than the number of all block locations"; these
// codecs make that structure concrete: a JSON form for configuration files
// and debugging, and a compact varint binary form for on-disk metadata.

// historyJSON is the exported wire shape of a History.
type historyJSON struct {
	N0  int  `json:"n0"`
	Ops []Op `json:"ops"`
}

// MarshalJSON encodes the history as {"n0": ..., "ops": [...]}.
func (h *History) MarshalJSON() ([]byte, error) {
	return json.Marshal(historyJSON{N0: h.n0, Ops: h.ops})
}

// UnmarshalJSON decodes and validates a history by replaying its operations,
// so a corrupt log cannot produce an inconsistent History.
func (h *History) UnmarshalJSON(data []byte) error {
	var w historyJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	r, err := replay(w.N0, w.Ops)
	if err != nil {
		return err
	}
	old := h.version
	*h = *r
	// Keep the version counter strictly increasing across a decode, so any
	// compiled chain built against the previous contents is invalidated even
	// when the decoded log happens to have the same operation count.
	h.version = old + r.version + 1
	return nil
}

// replay rebuilds a History from raw operations, re-validating each step.
func replay(n0 int, ops []Op) (*History, error) {
	h, err := NewHistory(n0)
	if err != nil {
		return nil, err
	}
	for i, op := range ops {
		switch op.Kind {
		case OpAdd:
			if op.NBefore != h.N() {
				return nil, fmt.Errorf("scaddar: op %d: nBefore %d, want %d", i+1, op.NBefore, h.N())
			}
			if _, err := h.Add(op.NAfter - op.NBefore); err != nil {
				return nil, fmt.Errorf("scaddar: op %d: %w", i+1, err)
			}
		case OpRemove:
			if op.NBefore != h.N() {
				return nil, fmt.Errorf("scaddar: op %d: nBefore %d, want %d", i+1, op.NBefore, h.N())
			}
			rec, err := h.Remove(op.Removed...)
			if err != nil {
				return nil, fmt.Errorf("scaddar: op %d: %w", i+1, err)
			}
			if rec.NAfter != op.NAfter {
				return nil, fmt.Errorf("scaddar: op %d: nAfter %d, want %d", i+1, op.NAfter, rec.NAfter)
			}
		default:
			return nil, fmt.Errorf("scaddar: op %d: unknown kind %d", i+1, op.Kind)
		}
	}
	return h, nil
}

// binaryMagic guards the binary history encoding ("SCDR" + version 1).
var binaryMagic = [4]byte{'S', 'C', 'D', 'R'}

const binaryVersion = 1

// AppendBinary encodes the history into a compact varint form:
//
//	magic(4) version(uvarint) n0(uvarint) nops(uvarint)
//	then per op: kind(uvarint), and for adds count(uvarint), for removes
//	count(uvarint) followed by delta-encoded removed indices.
func (h *History) AppendBinary(dst []byte) []byte {
	dst = append(dst, binaryMagic[:]...)
	dst = binary.AppendUvarint(dst, binaryVersion)
	dst = binary.AppendUvarint(dst, uint64(h.n0))
	dst = binary.AppendUvarint(dst, uint64(len(h.ops)))
	for _, op := range h.ops {
		dst = binary.AppendUvarint(dst, uint64(op.Kind))
		dst = binary.AppendUvarint(dst, uint64(op.Count()))
		if op.Kind == OpRemove {
			prev := 0
			for _, r := range op.Removed {
				dst = binary.AppendUvarint(dst, uint64(r-prev))
				prev = r
			}
		}
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (h *History) MarshalBinary() ([]byte, error) {
	return h.AppendBinary(nil), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, replaying and
// re-validating the encoded operations.
func (h *History) UnmarshalBinary(data []byte) error {
	rd := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return fmt.Errorf("scaddar: binary history: %w", err)
	}
	if magic != binaryMagic {
		return fmt.Errorf("scaddar: binary history: bad magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("scaddar: binary history: %w", err)
	}
	if version != binaryVersion {
		return fmt.Errorf("scaddar: binary history: unsupported version %d", version)
	}
	n0u, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("scaddar: binary history: %w", err)
	}
	nops, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("scaddar: binary history: %w", err)
	}
	out, err := NewHistory(int(n0u))
	if err != nil {
		return err
	}
	for i := uint64(0); i < nops; i++ {
		kindU, err := binary.ReadUvarint(rd)
		if err != nil {
			return fmt.Errorf("scaddar: binary history op %d: %w", i+1, err)
		}
		count, err := binary.ReadUvarint(rd)
		if err != nil {
			return fmt.Errorf("scaddar: binary history op %d: %w", i+1, err)
		}
		switch OpKind(kindU) {
		case OpAdd:
			if _, err := out.Add(int(count)); err != nil {
				return fmt.Errorf("scaddar: binary history op %d: %w", i+1, err)
			}
		case OpRemove:
			// Each removed index costs at least one delta byte, so a count
			// beyond the remaining input is corrupt; checking first keeps a
			// short forged header from forcing a huge allocation.
			if count > uint64(rd.Len()) {
				return fmt.Errorf("scaddar: binary history op %d: %d removals but %d bytes left",
					i+1, count, rd.Len())
			}
			removed := make([]int, count)
			prev := 0
			for k := range removed {
				delta, err := binary.ReadUvarint(rd)
				if err != nil {
					return fmt.Errorf("scaddar: binary history op %d: %w", i+1, err)
				}
				prev += int(delta)
				removed[k] = prev
			}
			if _, err := out.Remove(removed...); err != nil {
				return fmt.Errorf("scaddar: binary history op %d: %w", i+1, err)
			}
		default:
			return fmt.Errorf("scaddar: binary history op %d: unknown kind %d", i+1, kindU)
		}
	}
	if rd.Len() != 0 {
		return fmt.Errorf("scaddar: binary history: %d trailing bytes", rd.Len())
	}
	old := h.version
	*h = *out
	// As in UnmarshalJSON: a decode must invalidate any compiled chain built
	// against the previous contents.
	h.version = old + out.version + 1
	return nil
}
