package scaddar

import (
	"math"
	"testing"
)

// divisorCases collects divisors that exercise every compiled algorithm:
// 1, powers of two, both magic roundings, values adjacent to powers of two,
// and very large divisors.
func divisorCases() []uint64 {
	ds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17,
		31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 255, 256, 257,
		641, 1000, 4095, 4096, 4097, 65535, 65536, 65537,
		1<<20 - 1, 1 << 20, 1<<20 + 1, 1<<32 - 1, 1 << 32, 1<<32 + 1,
		1<<63 - 1, 1 << 63, math.MaxUint64 - 1, math.MaxUint64}
	for d := uint64(1); d <= 512; d++ {
		ds = append(ds, d)
	}
	return ds
}

// dividendCases returns boundary dividends for a divisor: multiples of d
// and their neighbors, extremes, and a deterministic pseudo-random spread.
func dividendCases(d uint64) []uint64 {
	xs := []uint64{0, 1, 2, d - 1, d, d + 1, 2*d - 1, 2 * d, 2*d + 1,
		math.MaxUint64, math.MaxUint64 - 1, math.MaxUint64 / 2}
	if q := math.MaxUint64 / d; true {
		xs = append(xs, q*d-1, q*d, q*d+1) // the largest multiple of d
	}
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 200; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		xs = append(xs, x, x%(2*d+1))
	}
	return xs
}

// TestMagicDivMatchesHardware checks div, mod, and divmod against the
// hardware instructions over boundary-heavy divisor/dividend pairs.
func TestMagicDivMatchesHardware(t *testing.T) {
	for _, d := range divisorCases() {
		mv := newMagicDiv(d)
		for _, x := range dividendCases(d) {
			if got, want := mv.div(x), x/d; got != want {
				t.Fatalf("div(%d / %d) = %d, want %d (alg %d m %d s %d)", x, d, got, want, mv.alg, mv.m, mv.s)
			}
			if got, want := mv.mod(x), x%d; got != want {
				t.Fatalf("mod(%d %% %d) = %d, want %d", x, d, got, want)
			}
			q, r := mv.divmod(x)
			if q != x/d || r != x%d {
				t.Fatalf("divmod(%d, %d) = (%d, %d), want (%d, %d)", x, d, q, r, x/d, x%d)
			}
		}
	}
}

// TestMagicDivExhaustiveSmall runs every dividend in [0, 4096) against
// every divisor in [1, 128] — complete coverage of the small-array regime
// the REMAP chain actually sees.
func TestMagicDivExhaustiveSmall(t *testing.T) {
	for d := uint64(1); d <= 128; d++ {
		mv := newMagicDiv(d)
		for x := uint64(0); x < 4096; x++ {
			if mv.div(x) != x/d || mv.mod(x) != x%d {
				t.Fatalf("d=%d x=%d: (%d,%d) want (%d,%d)", d, x, mv.div(x), mv.mod(x), x/d, x%d)
			}
		}
	}
}

// TestMagicDivZeroPanics pins the constructor contract.
func TestMagicDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newMagicDiv(0) did not panic")
		}
	}()
	newMagicDiv(0)
}
