package scaddar

import (
	"math"
	"testing"
)

func TestForecastValidation(t *testing.T) {
	h := MustNewHistory(8)
	if _, err := ForecastPlan(nil, 32, 0.05, []PlannedOp{{Add: 1}}); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := ForecastPlan(h, 32, 0, []PlannedOp{{Add: 1}}); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := ForecastPlan(h, 32, 0.05, nil); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := ForecastPlan(h, 32, 0.05, []PlannedOp{{}}); err == nil {
		t.Error("no-op plan entry accepted")
	}
	if _, err := ForecastPlan(h, 32, 0.05, []PlannedOp{{Add: 1, Remove: 1}}); err == nil {
		t.Error("add+remove entry accepted")
	}
	if _, err := ForecastPlan(h, 32, 0.05, []PlannedOp{{Remove: 8}}); err == nil {
		t.Error("total removal accepted")
	}
}

func TestForecastMoveFractions(t *testing.T) {
	h := MustNewHistory(8)
	f, err := ForecastPlan(h, 64, 0.01, []PlannedOp{{Add: 2}, {Remove: 1}, {Add: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Steps) != 3 {
		t.Fatalf("steps = %d", len(f.Steps))
	}
	wantZ := []float64{2.0 / 10, 1.0 / 10, 3.0 / 12}
	wantN := [][2]int{{8, 10}, {10, 9}, {9, 12}}
	cum := 0.0
	for i, s := range f.Steps {
		if s.NBefore != wantN[i][0] || s.NAfter != wantN[i][1] {
			t.Errorf("step %d: %d->%d, want %v", i+1, s.NBefore, s.NAfter, wantN[i])
		}
		if math.Abs(s.MoveFraction-wantZ[i]) > 1e-12 {
			t.Errorf("step %d: z = %g, want %g", i+1, s.MoveFraction, wantZ[i])
		}
		cum += wantZ[i]
		if math.Abs(s.CumulativeMoves-cum) > 1e-12 {
			t.Errorf("step %d: cumulative = %g, want %g", i+1, s.CumulativeMoves, cum)
		}
		if !s.WithinTolerance {
			t.Errorf("step %d: 64-bit budget should hold", i+1)
		}
	}
	if f.RedistributeAfter != 3 {
		t.Fatalf("RedistributeAfter = %d, want 3 (whole plan fits)", f.RedistributeAfter)
	}
}

func TestForecastFlagsBudgetBreak(t *testing.T) {
	// b=32, eps=5%, start at 4 disks, 10 single adds: the 9th breaks the
	// budget (the E2 protocol).
	h := MustNewHistory(4)
	plan := make([]PlannedOp, 10)
	for i := range plan {
		plan[i] = PlannedOp{Add: 1}
	}
	f, err := ForecastPlan(h, 32, 0.05, plan)
	if err != nil {
		t.Fatal(err)
	}
	if f.RedistributeAfter != 8 {
		t.Fatalf("RedistributeAfter = %d, want 8", f.RedistributeAfter)
	}
	if f.Steps[7].WithinTolerance != true || f.Steps[8].WithinTolerance != false {
		t.Fatalf("tolerance flags wrong around the break: %+v %+v", f.Steps[7], f.Steps[8])
	}
}

func TestForecastResumesExistingHistory(t *testing.T) {
	// A history that already consumed budget leaves less for the plan.
	h := MustNewHistory(4)
	for i := 0; i < 6; i++ {
		h.Add(1)
	}
	plan := make([]PlannedOp, 5)
	for i := range plan {
		plan[i] = PlannedOp{Add: 1}
	}
	f, err := ForecastPlan(h, 32, 0.05, plan)
	if err != nil {
		t.Fatal(err)
	}
	// 6 ops already done; only 2 more fit (8 total supported).
	if f.RedistributeAfter != 2 {
		t.Fatalf("RedistributeAfter = %d, want 2", f.RedistributeAfter)
	}
}

func TestForecastBatchedBeatsIncremental(t *testing.T) {
	h := MustNewHistory(8)
	batched, err := ForecastPlan(h, 32, 0.05, []PlannedOp{{Add: 4}})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ForecastPlan(MustNewHistory(8), 32, 0.05,
		[]PlannedOp{{Add: 1}, {Add: 1}, {Add: 1}, {Add: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bTotal := batched.Steps[len(batched.Steps)-1].CumulativeMoves
	iTotal := inc.Steps[len(inc.Steps)-1].CumulativeMoves
	if bTotal >= iTotal {
		t.Fatalf("batched cumulative %g not below incremental %g", bTotal, iTotal)
	}
	bBound := batched.Steps[len(batched.Steps)-1].GuaranteedUnfairness
	iBound := inc.Steps[len(inc.Steps)-1].GuaranteedUnfairness
	if bBound >= iBound {
		t.Fatalf("batched bound %g not below incremental %g", bBound, iBound)
	}
}
