package scaddar

import (
	"fmt"
	"sync"

	"scaddar/internal/prng"
)

// SafeLocator is a Locator safe for concurrent lookups — the access pattern
// of a real continuous-media server, where many stream handlers resolve
// block locations in parallel.
//
// Lookups (X0, Disk, DiskAt) may run concurrently with each other. They
// must NOT run concurrently with mutations of the underlying History;
// scaling operations are rare, serialized events in this system (the cm
// layer performs them between rounds), so the caller provides that
// synchronization — typically by quiescing lookups around a scaling
// operation or by swapping in a cloned History.
//
// Lookups run on the history's compiled chain (multiply-shift reciprocals
// and survivor-rank tables; compiled eagerly at construction), so the
// steady-state read path does zero interpretation and zero allocation.
type SafeLocator struct {
	hist    *History
	factory SourceFactory

	mu   sync.Mutex // guards seqs creation and bits
	bits uint
	seqs sync.Map // uint64 seed -> prng.Indexed with concurrent-safe At
}

// NewSafeLocator creates a concurrent locator over the given history. The
// history's REMAP chain is compiled eagerly, so the very first concurrent
// lookup already runs the allocation-free multiply-shift path — the
// property the gateway's read path depends on.
func NewSafeLocator(hist *History, factory SourceFactory) (*SafeLocator, error) {
	if hist == nil {
		return nil, fmt.Errorf("scaddar: locator needs a history")
	}
	if factory == nil {
		return nil, fmt.Errorf("scaddar: locator needs a source factory")
	}
	hist.Compile()
	return &SafeLocator{hist: hist, factory: factory}, nil
}

// History returns the underlying operation log.
func (l *SafeLocator) History() *History { return l.hist }

// Chain returns the history's compiled REMAP chain. Read paths that resolve
// many blocks (the cm snapshot, the gateway) hold on to it so each lookup
// skips even the cached-compile version check.
func (l *SafeLocator) Chain() *CompiledChain { return l.hist.Compile() }

// sequence returns (creating once) the concurrent-safe indexed sequence for
// a seed.
func (l *SafeLocator) sequence(seed uint64) (prng.Indexed, error) {
	if seq, ok := l.seqs.Load(seed); ok {
		return seq.(prng.Indexed), nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq, ok := l.seqs.Load(seed); ok { // lost the creation race
		return seq.(prng.Indexed), nil
	}
	src := l.factory(seed)
	if l.bits == 0 {
		l.bits = src.Bits()
	} else if src.Bits() != l.bits {
		return nil, fmt.Errorf("scaddar: factory width changed from %d to %d bits", l.bits, src.Bits())
	}
	seq := prng.EnsureConcurrentIndexed(src)
	l.seqs.Store(seed, seq)
	return seq, nil
}

// X0 returns the block's original random number X(i)_0.
func (l *SafeLocator) X0(seed uint64, block uint64) (uint64, error) {
	seq, err := l.sequence(seed)
	if err != nil {
		return 0, err
	}
	return seq.At(block), nil
}

// Disk returns the block's current logical disk.
func (l *SafeLocator) Disk(seed uint64, block uint64) (int, error) {
	x0, err := l.X0(seed, block)
	if err != nil {
		return 0, err
	}
	return l.hist.Locate(x0), nil
}

// DiskAt returns the block's logical disk after only the first j
// operations.
func (l *SafeLocator) DiskAt(seed uint64, block uint64, j int) (int, error) {
	x0, err := l.X0(seed, block)
	if err != nil {
		return 0, err
	}
	return l.hist.DiskAt(x0, j), nil
}
