package scaddar

import (
	"testing"

	"scaddar/internal/prng"
)

func splitMixFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

func TestNewLocatorValidation(t *testing.T) {
	h := MustNewHistory(4)
	if _, err := NewLocator(nil, splitMixFactory); err == nil {
		t.Error("nil history accepted")
	}
	if _, err := NewLocator(h, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestLocatorMatchesHistory(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	h.Remove(1)
	l, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	seq := prng.NewSplitMix64(42)
	for i := uint64(0); i < 500; i++ {
		want := h.Locate(seq.At(i))
		got, err := l.Disk(42, i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("block %d: locator %d, history %d", i, got, want)
		}
	}
}

func TestLocatorDiskAt(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(2)
	l, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := l.X0(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	d0, err := l.DiskAt(7, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != int(x0%4) {
		t.Fatalf("DiskAt(0) = %d, want %d", d0, x0%4)
	}
}

func TestLocatorLayout(t *testing.T) {
	h := MustNewHistory(5)
	l, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := l.Layout(9, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != 100 {
		t.Fatalf("layout length %d, want 100", len(layout))
	}
	for i, d := range layout {
		got, err := l.Disk(9, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("layout[%d] = %d, Disk = %d", i, d, got)
		}
	}
}

func TestLocatorLoadVector(t *testing.T) {
	h := MustNewHistory(5)
	h.Add(1)
	l, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	objects := map[uint64]int{1: 300, 2: 500, 3: 200}
	loads, err := l.LoadVector(objects)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 6 {
		t.Fatalf("load vector length %d, want 6", len(loads))
	}
	total := 0
	for _, c := range loads {
		total += c
	}
	if total != 1000 {
		t.Fatalf("total load %d, want 1000", total)
	}
}

func TestLocatorBits(t *testing.T) {
	h := MustNewHistory(4)
	l, err := NewLocator(h, splitMixFactory)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bits() != 0 {
		t.Fatalf("fresh locator bits = %d, want 0", l.Bits())
	}
	if _, err := l.X0(1, 0); err != nil {
		t.Fatal(err)
	}
	if l.Bits() != 64 {
		t.Fatalf("bits = %d, want 64", l.Bits())
	}
}

func TestLocatorRejectsWidthChange(t *testing.T) {
	h := MustNewHistory(4)
	calls := 0
	factory := func(seed uint64) prng.Source {
		calls++
		if calls > 1 {
			return prng.NewPCG32(seed) // 32-bit on the second call
		}
		return prng.NewSplitMix64(seed)
	}
	l, err := NewLocator(h, factory)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.X0(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := l.X0(2, 0); err == nil {
		t.Fatal("width change accepted")
	}
}

func TestLocatorWithSequentialSource(t *testing.T) {
	h := MustNewHistory(4)
	h.Add(1)
	l, err := NewLocator(h, func(seed uint64) prng.Source { return prng.NewPCG32(seed) })
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order access must agree with in-order generation.
	d5, err := l.Disk(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ref := prng.NewPCG32(3)
	var want int
	for i := 0; i <= 5; i++ {
		x := ref.Next()
		if i == 5 {
			want = h.Locate(x)
		}
	}
	if d5 != want {
		t.Fatalf("Disk(3,5) = %d, want %d", d5, want)
	}
}
