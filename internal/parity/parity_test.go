package parity

import (
	"testing"
	"testing/quick"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func newScaddar(t *testing.T, n0 int) *placement.Scaddar {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	s, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Error("nil strategy accepted")
	}
	if _, err := New(newScaddar(t, 8), 1); err == nil {
		t.Error("group size 1 accepted")
	}
	p, err := New(newScaddar(t, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupSize() != 4 || p.N() != 8 {
		t.Fatalf("g=%d n=%d", p.GroupSize(), p.N())
	}
	if p.Strategy().Name() != "scaddar" {
		t.Fatal("strategy accessor broken")
	}
}

func TestGroupAndMembers(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	if p.Group(0) != 0 || p.Group(3) != 0 || p.Group(4) != 1 || p.Group(11) != 2 {
		t.Fatal("group arithmetic wrong")
	}
	m := p.Members(7, 0, 100)
	if len(m) != 4 || m[0].Index != 0 || m[3].Index != 3 {
		t.Fatalf("members = %v", m)
	}
	// The last group of a 10-block object with g=4 has 2 members.
	m = p.Members(7, 2, 10)
	if len(m) != 2 || m[0].Index != 8 || m[1].Index != 9 {
		t.Fatalf("tail members = %v", m)
	}
	if m := p.Members(7, 5, 10); len(m) != 0 {
		t.Fatalf("out-of-range group has members %v", m)
	}
}

func TestPlaceInvariants(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	sawParity, sawMirror := false, false
	for seed := uint64(1); seed <= 20; seed++ {
		for k := uint64(0); k < 50; k++ {
			layout, err := p.Place(seed, k, 200)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			collided := false
			for _, d := range layout.MemberDisks {
				if seen[d] {
					collided = true
				}
				seen[d] = true
			}
			if collided != layout.Mirrored {
				t.Fatalf("seed %d group %d: collided=%v but Mirrored=%v", seed, k, collided, layout.Mirrored)
			}
			if layout.Mirrored {
				sawMirror = true
				if layout.ParityDisk != -1 {
					t.Fatalf("mirrored layout has parity disk %d", layout.ParityDisk)
				}
				continue
			}
			sawParity = true
			if layout.ParityDisk < 0 || layout.ParityDisk >= 8 {
				t.Fatalf("parity disk %d out of range", layout.ParityDisk)
			}
			for _, d := range layout.MemberDisks {
				if d == layout.ParityDisk {
					t.Fatalf("seed %d group %d: parity co-located on disk %d", seed, k, d)
				}
			}
		}
	}
	if !sawParity || !sawMirror {
		t.Fatalf("expected both paths exercised: parity=%v mirror=%v", sawParity, sawMirror)
	}
}

func TestGroupSpanningArrayTakesMirrorPath(t *testing.T) {
	// 2 disks, groups of 4: every group either collides or covers the
	// array; both must take the mirror fallback, never error.
	p, _ := New(newScaddar(t, 2), 4)
	for k := uint64(0); k < 20; k++ {
		layout, err := p.Place(1, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !layout.Mirrored {
			t.Fatalf("group %d on 2 disks not mirrored", k)
		}
	}
}

func TestPlaceEmptyGroup(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	if _, err := p.Place(1, 99, 10); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestParityLoadSpreads(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 2) // small groups: mostly parity path
	counts := make([]int, 8)
	total := 0
	for seed := uint64(1); seed <= 40; seed++ {
		for k := uint64(0); k < 100; k++ {
			layout, err := p.Place(seed, k, 200)
			if err != nil {
				t.Fatal(err)
			}
			if layout.Mirrored {
				continue
			}
			counts[layout.ParityDisk]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no parity groups at all")
	}
	for d, c := range counts {
		if c < total/8*60/100 || c > total/8*140/100 {
			t.Fatalf("parity load on disk %d is %d, want ~%d (counts %v)", d, c, total/8, counts)
		}
	}
}

func TestSingleFailureFullyRecoverable(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	objects := map[uint64]int{1: 200, 2: 200, 3: 200}
	for d := 0; d < 8; d++ {
		rep, err := p.Survive(objects, map[int]bool{d: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != 0 {
			t.Fatalf("disk %d failure lost %d blocks", d, rep.Lost)
		}
		if rep.Direct+rep.Reconstructed+rep.FromMirror != rep.Blocks {
			t.Fatalf("disk %d: %d+%d+%d != %d", d, rep.Direct, rep.Reconstructed, rep.FromMirror, rep.Blocks)
		}
		if rep.Reconstructed == 0 || rep.FromMirror == 0 {
			t.Fatalf("disk %d: both recovery paths should trigger (recon=%d mirror=%d)",
				d, rep.Reconstructed, rep.FromMirror)
		}
	}
}

func TestDoubleFailureLosesSomeBlocks(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	objects := map[uint64]int{1: 400, 2: 400}
	rep, err := p.Survive(objects, map[int]bool{0: true, 4: true}) // offset partners for the mirror path
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost == 0 {
		t.Fatal("double failure lost nothing; single-parity cannot be that strong")
	}
	if rep.Lost > rep.Blocks/2 {
		t.Fatalf("double failure lost %d of %d; too many", rep.Lost, rep.Blocks)
	}
}

func TestRecoverableDirect(t *testing.T) {
	p, _ := New(newScaddar(t, 8), 4)
	own := p.Strategy().Disk(placement.BlockRef{Seed: 1, Index: 5})
	other := (own + 1) % 8
	ok, err := p.Recoverable(1, 5, 100, map[int]bool{other: true})
	if err != nil || !ok {
		t.Fatalf("direct read reported unrecoverable: %v %v", ok, err)
	}
}

func TestOverheadBetweenParityAndMirroring(t *testing.T) {
	p, _ := New(newScaddar(t, 16), 4) // 16 disks: most groups distinct
	objects := map[uint64]int{1: 400, 2: 400, 3: 400}
	got, err := p.Overhead(objects)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1.25 || got >= 2 {
		t.Fatalf("overhead = %.3f, want in [1.25, 2)", got)
	}
	// More disks -> fewer collisions -> closer to 1+1/g than a tiny array.
	pSmall, _ := New(newScaddar(t, 4), 4)
	small, err := pSmall.Overhead(objects)
	if err != nil {
		t.Fatal(err)
	}
	if small <= got {
		t.Fatalf("4-disk overhead %.3f not above 16-disk overhead %.3f", small, got)
	}
	if _, err := p.Overhead(nil); err == nil {
		t.Fatal("empty object set accepted")
	}
}

// TestQuickSurvivalInvariant property-tests that a single-disk failure
// never loses data for any group size fitting the array.
func TestQuickSurvivalInvariant(t *testing.T) {
	s := newScaddar(t, 10)
	f := func(gRaw, diskRaw uint8, seed uint64) bool {
		g := int(gRaw%6) + 2 // 2..7
		p, err := New(s, g)
		if err != nil {
			return false
		}
		failed := map[int]bool{int(diskRaw) % 10: true}
		rep, err := p.Survive(map[uint64]int{seed%1000 + 1: 60}, failed)
		return err == nil && rep.Lost == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestParitySurvivesScaling mirrors the mirroring guarantee: placements
// recompute after scaling operations and the single-failure guarantee
// holds on the new array.
func TestParitySurvivesScaling(t *testing.T) {
	s := newScaddar(t, 8)
	p, _ := New(s, 4)
	objects := map[uint64]int{1: 200, 2: 200}
	if err := s.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDisks(3); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < s.N(); d++ {
		rep, err := p.Survive(objects, map[int]bool{d: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != 0 {
			t.Fatalf("after scaling, disk %d failure lost %d blocks", d, rep.Lost)
		}
	}
}
