package parity

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// Property tests over random scaling walks: after any sequence of adds and
// removes, the hybrid parity/mirror scheme must still (1) keep every
// non-collided group's member disks pairwise distinct with a parity disk
// outside the group, (2) protect collided members with a mirror on a
// different disk, and (3) reconstruct every block under any single-disk
// failure. Walks are seeded for exact reproduction.

func newWalkStrategy(t *testing.T, n0 int) *placement.Scaddar {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

func randomScaleStep(t *testing.T, strat *placement.Scaddar, rng *prng.SplitMix64) {
	t.Helper()
	n := strat.N()
	if n > 2 && rng.Next()%2 == 0 {
		if err := strat.RemoveDisks(int(rng.Next() % uint64(n))); err != nil {
			t.Fatal(err)
		}
		return
	}
	if err := strat.AddDisks(1 + int(rng.Next()%3)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLayoutInvariants(t *testing.T) {
	objects := map[uint64]int{1: 97, 2: 64, 3: 120}
	for _, g := range []int{2, 4, 5} {
		strat := newWalkStrategy(t, 6)
		p, err := New(strat, g)
		if err != nil {
			t.Fatal(err)
		}
		rng := prng.NewSplitMix64(uint64(g) * 13)
		for step := 0; step < 20; step++ {
			randomScaleStep(t, strat, rng)
			for seed, nblocks := range objects {
				groups := (uint64(nblocks) + uint64(g) - 1) / uint64(g)
				for k := uint64(0); k < groups; k++ {
					layout, err := p.Place(seed, k, nblocks)
					if err != nil {
						t.Fatalf("g=%d step %d: %v", g, step, err)
					}
					seen := make(map[int]bool)
					dup := false
					for _, d := range layout.MemberDisks {
						if seen[d] {
							dup = true
						}
						seen[d] = true
					}
					if layout.Mirrored {
						if layout.ParityDisk != -1 {
							t.Fatalf("g=%d step %d: mirrored group %d/%d has parity disk %d",
								g, step, seed, k, layout.ParityDisk)
						}
						for _, d := range layout.MemberDisks {
							if p.FallbackMirror(d) == d {
								t.Fatalf("g=%d step %d (N=%d): fallback mirror of disk %d co-locates",
									g, step, strat.N(), d)
							}
						}
						continue
					}
					if dup {
						t.Fatalf("g=%d step %d: parity group %d/%d has colliding members %v",
							g, step, seed, k, layout.MemberDisks)
					}
					if seen[layout.ParityDisk] {
						t.Fatalf("g=%d step %d: parity disk %d inside member set %v",
							g, step, layout.ParityDisk, layout.MemberDisks)
					}
					if layout.ParityDisk < 0 || layout.ParityDisk >= strat.N() {
						t.Fatalf("g=%d step %d: parity disk %d outside [0,%d)",
							g, step, layout.ParityDisk, strat.N())
					}
				}
			}
		}
	}
}

func TestPropertySingleFailureRecoverable(t *testing.T) {
	objects := map[uint64]int{1: 90, 2: 75, 3: 101}
	strat := newWalkStrategy(t, 7)
	p, err := New(strat, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := prng.NewSplitMix64(5)
	for step := 0; step < 15; step++ {
		randomScaleStep(t, strat, rng)
		for f := 0; f < strat.N(); f++ {
			rep, err := p.Survive(objects, map[int]bool{f: true})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if rep.Lost != 0 {
				t.Fatalf("step %d (N=%d): failing disk %d loses %d blocks under hybrid parity",
					step, strat.N(), f, rep.Lost)
			}
		}
	}
	// The walk must have exercised both protection paths at least once
	// overall, or the property is vacuous.
	repAll, err := p.Survive(objects, map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if repAll.Reconstructed == 0 && repAll.FromMirror == 0 {
		t.Error("final failure drill exercised neither parity nor mirror recovery")
	}
}
