// Package parity implements the second fault-tolerance idea of the paper's
// Section 6: "We also plan to investigate using data parity bits to handle
// faults with less required storage space."
//
// Blocks are grouped g at a time within each object (indices g·k .. g·k+g-1
// form group k). A group whose members land on pairwise-distinct disks gets
// one parity block (the XOR of its members) on yet another disk, so a
// single-disk failure removes at most one unit and XOR reconstructs it.
//
// Random placement, however, puts two members of some groups on the same
// disk — with g members over N disks a fraction ≈ 1−∏(1−i/N) of groups
// collide — and a collided group cannot be protected by one parity block.
// Rather than weaken the guarantee, collided groups fall back to the
// Section 6 offset-mirroring scheme: each member gets a mirror at offset
// ⌈N/2⌉, which is always a different disk. The choice is a pure function of
// the placement, so the whole scheme stays directory-free, and the
// single-disk-failure guarantee is absolute. Storage overhead lands between
// 1 + 1/g (all-parity) and 2 (all-mirrored), depending on the collision
// rate; Overhead reports the realized figure.
package parity

import (
	"fmt"

	"scaddar/internal/mirror"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// Parity derives hybrid parity/mirror layouts for blocks placed by an
// underlying strategy.
type Parity struct {
	strat placement.Strategy
	g     int
}

// New wraps a strategy with parity groups of size g >= 2. Arrays must keep
// at least 2 disks (for the mirror fallback); groups that span every disk
// always take the mirror path.
func New(strat placement.Strategy, g int) (*Parity, error) {
	if strat == nil {
		return nil, fmt.Errorf("parity: nil strategy")
	}
	if g < 2 {
		return nil, fmt.Errorf("parity: group size %d, need at least 2", g)
	}
	return &Parity{strat: strat, g: g}, nil
}

// GroupSize returns g.
func (p *Parity) GroupSize() int { return p.g }

// Strategy returns the underlying placement strategy.
func (p *Parity) Strategy() placement.Strategy { return p.strat }

// N returns the current disk count.
func (p *Parity) N() int { return p.strat.N() }

// Group returns the index of the parity group containing block i.
func (p *Parity) Group(index uint64) uint64 { return index / uint64(p.g) }

// Members returns the member block references of group k of an object with
// nblocks blocks (the last group may be short).
func (p *Parity) Members(seed uint64, k uint64, nblocks int) []placement.BlockRef {
	start := k * uint64(p.g)
	var members []placement.BlockRef
	for i := start; i < start+uint64(p.g) && i < uint64(nblocks); i++ {
		members = append(members, placement.BlockRef{Seed: seed, Index: i})
	}
	return members
}

// Layout describes one parity group's protection.
type Layout struct {
	// MemberDisks holds each member block's disk, in index order.
	MemberDisks []int
	// Mirrored reports the fallback path: members collided on a disk, so
	// each member is mirrored at the ⌈N/2⌉ offset instead of XOR-protected.
	Mirrored bool
	// ParityDisk holds the parity block when !Mirrored; -1 otherwise. It is
	// distinct from every member disk.
	ParityDisk int
}

// Place computes the layout of group k of an object. Groups with
// pairwise-distinct member disks get a parity disk chosen deterministically
// among the unused disks (hashed from the group identity, so parity load
// spreads); collided groups take the mirror fallback.
func (p *Parity) Place(seed uint64, k uint64, nblocks int) (*Layout, error) {
	members := p.Members(seed, k, nblocks)
	if len(members) == 0 {
		return nil, fmt.Errorf("parity: object %d has no group %d", seed, k)
	}
	n := p.strat.N()
	if n < 2 {
		return nil, fmt.Errorf("parity: protection needs at least 2 disks, have %d", n)
	}
	layout := &Layout{ParityDisk: -1}
	used := make(map[int]bool, len(members))
	collided := false
	for _, m := range members {
		d := p.strat.Disk(m)
		layout.MemberDisks = append(layout.MemberDisks, d)
		if used[d] {
			collided = true
		}
		used[d] = true
	}
	free := n - len(used)
	if collided || free == 0 {
		layout.Mirrored = true
		return layout, nil
	}
	// Pick the r-th unused disk, r hashed from (seed, group).
	r := int(prng.Combine(seed^0x9a417, k) % uint64(free))
	for d := 0; d < n; d++ {
		if used[d] {
			continue
		}
		if r == 0 {
			layout.ParityDisk = d
			return layout, nil
		}
		r--
	}
	panic("parity: unreachable")
}

// mirrorDisk returns the offset-mirror disk of a member on disk d.
func (p *Parity) mirrorDisk(d int) int {
	n := p.strat.N()
	return (d + mirror.HalfOffset(n)%n) % n
}

// FallbackMirror returns the offset-mirror disk protecting a member that
// lives on disk d when its group took the mirror fallback path. The live
// server's failover uses it to find the redundant copy of a block in a
// collided group.
func (p *Parity) FallbackMirror(d int) int { return p.mirrorDisk(d) }

// Recoverable reports whether block index of the object is readable when
// the given disks have failed: directly, via its group's parity, or via its
// mirror on the fallback path.
func (p *Parity) Recoverable(seed uint64, index uint64, nblocks int, failed map[int]bool) (bool, error) {
	own := p.strat.Disk(placement.BlockRef{Seed: seed, Index: index})
	if !failed[own] {
		return true, nil
	}
	layout, err := p.Place(seed, p.Group(index), nblocks)
	if err != nil {
		return false, err
	}
	if layout.Mirrored {
		return !failed[p.mirrorDisk(own)], nil
	}
	if failed[layout.ParityDisk] {
		return false, nil
	}
	groupStart := p.Group(index) * uint64(p.g)
	for i, d := range layout.MemberDisks {
		if groupStart+uint64(i) == index {
			continue // the lost block itself
		}
		if failed[d] {
			return false, nil // two failures in one group
		}
	}
	return true, nil
}

// SurvivalReport summarizes availability under a failure set.
type SurvivalReport struct {
	// Blocks is the number of data blocks examined.
	Blocks int
	// Direct is the number readable from their own disk.
	Direct int
	// Reconstructed is the number recoverable via parity XOR.
	Reconstructed int
	// FromMirror is the number recovered from a fallback mirror.
	FromMirror int
	// Lost is the number unrecoverable.
	Lost int
}

// Survive evaluates availability of an object set under the given failed
// disks. objects maps seed -> block count.
func (p *Parity) Survive(objects map[uint64]int, failed map[int]bool) (SurvivalReport, error) {
	var r SurvivalReport
	for seed, nblocks := range objects {
		for i := uint64(0); i < uint64(nblocks); i++ {
			r.Blocks++
			own := p.strat.Disk(placement.BlockRef{Seed: seed, Index: i})
			if !failed[own] {
				r.Direct++
				continue
			}
			layout, err := p.Place(seed, p.Group(i), nblocks)
			if err != nil {
				return r, err
			}
			ok, err := p.Recoverable(seed, i, nblocks, failed)
			if err != nil {
				return r, err
			}
			switch {
			case !ok:
				r.Lost++
			case layout.Mirrored:
				r.FromMirror++
			default:
				r.Reconstructed++
			}
		}
	}
	return r, nil
}

// Overhead returns the realized storage multiplier over the given objects:
// (data + parity blocks + mirror blocks) / data. It sits between 1 + 1/g
// and 2 depending on how many groups collide.
func (p *Parity) Overhead(objects map[uint64]int) (float64, error) {
	data, extra := 0, 0
	for seed, nblocks := range objects {
		groups := (uint64(nblocks) + uint64(p.g) - 1) / uint64(p.g)
		for k := uint64(0); k < groups; k++ {
			layout, err := p.Place(seed, k, nblocks)
			if err != nil {
				return 0, err
			}
			data += len(layout.MemberDisks)
			if layout.Mirrored {
				extra += len(layout.MemberDisks)
			} else {
				extra++
			}
		}
	}
	if data == 0 {
		return 0, fmt.Errorf("parity: no blocks")
	}
	return float64(data+extra) / float64(data), nil
}
