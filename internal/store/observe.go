package store

import (
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
)

// storeMetrics holds the journal's registry cells. All updates happen under
// the store mutex, but the cells themselves are atomic so scrapers read
// them without taking it.
type storeMetrics struct {
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	fsyncTime   *obs.Histogram
	fsyncBatch  *obs.Histogram
	checkpoints *obs.Counter
	replayed    *obs.Counter

	lsn        *obs.Gauge
	durableLSN *obs.Gauge
	ckptLSN    *obs.Gauge
	segments   *obs.Gauge
	sinceCkpt  *obs.Gauge
	failed     *obs.Gauge
}

// Observe registers the store's metric families in reg and starts
// publishing journal activity into them: append counts and bytes, fsync
// count/latency/batch size, checkpoints, and LSN/segment gauges. Call it
// once after Open; it may be called before or after Bootstrap/Recover.
func (s *Store) Observe(reg *obs.Registry) {
	m := &storeMetrics{
		appends:     reg.NewCounter("store_appends_total", "Journal records appended."),
		appendBytes: reg.NewCounter("store_append_bytes_total", "Journal bytes appended (framed records)."),
		fsyncs:      reg.NewCounter("store_fsyncs_total", "Journal fsyncs issued (group commits)."),
		fsyncTime:   reg.NewHistogram("store_fsync_seconds", "Journal flush+fsync latency.", obs.LatencyBuckets()),
		fsyncBatch:  reg.NewHistogram("store_fsync_batch_records", "Records made durable per group commit.", obs.SizeBuckets()),
		checkpoints: reg.NewCounter("store_checkpoints_total", "Checkpoints written."),
		replayed:    reg.NewCounter("store_replayed_events_total", "Journal events replayed by recovery."),

		lsn:        reg.NewGauge("store_lsn", "Last assigned journal LSN."),
		durableLSN: reg.NewGauge("store_durable_lsn", "Last LSN covered by an fsync."),
		ckptLSN:    reg.NewGauge("store_checkpoint_lsn", "LSN of the newest checkpoint."),
		segments:   reg.NewGauge("store_segments", "Journal segments in the trusted chain."),
		sinceCkpt:  reg.NewGauge("store_events_since_checkpoint", "Journal events past the newest checkpoint (crash-replay cost)."),
		failed:     reg.NewGauge("store_failed", "1 when the journal has hit its sticky failure, else 0."),
	}
	s.mu.Lock()
	s.metrics = m
	s.publishLocked()
	s.mu.Unlock()
}

// SetTraceRing installs (or, with nil, removes) the ring Recover appends
// replayed-event spans to. Spans carry Round = -1 — replay re-applies
// events without re-executing rounds — but are otherwise identical to what
// the live server's emit path appended for the same events, so a recovered
// ring retraces the journaled history.
func (s *Store) SetTraceRing(r *obs.Ring) {
	s.mu.Lock()
	s.trace = r
	s.mu.Unlock()
}

// publishLocked refreshes the gauge cells from store state. Caller holds mu;
// no-op until Observe installs the cells.
func (s *Store) publishLocked() {
	m := s.metrics
	if m == nil {
		return
	}
	m.lsn.Set(float64(s.nextLSN - 1))
	m.durableLSN.Set(float64(s.durableLSN))
	m.ckptLSN.Set(float64(s.ckptLSN))
	m.segments.SetInt(len(s.segments))
	m.sinceCkpt.Set(float64(s.nextLSN - 1 - s.ckptLSN))
	if s.err != nil {
		m.failed.Set(1)
	} else {
		m.failed.Set(0)
	}
}

// observeAppend records one successful append of n framed bytes. Caller
// holds mu.
func (s *Store) observeAppend(n int) {
	if s.metrics == nil {
		return
	}
	s.metrics.appends.Inc()
	s.metrics.appendBytes.Add(uint64(n))
	s.publishLocked()
}

// observeSync records one group commit that made batch records durable in
// elapsed time. Caller holds mu.
func (s *Store) observeSync(batch int, elapsed time.Duration) {
	if s.metrics == nil {
		return
	}
	s.metrics.fsyncs.Inc()
	s.metrics.fsyncTime.ObserveDuration(elapsed)
	if batch > 0 {
		s.metrics.fsyncBatch.Observe(float64(batch))
	}
	s.publishLocked()
}

// observeReplay records one replayed event and its trace span. Caller holds
// mu.
func (s *Store) observeReplay(ev cm.Event) {
	if s.metrics != nil {
		s.metrics.replayed.Inc()
	}
	if s.trace != nil {
		s.trace.Append(cm.EventSpan(ev))
	}
}
