package store

import (
	"reflect"
	"testing"

	"scaddar/internal/cm"
	"scaddar/internal/disk"
)

// fuzzSeedSegment builds a well-formed segment holding one record per event
// kind, so the fuzzer starts from inputs that reach every decode path.
func fuzzSeedSegment(tb testing.TB) []byte {
	tb.Helper()
	profile := disk.Cheetah73
	events := []cm.Event{
		{Kind: cm.EventObjectAdded, Object: testObject(1, 10)},
		{Kind: cm.EventObjectRemoved, ObjectID: 1},
		{Kind: cm.EventIngestCommitted, Object: testObject(2, 5)},
		{Kind: cm.EventScaleUpStarted, Count: 2},
		{Kind: cm.EventScaleUpStarted, Count: 1, Profile: &profile},
		{Kind: cm.EventScaleDownStarted, Disks: []int{3, 1}},
		{Kind: cm.EventRedistributeStarted},
		{Kind: cm.EventBlocksMigrated, Moves: []cm.BlockPos{{Object: 2, Index: 0}, {Object: 2, Index: 4}}},
		{Kind: cm.EventReorgCompleted},
		{Kind: cm.EventDiskFailed, Disk: 1, Lost: []cm.BlockPos{{Object: 2, Index: 3}}},
		{Kind: cm.EventDiskRepaired, Disk: 1},
		{Kind: cm.EventBlocksRebuilt, Rebuilt: []cm.RebuildPos{{Kind: 0, Object: 2, Index: 3}, {Kind: 1, Object: 2, Index: 3}}},
	}
	seg := segmentHeader(7)
	for i, ev := range events {
		payload, err := appendEvent(nil, ev)
		if err != nil {
			tb.Fatal(err)
		}
		seg = appendRecord(seg, 7+uint64(i), payload)
	}
	return seg
}

// FuzzJournal throws arbitrary bytes at the segment scanner and the event
// decoder: neither may panic or over-allocate, a scan must never trust
// bytes past the input, and every record the scanner accepts must decode
// into an event that re-encodes byte-compatibly (the journal's round-trip
// invariant — what was written is what replays).
func FuzzJournal(f *testing.F) {
	seed := fuzzSeedSegment(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])          // torn tail
	f.Add(seed[:segHeaderLen])         // bare header
	f.Add([]byte(segMagic))            // short header
	f.Add(segmentHeader(1))            // empty segment at LSN 1
	f.Add([]byte("not a segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		scan, err := scanSegment(data)
		if err != nil {
			return
		}
		if scan.validLen < segHeaderLen || scan.validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [header, %d]", scan.validLen, len(data))
		}
		wantLSN := scan.firstLSN
		for _, rec := range scan.records {
			if rec.lsn != wantLSN {
				t.Fatalf("accepted records break LSN continuity: %d after %d", rec.lsn, wantLSN-1)
			}
			wantLSN++
			ev, err := decodeEvent(rec.event)
			if err != nil {
				continue // CRC-valid but semantically rejected: fine
			}
			// An accepted event must survive encode → decode unchanged.
			enc, err := appendEvent(nil, ev)
			if err != nil {
				t.Fatalf("decoded event %+v refuses to re-encode: %v", ev, err)
			}
			back, err := decodeEvent(enc)
			if err != nil {
				t.Fatalf("re-encoded event %+v refuses to decode: %v", ev, err)
			}
			if !reflect.DeepEqual(ev, back) {
				t.Fatalf("event round-trip mismatch:\n first: %+v\nsecond: %+v", ev, back)
			}
		}
	})
}
