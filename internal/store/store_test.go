package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// Helpers shared by the store tests: a deterministic server factory (same
// generator family as the cm tests) and a locator-state capture used to
// assert block-for-block agreement between a survivor and a recovered
// server.

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

func testX0() placement.X0Func { return placement.NewX0Func(testFactory) }

// testConfig shortens the round so migrations and rebuilds take several
// ticks — the regime crash recovery has to get right.
func testConfig() cm.Config {
	cfg := cm.DefaultConfig()
	cfg.Round = 100 * time.Millisecond
	return cfg
}

func newTestServer(t testing.TB, cfg cm.Config, n0 int) *cm.Server {
	t.Helper()
	strat, err := placement.NewScaddar(n0, testX0())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testObject(id, blocks int) workload.Object {
	return workload.Object{
		ID:                id,
		Seed:              uint64(id)*1000 + 7,
		Blocks:            blocks,
		BlockBytes:        256 << 10,
		BitrateBitsPerSec: 4 << 20,
	}
}

func loadObjects(t *testing.T, srv *cm.Server, n, blocks int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := srv.AddObject(testObject(i, blocks)); err != nil {
			t.Fatal(err)
		}
	}
}

// drain ticks until no migration remains, then clears it.
func drain(t *testing.T, srv *cm.Server) {
	t.Helper()
	for i := 0; srv.Reorganizing(); i++ {
		if i > 10000 {
			t.Fatal("migration did not drain in 10000 rounds")
		}
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
}

// locatorState is everything the crash tests compare: the array shape, the
// degraded/reorganizing flags, per-disk health, and the logical disk of
// every block of every object.
type locatorState struct {
	n            int
	reorganizing bool
	degraded     bool
	healthy      []bool
	locs         map[[2]int]int
}

func captureState(t *testing.T, srv *cm.Server) *locatorState {
	t.Helper()
	sn, err := srv.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	st := &locatorState{
		n:            sn.N(),
		reorganizing: sn.Reorganizing(),
		degraded:     sn.Degraded(),
		locs:         make(map[[2]int]int),
	}
	for i := 0; i < sn.N(); i++ {
		st.healthy = append(st.healthy, sn.Healthy(i))
	}
	for _, obj := range sn.Objects() {
		for idx := 0; idx < obj.Blocks; idx++ {
			d, err := sn.Locate(obj.ID, idx)
			if err != nil {
				t.Fatalf("locate %d/%d: %v", obj.ID, idx, err)
			}
			st.locs[[2]int{obj.ID, idx}] = d
		}
	}
	return st
}

func assertSameState(t *testing.T, want, got *locatorState) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("recovered array has %d disks, want %d", got.n, want.n)
	}
	if got.reorganizing != want.reorganizing {
		t.Fatalf("recovered reorganizing=%v, want %v", got.reorganizing, want.reorganizing)
	}
	if got.degraded != want.degraded {
		t.Fatalf("recovered degraded=%v, want %v", got.degraded, want.degraded)
	}
	for i := range want.healthy {
		if got.healthy[i] != want.healthy[i] {
			t.Fatalf("recovered disk %d healthy=%v, want %v", i, got.healthy[i], want.healthy[i])
		}
	}
	if len(got.locs) != len(want.locs) {
		t.Fatalf("recovered locator covers %d blocks, want %d", len(got.locs), len(want.locs))
	}
	for key, d := range want.locs {
		if got.locs[key] != d {
			t.Fatalf("block %d/%d recovered on disk %d, survivor has it on %d",
				key[0], key[1], got.locs[key], d)
		}
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func recoverServer(t *testing.T, st *Store) (*cm.Server, *RecoveryInfo) {
	t.Helper()
	srv, info, err := st.Recover(testX0())
	if err != nil {
		t.Fatal(err)
	}
	return srv, info
}

// lastSegment returns the path of the highest-LSN segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best, bestLSN, found := "", uint64(0), false
	for _, e := range entries {
		if lsn, ok := parseLSNName(e.Name(), segPrefix, segSuffix); ok {
			if !found || lsn > bestLSN {
				best, bestLSN, found = e.Name(), lsn, true
			}
		}
	}
	if !found {
		t.Fatalf("no segments in %s", dir)
	}
	return filepath.Join(dir, best)
}

// recordBounds returns the [start, end) byte offsets of every valid record
// in a segment's bytes.
func recordBounds(t *testing.T, data []byte) [][2]int64 {
	t.Helper()
	scan, err := scanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	var bounds [][2]int64
	off := int64(segHeaderLen)
	for range scan.records {
		payloadLen := int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		end := off + recHeaderLen + payloadLen
		bounds = append(bounds, [2]int64{off, end})
		off = end
	}
	return bounds
}

func TestEmptyDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	st := openStore(t, dir)
	defer st.Close()
	if st.HasState() {
		t.Fatal("empty directory claims to hold state")
	}
	if _, _, err := st.Recover(testX0()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("recovering an empty directory: %v, want ErrNoCheckpoint", err)
	}
	if got := st.Status(); got.LSN != 0 || got.Segments != 0 {
		t.Fatalf("empty directory status: %+v", got)
	}
}

func TestBootstrapReopenRecover(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	loadObjects(t, srv, 2, 30)

	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	// Bootstrapping twice must be refused.
	if err := st.Bootstrap(srv); err == nil {
		t.Fatal("bootstrap over existing state accepted")
	}
	// This object is journaled, not checkpointed.
	if err := srv.AddObject(testObject(10, 20)); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	if !st2.HasState() {
		t.Fatal("reopened directory lost its state")
	}
	srv2, info := recoverServer(t, st2)
	if info.ReplayedEvents != 1 {
		t.Fatalf("replayed %d events, want 1", info.ReplayedEvents)
	}
	assertSameState(t, want, captureState(t, srv2))

	// The recovered server journals new events into the same store.
	if err := srv2.AddObject(testObject(11, 20)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openStore(t, dir)
	srv3, info := recoverServer(t, st3)
	defer st3.Close()
	if info.ReplayedEvents != 2 {
		t.Fatalf("replayed %d events after reopen, want 2", info.ReplayedEvents)
	}
	if srv3.Objects() != 4 {
		t.Fatalf("recovered %d objects, want 4", srv3.Objects())
	}
}

func TestCheckpointWithNoTail(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	loadObjects(t, srv, 3, 25)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddObject(testObject(7, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(srv); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, info := recoverServer(t, st2)
	if info.ReplayedEvents != 0 {
		t.Fatalf("replayed %d events, want 0 (checkpoint covers the journal)", info.ReplayedEvents)
	}
	if info.CheckpointLSN != info.LSN {
		t.Fatalf("checkpoint LSN %d != recovered LSN %d", info.CheckpointLSN, info.LSN)
	}
	assertSameState(t, want, captureState(t, srv2))
}

func TestTailWithNoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddObject(testObject(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete every checkpoint, stranding the journal tail.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ckptSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	if st2.HasState() {
		t.Fatal("journal without checkpoint claims recoverable state")
	}
	if _, _, err := st2.Recover(testX0()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("recover: %v, want ErrNoCheckpoint", err)
	}
	// Bootstrapping over an orphaned journal must be refused, not silently
	// interleaved with it.
	if err := st2.Bootstrap(newTestServer(t, testConfig(), 4)); err == nil {
		t.Fatal("bootstrap over an orphaned journal accepted")
	}
}

func TestRecordTruncatedMidCRC(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.AddObject(testObject(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	want := st.LSN() - 1 // state after losing the last record
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Cut the last record inside its CRC field (record header bytes 4..8).
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBounds(t, data)
	last := bounds[len(bounds)-1]
	if err := os.Truncate(seg, last[0]+6); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, info := recoverServer(t, st2)
	if !info.TornTail {
		t.Fatal("truncated record not reported as a torn tail")
	}
	if info.LSN != want {
		t.Fatalf("recovered to LSN %d, want %d", info.LSN, want)
	}
	if srv2.Objects() != 2 {
		t.Fatalf("recovered %d objects, want 2 (third event torn)", srv2.Objects())
	}
	// The repair truncated the torn bytes off the file.
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != last[0] {
		t.Fatalf("segment is %d bytes after repair, want %d", fi.Size(), last[0])
	}
}

func TestRecordCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.AddObject(testObject(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the middle record: its CRC no longer matches,
	// so it and everything after it is discarded.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBounds(t, data)
	mid := bounds[1]
	data[mid[0]+recHeaderLen+1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, info := recoverServer(t, st2)
	if !info.TornTail || !strings.Contains(info.TornReason, "CRC") {
		t.Fatalf("corrupt record reported as %+v, want a CRC torn tail", info)
	}
	if srv2.Objects() != 1 {
		t.Fatalf("recovered %d objects, want 1 (records 2 and 3 discarded)", srv2.Objects())
	}
}

func TestDuplicateSegmentSequence(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.AddObject(testObject(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("mislabeled copy", func(t *testing.T) {
		// A byte-identical copy under a later first-LSN name: the header
		// contradicts the filename.
		dup := t.TempDir()
		copyDir(t, dir, dup)
		if err := os.WriteFile(filepath.Join(dup, segmentName(100)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Config{Dir: dup}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open with a mislabeled duplicate: %v, want ErrCorrupt", err)
		}
	})

	t.Run("overlapping range", func(t *testing.T) {
		// A consistent segment whose LSN range re-covers journaled LSNs.
		dup := t.TempDir()
		copyDir(t, dir, dup)
		event, err := appendEvent(nil, cm.Event{Kind: cm.EventReorgCompleted})
		if err != nil {
			t.Fatal(err)
		}
		forged := append(segmentHeader(2), appendRecord(nil, 2, event)...)
		if err := os.WriteFile(filepath.Join(dup, segmentName(2)), forged, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Config{Dir: dup}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open with overlapping segments: %v, want ErrCorrupt", err)
		}
	})
}

// TestGapBridgedByCheckpoint is a regression test for durable-record loss
// across a double crash: a record below the newest checkpoint rots, so the
// old segment chain truncates there, while a newer segment (created when
// appends resumed at ckptLSN+1 after an earlier recovery, or by the
// checkpoint's own rotation) holds fsync-acknowledged post-checkpoint
// events. The resulting inter-segment gap is covered by the checkpoint;
// recovery must keep the newer segment and discard the stale pre-checkpoint
// chain — not delete the newer segment as unreachable.
func TestGapBridgedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	// LSNs 1..3 land in the first segment, sealed by the checkpoint at 3.
	loadObjects(t, srv, 3, 10)
	ckptLSN, err := st.Checkpoint(srv)
	if err != nil {
		t.Fatal(err)
	}
	if ckptLSN != 3 {
		t.Fatalf("checkpoint at LSN %d, want 3", ckptLSN)
	}
	// LSN 4 is fsync-acknowledged in the post-checkpoint segment.
	if err := srv.AddObject(testObject(10, 10)); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Bit rot below the checkpoint: the sealed segment now truncates at
	// LSN 1, leaving a gap to the post-checkpoint segment.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBounds(t, data)
	mid := bounds[1]
	data[mid[0]+recHeaderLen+1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	srv2, info := recoverServer(t, st2)
	if info.LSN != 4 {
		t.Fatalf("recovered to LSN %d, want 4 — the post-checkpoint segment was dropped", info.LSN)
	}
	if info.ReplayedEvents != 1 {
		t.Fatalf("replayed %d events, want 1", info.ReplayedEvents)
	}
	if info.DroppedSegments != 1 {
		t.Fatalf("dropped %d segments, want 1 (the stale pre-checkpoint segment)", info.DroppedSegments)
	}
	assertSameState(t, want, captureState(t, srv2))
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatal("stale pre-checkpoint segment not removed")
	}
	// The bridged store keeps appending.
	if err := srv2.AddObject(testObject(11, 10)); err != nil {
		t.Fatal(err)
	}
	if err := st2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// And the repaired directory is stable across another open.
	st3 := openStore(t, dir)
	defer st3.Close()
	srv3, info := recoverServer(t, st3)
	if info.LSN != 5 || info.DroppedSegments != 0 || info.TornTail {
		t.Fatalf("second recovery not clean: %+v", info)
	}
	if srv3.Objects() != 5 {
		t.Fatalf("recovered %d objects, want 5", srv3.Objects())
	}
}

func TestCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddObject(testObject(1, 15)); err != nil {
		t.Fatal(err)
	}
	ckptLSN, err := st.Checkpoint(srv)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddObject(testObject(2, 15)); err != nil {
		t.Fatal(err)
	}
	want := captureState(t, srv)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint: recovery must fall back to the
	// bootstrap checkpoint and replay the whole journal.
	ckpt := filepath.Join(dir, checkpointName(ckptLSN))
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, info := recoverServer(t, st2)
	if info.DroppedCheckpoints != 1 {
		t.Fatalf("dropped %d checkpoints, want 1", info.DroppedCheckpoints)
	}
	if info.CheckpointLSN != 0 {
		t.Fatalf("recovered from checkpoint %d, want the bootstrap checkpoint", info.CheckpointLSN)
	}
	if info.ReplayedEvents != 2 {
		t.Fatalf("replayed %d events, want 2", info.ReplayedEvents)
	}
	assertSameState(t, want, captureState(t, srv2))
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatal("invalid checkpoint file not removed")
	}
}

func TestSegmentRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := Open(Config{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := srv.AddObject(testObject(i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Status(); got.Segments < 3 {
		t.Fatalf("%d appends over a 64-byte threshold produced %d segments", 12, got.Segments)
	}

	// Three checkpoints: only the newest two survive, and segments wholly
	// below the older retained one are pruned.
	for i := 0; i < 3; i++ {
		if err := srv.AddObject(testObject(100+i, 5)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Checkpoint(srv); err != nil {
			t.Fatal(err)
		}
	}
	var ckpts, segs int
	var oldestSeg uint64
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if lsn, ok := parseLSNName(e.Name(), segPrefix, segSuffix); ok {
			segs++
			if oldestSeg == 0 || lsn < oldestSeg {
				oldestSeg = lsn
			}
		} else if _, ok := parseLSNName(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts++
		}
	}
	if ckpts != checkpointRetain {
		t.Fatalf("%d checkpoint files on disk, want %d", ckpts, checkpointRetain)
	}
	if oldestSeg <= 1 {
		t.Fatal("segments below the retained checkpoints were not pruned")
	}
	if segs != st.Status().Segments {
		t.Fatalf("%d segment files on disk, store tracks %d", segs, st.Status().Segments)
	}

	// The pruned journal still recovers.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	defer st2.Close()
	srv2, _ := recoverServer(t, st2)
	if srv2.Objects() != srv.Objects() {
		t.Fatalf("recovered %d objects, want %d", srv2.Objects(), srv.Objects())
	}
}

// copyDir clones every regular file of src into dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalIdentity: minted once on the first writable Open, stable
// across reopens, distinct per directory, readable (but never minted) by a
// ReadOnly open.
func TestJournalIdentity(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id := s.JournalID()
	s.Close()
	if len(id) != 32 {
		t.Fatalf("journal identity %q is not 32 hex chars", id)
	}

	s, err = Open(Config{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.JournalID(); got != id {
		t.Fatalf("reopen read identity %q, minted %q", got, id)
	}
	s.Close()

	other, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if other.JournalID() == id {
		t.Fatalf("two directories share identity %q", id)
	}

	// ReadOnly open of a directory no writer has touched: no identity, and
	// no file minted behind the inspector's back.
	legacy := t.TempDir()
	ro, err := Open(Config{Dir: legacy, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got := ro.JournalID(); got != "" {
		t.Fatalf("ReadOnly open minted identity %q", got)
	}
	if _, err := os.Stat(filepath.Join(legacy, journalIDName)); !os.IsNotExist(err) {
		t.Fatalf("ReadOnly open wrote %s (stat err %v)", journalIDName, err)
	}

	// A corrupt identity file is replaced, which safely forces followers to
	// re-bootstrap.
	if err := os.WriteFile(filepath.Join(dir, journalIDName), []byte("not hex"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.JournalID(); len(got) != 32 || got == id {
		t.Fatalf("corrupt identity replaced with %q (old %q)", got, id)
	}
}
