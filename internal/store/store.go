// Package store is the durable state store for the CM server: a write-ahead
// journal of cm.Events plus periodic checkpoints of cm.Metadata. It realizes
// the paper's claim that a pseudo-random placement server needs "only a
// storage structure for recording scaling operations" — the whole control
// plane (REMAP chain, rebaseline epochs, object catalog, disk health,
// migration and rebuild progress) persists in a few kilobytes of log, and
// block locations are still never stored anywhere.
//
// Usage: Open a data directory; Bootstrap a fresh server into it (initial
// checkpoint + event sink) or Recover the server it holds (newest valid
// checkpoint, then journal tail replay). Appends are group-committed: fsync
// runs every Config.SyncEvery records and on explicit Sync — the gateway
// calls Sync once per scheduling round, so a crash loses at most the final
// round's events, never checkpointed or synced state. Recovery truncates the
// journal at the first torn or corrupt record rather than failing.
package store

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/fsio"
	"scaddar/internal/obs"
)

// Config fixes a store's location and durability batching.
type Config struct {
	// Dir is the data directory (created if missing, unless ReadOnly).
	Dir string
	// SegmentBytes is the journal segment rotation threshold; 0 means 1 MiB.
	SegmentBytes int64
	// SyncEvery is the group-commit batch: an fsync runs once that many
	// records have accumulated (and always on Sync). 0 means 1 — every
	// append is synced before returning.
	SyncEvery int
	// ReadOnly opens the store for inspection: no repair truncation, no
	// segment creation, no appends. The `recover` CLI subcommand uses it.
	ReadOnly bool
}

// Sentinel errors.
var (
	// ErrNoCheckpoint: the directory holds no usable checkpoint, so there
	// is no base state to recover (fresh directory, or every checkpoint
	// file is corrupt).
	ErrNoCheckpoint = errors.New("store: no usable checkpoint")
	// ErrReadOnly: a mutation was attempted on a ReadOnly store.
	ErrReadOnly = errors.New("store: store is read-only")
	// ErrCorrupt: the journal's segment chain is inconsistent in a way
	// truncation cannot repair (duplicate or overlapping segments, a gap
	// below the tail).
	ErrCorrupt = errors.New("store: corrupt journal")
)

// checkpointRetain is how many checkpoints survive pruning. Keeping one
// extra means a checkpoint file lost to corruption (detected by its CRC)
// falls back to its predecessor plus a longer journal replay.
const checkpointRetain = 2

// segmentMeta tracks one on-disk segment of the trusted chain.
type segmentMeta struct {
	first uint64 // header's first LSN
	last  uint64 // last valid LSN (first-1 while empty)
	path  string
	size  int64 // trusted byte length
}

// RecoveryInfo describes what opening and recovering a data directory found
// and repaired.
type RecoveryInfo struct {
	// CheckpointLSN is the LSN of the checkpoint recovery started from.
	CheckpointLSN uint64 `json:"checkpointLsn"`
	// ReplayedEvents is the number of journal records replayed on top.
	ReplayedEvents int `json:"replayedEvents"`
	// LSN is the last event reflected in the recovered state.
	LSN uint64 `json:"lsn"`
	// TornTail reports that the journal ended in a torn or corrupt record
	// and was truncated there.
	TornTail bool `json:"tornTail,omitempty"`
	// TornReason says why the tail was distrusted.
	TornReason string `json:"tornReason,omitempty"`
	// TruncatedBytes is how much the truncation discarded.
	TruncatedBytes int64 `json:"truncatedBytes,omitempty"`
	// DroppedSegments counts segments discarded outside the trusted chain:
	// past the truncation point, or stale pre-checkpoint segments
	// superseded by a newer chain resuming at the checkpoint.
	DroppedSegments int `json:"droppedSegments,omitempty"`
	// DroppedCheckpoints counts checkpoint files skipped as invalid.
	DroppedCheckpoints int `json:"droppedCheckpoints,omitempty"`
}

// Status is a point-in-time view of the store for health endpoints.
type Status struct {
	// Dir is the data directory this store has open.
	Dir string `json:"dir"`
	// LSN is the last assigned journal sequence number.
	LSN uint64 `json:"lsn"`
	// DurableLSN is the last LSN covered by an fsync.
	DurableLSN uint64 `json:"durableLsn"`
	// CheckpointLSN is the LSN of the newest checkpoint.
	CheckpointLSN uint64 `json:"checkpointLsn"`
	// Epoch is the replication epoch: scaling-operation events journaled
	// since the journal's birth.
	Epoch uint64 `json:"epoch"`
	// Segments is the number of journal segments in the trusted chain.
	Segments int `json:"segments"`
	// EventsSinceCheckpoint is the crash-replay cost right now.
	EventsSinceCheckpoint uint64 `json:"eventsSinceCheckpoint"`
	// Err carries the sticky journal failure, empty when healthy.
	Err string `json:"err,omitempty"`
	// Recovery, when the store was recovered, reports what recovery found.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// Store is an open data directory. Methods are safe for concurrent use; the
// intended topology is one writer (the server's owner goroutine) plus
// concurrent Status readers.
type Store struct {
	mu  sync.Mutex
	cfg Config
	id  string // journal identity (see JournalID); immutable after Open

	segments   []segmentMeta
	active     *os.File
	w          *bufio.Writer
	activeSize int64

	nextLSN    uint64 // next LSN to assign (last assigned + 1)
	durableLSN uint64 // last LSN known fsynced
	ckptLSN    uint64 // newest valid checkpoint's LSN
	haveCkpt   bool
	ckpts      []uint64 // valid checkpoint LSNs on disk, ascending

	// epoch counts scaling-operation events (cm.IsEpochEvent) since the
	// journal's birth; durableEpoch is its value at durableLSN and ckptEpoch
	// its value at ckptLSN. Replication fences follower reads on it.
	epoch        uint64
	durableEpoch uint64
	ckptEpoch    uint64

	// notify is closed and replaced whenever durableLSN advances, so journal
	// tails can block for new durable records without polling.
	notify chan struct{}

	serverCfg cm.Config    // from the newest valid checkpoint
	metadata  *cm.Metadata // from the newest valid checkpoint
	tail      []record     // journal records past the checkpoint

	unsynced int
	err      error // sticky: first append/sync failure kills the journal

	recovery RecoveryInfo

	// metrics and trace are the optional observability hooks (see
	// observe.go): registry cells published under mu, and the ring Recover
	// appends replayed-event spans to.
	metrics *storeMetrics
	trace   *obs.Ring
}

// Open opens (or, unless ReadOnly, creates) a data directory, scans its
// checkpoints and journal chain, and repairs a torn tail by truncating it.
// Use HasState to tell a fresh directory from one holding a server, then
// Bootstrap or Recover accordingly.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: no data directory configured")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 1 << 20
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 1
	}
	if !cfg.ReadOnly {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{cfg: cfg, nextLSN: 1, notify: make(chan struct{})}
	if err := s.load(); err != nil {
		return nil, err
	}
	if err := s.loadJournalID(); err != nil {
		return nil, err
	}
	return s, nil
}

// journalIDName is the data-directory file holding the journal identity.
const journalIDName = "journal.id"

// loadJournalID reads the directory's journal identity, minting one on the
// first writable Open. The identity outlives every checkpoint and segment:
// it names the journal itself, so two directories never share one even when
// their LSN ranges happen to line up. Replication resume handshakes carry
// it — a follower that applied journal A must never splice records from
// journal B onto its state (see internal/repl).
func (s *Store) loadJournalID() error {
	path := filepath.Join(s.cfg.Dir, journalIDName)
	data, err := os.ReadFile(path)
	if err == nil {
		id := string(data)
		if raw, decErr := hex.DecodeString(id); decErr == nil && len(raw) == 16 {
			s.id = id
			return nil
		}
		// An unreadable identity is treated like a missing one: mint a new
		// identity, which (safely) forces followers to re-bootstrap.
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if s.cfg.ReadOnly {
		return nil // inspection-only open of a legacy directory: no identity
	}
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return fmt.Errorf("store: minting journal identity: %w", err)
	}
	s.id = hex.EncodeToString(raw[:])
	if err := fsio.WriteFileAtomic(path, []byte(s.id), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// JournalID returns the directory's journal identity: 32 hex characters
// minted on the first writable Open and stable for the directory's lifetime.
// Empty only for a ReadOnly open of a directory no writer has touched since
// identities were introduced.
func (s *Store) JournalID() string { return s.id }

// load scans the directory: newest valid checkpoint, then the segment
// chain, truncating at the first torn or corrupt record.
func (s *Store) load() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []segmentMeta
	var ckptLSNs []uint64
	for _, e := range entries {
		if lsn, ok := parseLSNName(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, segmentMeta{first: lsn, path: filepath.Join(s.cfg.Dir, e.Name())})
		} else if lsn, ok := parseLSNName(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckptLSNs = append(ckptLSNs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(ckptLSNs, func(i, j int) bool { return ckptLSNs[i] < ckptLSNs[j] })

	// Newest checkpoint that validates wins; invalid ones are dropped.
	for i := len(ckptLSNs) - 1; i >= 0; i-- {
		path := filepath.Join(s.cfg.Dir, checkpointName(ckptLSNs[i]))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		lsn, epoch, cfg, md, err := decodeCheckpoint(data)
		if err != nil || lsn != ckptLSNs[i] {
			s.recovery.DroppedCheckpoints++
			if !s.cfg.ReadOnly {
				os.Remove(path)
			}
			continue
		}
		if !s.haveCkpt {
			s.haveCkpt = true
			s.ckptLSN = lsn
			s.ckptEpoch = epoch
			s.serverCfg = cfg
			s.metadata = md
		}
		s.ckpts = append(s.ckpts, ckptLSNs[i])
	}
	sort.Slice(s.ckpts, func(i, j int) bool { return s.ckpts[i] < s.ckpts[j] })

	// Walk the segment chain in LSN order, trusting the longest valid
	// prefix. A torn record or an inter-segment gap truncates the chain
	// there; duplicate or overlapping segments are unrepairable.
	chainLast := uint64(0)
	for i := range segs {
		sm := &segs[i]
		data, err := os.ReadFile(sm.path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		scan, scanErr := scanSegment(data)
		if scanErr != nil {
			// Not a usable segment (torn or foreign header): drop it and
			// everything after it.
			s.dropSegments(segs[i:], fmt.Sprintf("unusable segment %s: %v", filepath.Base(sm.path), scanErr))
			break
		}
		if scan.firstLSN != sm.first {
			return fmt.Errorf("%w: segment %s header declares first LSN %d",
				ErrCorrupt, filepath.Base(sm.path), scan.firstLSN)
		}
		if len(s.segments) > 0 {
			if scan.firstLSN <= chainLast {
				return fmt.Errorf("%w: segments %s and %s overlap at LSN %d",
					ErrCorrupt, filepath.Base(s.segments[len(s.segments)-1].path),
					filepath.Base(sm.path), scan.firstLSN)
			}
			if scan.firstLSN != chainLast+1 {
				if s.haveCkpt && scan.firstLSN == s.ckptLSN+1 && chainLast <= s.ckptLSN {
					// The checkpoint bridges the gap: everything the old
					// chain is missing sits at or below the checkpoint, and
					// this segment resumes exactly past it — the shape left
					// behind when a prior recovery truncated the journal
					// below the checkpoint and appends resumed at ckptLSN+1.
					// The stale pre-checkpoint segments are the redundant
					// side; discard them, never the newer durable chain.
					s.discardStaleSegments()
				} else {
					s.dropSegments(segs[i:], fmt.Sprintf("gap: journal ends at LSN %d, next segment starts at %d",
						chainLast, scan.firstLSN))
					break
				}
			}
		}
		sm.last = scan.lastLSN()
		sm.size = scan.validLen
		s.segments = append(s.segments, *sm)
		chainLast = sm.last
		for _, rec := range scan.records {
			if !s.haveCkpt || rec.lsn > s.ckptLSN {
				s.tail = append(s.tail, rec)
			}
		}
		if scan.truncated {
			s.recovery.TornTail = true
			s.recovery.TornReason = scan.reason
			s.recovery.TruncatedBytes += int64(len(data)) - scan.validLen
			if !s.cfg.ReadOnly {
				if err := os.Truncate(sm.path, scan.validLen); err != nil {
					return fmt.Errorf("store: repairing %s: %w", sm.path, err)
				}
			}
			// Bytes past a tear are suspect, and normally so is every later
			// segment. But while the trusted chain still sits at or below a
			// valid checkpoint, a later segment is only accepted if the gap
			// logic above vouches for it (contiguous, or resuming exactly at
			// ckptLSN+1 under the checkpoint's cover) — so keep walking
			// instead of discarding fsync-acknowledged post-checkpoint
			// records along with the genuinely torn ones.
			if s.haveCkpt && chainLast <= s.ckptLSN {
				continue
			}
			if i+1 < len(segs) {
				s.dropSegments(segs[i+1:], "segments past the torn record")
			}
			break
		}
	}

	if chainLast > s.ckptLSN || (!s.haveCkpt && chainLast > 0) {
		s.nextLSN = chainLast + 1
	} else {
		s.nextLSN = s.ckptLSN + 1
	}
	if len(s.tail) > 0 && s.haveCkpt && s.tail[0].lsn != s.ckptLSN+1 {
		return fmt.Errorf("%w: checkpoint at LSN %d but journal tail starts at %d",
			ErrCorrupt, s.ckptLSN, s.tail[0].lsn)
	}
	s.durableLSN = s.nextLSN - 1
	// The replication epoch resumes from the checkpoint's value plus every
	// scaling-operation event the surviving tail holds.
	s.epoch = s.ckptEpoch
	for _, rec := range s.tail {
		if kind, n := binary.Uvarint(rec.event); n > 0 && cm.IsEpochEvent(cm.EventKind(kind)) {
			s.epoch++
		}
	}
	s.durableEpoch = s.epoch
	return nil
}

// discardStaleSegments drops the chain accepted so far: every record it
// holds is at or below the newest checkpoint (the caller checks), so a
// newer segment resuming at ckptLSN+1 supersedes it entirely. Unlike
// dropSegments this is a repair with no data loss — the checkpoint covers
// everything removed — so it does not mark the tail torn.
func (s *Store) discardStaleSegments() {
	s.recovery.DroppedSegments += len(s.segments)
	if !s.cfg.ReadOnly {
		for _, sm := range s.segments {
			os.Remove(sm.path)
		}
	}
	s.segments = s.segments[:0]
	s.tail = s.tail[:0]
}

// dropSegments discards (and, unless ReadOnly, deletes) segments that fall
// outside the trusted chain.
func (s *Store) dropSegments(segs []segmentMeta, reason string) {
	s.recovery.DroppedSegments += len(segs)
	if !s.recovery.TornTail {
		s.recovery.TornTail = true
		s.recovery.TornReason = reason
	}
	if s.cfg.ReadOnly {
		return
	}
	for _, sm := range segs {
		os.Remove(sm.path)
	}
}

// HasState reports whether the directory holds a recoverable server (a
// valid checkpoint exists).
func (s *Store) HasState() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.haveCkpt
}

// Err returns the sticky journal error, if any append or sync has failed.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// LSN returns the last assigned LSN (0 before any event).
func (s *Store) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN - 1
}

// EventsSinceCheckpoint returns how many events the journal holds past the
// newest checkpoint — the replay a crash right now would incur.
func (s *Store) EventsSinceCheckpoint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextLSN - 1 - s.ckptLSN
}

// Status returns a point-in-time view for health endpoints.
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Dir:                   s.cfg.Dir,
		LSN:                   s.nextLSN - 1,
		DurableLSN:            s.durableLSN,
		CheckpointLSN:         s.ckptLSN,
		Epoch:                 s.epoch,
		Segments:              len(s.segments),
		EventsSinceCheckpoint: s.nextLSN - 1 - s.ckptLSN,
	}
	if s.err != nil {
		st.Err = s.err.Error()
	}
	info := s.recovery
	st.Recovery = &info
	return st
}

// fail records the first journal failure; the store stops accepting appends
// so the on-disk log never develops an interior gap.
func (s *Store) fail(err error) error {
	if s.err == nil {
		s.err = fmt.Errorf("store: journal failed: %w", err)
	}
	return s.err
}

// Append journals one event, assigning it the next LSN. The record is
// durable once a group-commit fsync covers it (every SyncEvery appends, or
// an explicit Sync). After any failure the store refuses further appends —
// a journal with a hole cannot be replayed.
func (s *Store) Append(ev cm.Event) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.cfg.ReadOnly {
		return 0, ErrReadOnly
	}
	event, err := appendEvent(nil, ev)
	if err != nil {
		return 0, s.fail(err)
	}
	if err := s.ensureActive(); err != nil {
		return 0, s.fail(err)
	}
	if s.activeSize >= s.cfg.SegmentBytes {
		if err := s.rotate(); err != nil {
			return 0, s.fail(err)
		}
	}
	lsn := s.nextLSN
	frame := appendRecord(nil, lsn, event)
	if _, err := s.w.Write(frame); err != nil {
		return 0, s.fail(err)
	}
	if cm.IsEpochEvent(ev.Kind) {
		s.epoch++
	}
	s.activeSize += int64(len(frame))
	sm := &s.segments[len(s.segments)-1]
	sm.last = lsn
	sm.size = s.activeSize
	s.nextLSN++
	s.unsynced++
	s.observeAppend(len(frame))
	if s.unsynced >= s.cfg.SyncEvery {
		if err := s.syncLocked(); err != nil {
			return 0, s.fail(err)
		}
	}
	return lsn, nil
}

// Sink adapts the store into a cm.EventSink. Journal failures are sticky
// and surfaced via Err and Status rather than through the sink (the server
// mutation has already happened; what remains is refusing to pretend later
// events are durable).
func (s *Store) Sink() cm.EventSink {
	return func(ev cm.Event) { _, _ = s.Append(ev) }
}

// Sync flushes and fsyncs the journal — the group-commit point. The gateway
// calls it once per scheduling round.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if s.cfg.ReadOnly {
		return nil
	}
	if err := s.syncLocked(); err != nil {
		return s.fail(err)
	}
	return nil
}

func (s *Store) syncLocked() error {
	start := time.Now()
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			return err
		}
	}
	if s.active != nil {
		if err := s.active.Sync(); err != nil {
			return err
		}
	}
	batch := s.unsynced
	advanced := s.nextLSN-1 > s.durableLSN
	s.durableLSN = s.nextLSN - 1
	s.durableEpoch = s.epoch
	s.unsynced = 0
	if advanced {
		// Wake journal tails blocked on DurableNotify.
		close(s.notify)
		s.notify = make(chan struct{})
	}
	s.observeSync(batch, time.Since(start))
	return nil
}

// ensureActive opens or creates the segment appends go to.
func (s *Store) ensureActive() error {
	if s.active != nil {
		return nil
	}
	if n := len(s.segments); n > 0 {
		sm := &s.segments[n-1]
		if sm.last == s.nextLSN-1 && sm.size < s.cfg.SegmentBytes {
			f, err := os.OpenFile(sm.path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return err
			}
			s.active = f
			s.w = bufio.NewWriter(f)
			s.activeSize = sm.size
			return nil
		}
	}
	return s.newSegment()
}

// newSegment creates the segment starting at the next LSN.
func (s *Store) newSegment() error {
	path := filepath.Join(s.cfg.Dir, segmentName(s.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := segmentHeader(s.nextLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := fsio.SyncDir(s.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.w = bufio.NewWriter(f)
	s.activeSize = int64(len(hdr))
	s.segments = append(s.segments, segmentMeta{
		first: s.nextLSN, last: s.nextLSN - 1, path: path, size: s.activeSize,
	})
	return nil
}

// rotate seals the active segment and starts the next one. An empty active
// segment is left in place.
func (s *Store) rotate() error {
	if s.active == nil {
		return s.ensureActive()
	}
	if n := len(s.segments); n > 0 && s.segments[n-1].last < s.segments[n-1].first {
		return nil // nothing written yet; reuse it
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	if err := s.active.Close(); err != nil {
		return err
	}
	s.active = nil
	s.w = nil
	return s.newSegment()
}

// Checkpoint serializes the server's state, making every journaled event at
// or below the returned LSN redundant, then rotates the journal and prunes
// segments and checkpoints nothing can need anymore. It requires a
// quiescent, healthy server: mid-reorganization or degraded-array calls
// (failed or rebuilding disk, pending rebuild work, lost blocks) fail with
// cm.ErrBusy wrapped in the ExportMetadata error, and the caller retries
// later — a checkpoint must never capture an all-healthy array that the
// journaled fail/rebuild events layered on top would contradict.
func (s *Store) Checkpoint(srv *cm.Server) (uint64, error) {
	md, err := srv.ExportMetadata()
	if err != nil {
		return 0, err
	}
	cfg := srv.Config()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.cfg.ReadOnly {
		return 0, ErrReadOnly
	}
	lsn := s.nextLSN - 1
	data, err := encodeCheckpoint(lsn, s.epoch, cfg, md)
	if err != nil {
		return 0, err
	}
	// Events at or below the checkpoint LSN must be durable before the
	// checkpoint claims to cover them.
	if err := s.syncLocked(); err != nil {
		return 0, s.fail(err)
	}
	if err := fsio.WriteFileAtomic(filepath.Join(s.cfg.Dir, checkpointName(lsn)), data, 0o644); err != nil {
		return 0, s.fail(err)
	}
	s.haveCkpt = true
	s.ckptLSN = lsn
	s.ckptEpoch = s.epoch
	s.serverCfg = cfg
	s.metadata = md
	s.tail = nil
	if len(s.ckpts) == 0 || s.ckpts[len(s.ckpts)-1] != lsn {
		s.ckpts = append(s.ckpts, lsn)
	}
	if err := s.rotate(); err != nil {
		return 0, s.fail(err)
	}
	s.prune()
	if s.metrics != nil {
		s.metrics.checkpoints.Inc()
	}
	s.publishLocked()
	return lsn, nil
}

// prune deletes checkpoints beyond the retention count and segments wholly
// covered by the oldest retained checkpoint. Deletion is best-effort:
// leftover files cost space, not correctness.
func (s *Store) prune() {
	for len(s.ckpts) > checkpointRetain {
		os.Remove(filepath.Join(s.cfg.Dir, checkpointName(s.ckpts[0])))
		s.ckpts = s.ckpts[1:]
	}
	if len(s.ckpts) == 0 {
		return
	}
	floor := s.ckpts[0]
	kept := s.segments[:0]
	for i, sm := range s.segments {
		// Never prune the active (last) segment; earlier segments go once
		// their whole range is at or below the retention floor.
		if i < len(s.segments)-1 && sm.last <= floor && sm.last >= sm.first {
			os.Remove(sm.path)
			continue
		}
		kept = append(kept, sm)
	}
	s.segments = kept
}

// Bootstrap initializes a fresh data directory with a server's state: an
// initial checkpoint, then the server's event sink is pointed at the
// journal. It refuses a directory that already holds state — recover that
// instead, or point the server at an empty directory.
func (s *Store) Bootstrap(srv *cm.Server) error {
	s.mu.Lock()
	if s.haveCkpt {
		dir, lsn := s.cfg.Dir, s.ckptLSN
		s.mu.Unlock()
		return fmt.Errorf("store: %s already holds state (checkpoint at LSN %d); recover it or use an empty directory", dir, lsn)
	}
	if len(s.tail) > 0 {
		dir := s.cfg.Dir
		s.mu.Unlock()
		return fmt.Errorf("store: %s has a journal but no usable checkpoint; refusing to bootstrap over it", dir)
	}
	s.mu.Unlock()
	if _, err := s.Checkpoint(srv); err != nil {
		return err
	}
	srv.SetEventSink(s.Sink())
	return nil
}

// Close flushes, syncs, and releases the journal. The store must not be
// used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.syncLocked()
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	s.w = nil
	if err != nil {
		return s.fail(err)
	}
	return nil
}
