package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"scaddar/internal/cm"
)

// Crash-injection harness. crashScript drives a journaled server through
// every state-changing operation the store knows how to replay — object
// adds and removals, a multi-round scale-up drain, a disk failure, repair,
// and rebuild under mirror redundancy, a scale-down, and a full
// redistribution — capturing a golden locator state after every journaled
// event. The injection tests then simulate a kill at arbitrary byte offsets
// of the journal (record boundaries, mid-header, mid-CRC, mid-payload) by
// truncating a copy of the data directory there, recover, and assert the
// recovered locator agrees block-for-block with the survivor at the LSN the
// journal still covers: with SyncEvery=1, at most the records past the cut
// (the un-fsynced batch) are lost, never anything before it.

// crashScript populates dir and returns the golden state after every LSN.
func crashScript(t *testing.T, dir string) map[uint64]*locatorState {
	t.Helper()
	cfg := testConfig()
	cfg.Redundancy = cm.RedundancyMirror
	srv := newTestServer(t, cfg, 4)
	loadObjects(t, srv, 4, 40)

	st, err := Open(Config{Dir: dir, SegmentBytes: 2 << 10, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	golden := map[uint64]*locatorState{0: captureState(t, srv)}
	inner := st.Sink()
	srv.SetEventSink(func(ev cm.Event) {
		inner(ev)
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		golden[st.LSN()] = captureState(t, srv)
	})

	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	tick := func() { step(srv.Tick()) }
	drainAll := func() {
		for i := 0; srv.Reorganizing() || srv.RebuildRemaining() > 0; i++ {
			if i > 10000 {
				t.Fatal("drain stuck")
			}
			tick()
		}
	}

	step(srv.AddObject(testObject(10, 25)))
	step(srv.RemoveObject(3))

	_, err = srv.ScaleUp(2)
	step(err)
	drainAll()
	step(srv.FinishReorganization())

	step(srv.FailDisk(1))
	step(srv.RepairDisk(1))
	drainAll()

	// A mid-journal checkpoint: kills landing before it recover to the
	// checkpoint itself (its state equals the golden at its LSN).
	_, err = st.Checkpoint(srv)
	step(err)

	_, err = srv.ScaleDown(2)
	step(err)
	drainAll()
	step(srv.FinishReorganization())

	_, err = srv.FullRedistribute()
	step(err)
	drainAll()
	step(srv.FinishReorganization())

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return golden
}

// segmentsOf lists dir's segments in ascending LSN order.
func segmentsOf(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseLSNName(e.Name(), segPrefix, segSuffix); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// recoverAndCompare opens a (possibly mutilated) clone of the data
// directory, recovers, and asserts agreement with the survivor's golden
// state at whatever LSN survived.
func recoverAndCompare(t *testing.T, dir string, golden map[uint64]*locatorState) {
	t.Helper()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("open after simulated crash: %v", err)
	}
	defer st.Close()
	srv, info, err := st.Recover(testX0())
	if err != nil {
		t.Fatalf("recover after simulated crash: %v", err)
	}
	want, ok := golden[info.LSN]
	if !ok {
		t.Fatalf("recovered to LSN %d, which the survivor never journaled", info.LSN)
	}
	t.Logf("comparing recovered state at LSN %d (replayed %d events)", info.LSN, info.ReplayedEvents)
	assertSameState(t, want, captureState(t, srv))
}

func TestCrashRecoveryAtEveryKillPoint(t *testing.T) {
	master := t.TempDir()
	golden := crashScript(t, master)
	segs := segmentsOf(t, master)
	rnd := rand.New(rand.NewSource(1))

	kills := 0
	for i := len(segs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(master, segs[i]))
		if err != nil {
			t.Fatal(err)
		}
		bounds := recordBounds(t, data)
		// Kill points: the bare header, then per record a clean boundary
		// plus cuts inside the length field, the CRC field, and the payload.
		cuts := []int64{segHeaderLen}
		for _, b := range bounds {
			payload := b[1] - b[0] - recHeaderLen
			cuts = append(cuts,
				b[0]+1+rnd.Int63n(3),               // mid length
				b[0]+4+1+rnd.Int63n(3),             // mid CRC
				b[0]+recHeaderLen+rnd.Int63n(payload), // mid payload
				b[1], // clean record boundary
			)
		}
		for _, cut := range cuts {
			clone := t.TempDir()
			copyDir(t, master, clone)
			// The crash froze the journal at this byte: later segments
			// never existed.
			for k := i + 1; k < len(segs); k++ {
				if err := os.Remove(filepath.Join(clone, segs[k])); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.Truncate(filepath.Join(clone, segs[i]), cut); err != nil {
				t.Fatal(err)
			}
			recoverAndCompare(t, clone, golden)
			kills++
		}
	}
	if kills < 20 {
		t.Fatalf("harness exercised only %d kill points; the script is too short", kills)
	}
}

func TestCrashMidCheckpoint(t *testing.T) {
	master := t.TempDir()
	golden := crashScript(t, master)

	// Find the two retained checkpoints; the newer one is the mid-script
	// checkpoint whose write we kill.
	entries, err := os.ReadDir(master)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []uint64
	for _, e := range entries {
		if lsn, ok := parseLSNName(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, lsn)
		}
	}
	if len(ckpts) != 2 {
		t.Fatalf("script left %d checkpoints, want 2", len(ckpts))
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	newest := filepath.Join(master, checkpointName(ckpts[1]))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		clone := t.TempDir()
		copyDir(t, master, clone)
		target := filepath.Join(clone, checkpointName(ckpts[1]))
		if trial%2 == 0 {
			// Torn write: only a prefix of the checkpoint reached disk.
			if err := os.Truncate(target, rnd.Int63n(int64(len(data)))); err != nil {
				t.Fatal(err)
			}
		} else {
			// Bit rot / interrupted overwrite: a flipped byte.
			mut := append([]byte(nil), data...)
			mut[rnd.Intn(len(mut))] ^= 1 << uint(rnd.Intn(8))
			if err := os.WriteFile(target, mut, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Recovery must fall back to the older checkpoint and replay the
		// full journal to the final state — unless the mutation happened to
		// keep the file valid (WriteFileAtomic makes a half-written file
		// impossible in reality; this simulates the weaker no-atomicity
		// world too).
		st, err := Open(Config{Dir: clone})
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		srv, info, err := st.Recover(testX0())
		if err != nil {
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		want, ok := golden[info.LSN]
		if !ok {
			t.Fatalf("trial %d: recovered to unjournaled LSN %d", trial, info.LSN)
		}
		assertSameState(t, want, captureState(t, srv))
		st.Close()
	}
}
