package store

import (
	"errors"
	"testing"

	"scaddar/internal/cm"
)

// Tests for the journal tail/serve API: durability gating, segment-rotation
// handoff (the regression this file exists for), resume mid-segment, and
// the pruned-position signal.

// appendSynced journals one event and makes it durable.
func appendSynced(t *testing.T, st *Store, ev cm.Event) uint64 {
	t.Helper()
	lsn, err := st.Append(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	return lsn
}

// drainTail reads everything durable from the reader and returns it.
func drainTail(t *testing.T, r *TailReader) []TailRecord {
	t.Helper()
	var out []TailRecord
	for {
		batch, err := r.Next(7) // small batches exercise re-entry paths
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			return out
		}
		out = append(out, batch...)
	}
}

// assertContiguous checks the records run first..last with no gap or repeat.
func assertContiguous(t *testing.T, recs []TailRecord, first, last uint64) {
	t.Helper()
	if want := int(last - first + 1); len(recs) != want {
		t.Fatalf("got %d records, want %d (LSN %d..%d)", len(recs), want, first, last)
	}
	for i, rec := range recs {
		if want := first + uint64(i); rec.LSN != want {
			t.Fatalf("record %d has LSN %d, want %d", i, rec.LSN, want)
		}
	}
}

// TestTailReaderDurabilityGate: un-synced appends are invisible to the tail.
func TestTailReaderDurabilityGate(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := Open(Config{Dir: dir, SyncEvery: 1000}) // no auto-sync
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Append(cm.Event{Kind: cm.EventObjectAdded, Object: testObject(0, 3)}); err != nil {
		t.Fatal(err)
	}
	r := st.NewTailReader(1)
	defer r.Close()
	if recs := drainTail(t, r); len(recs) != 0 {
		t.Fatalf("tail returned %d records before sync", len(recs))
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	recs := drainTail(t, r)
	assertContiguous(t, recs, 1, 1)
	ev, err := DecodeEvent(recs[0].Event)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != cm.EventObjectAdded || ev.Object.ID != 0 {
		t.Fatalf("decoded %s object %d, want object-added 0", ev.Kind, ev.Object.ID)
	}
}

// TestTailReaderAcrossRotation is the rotation regression test: a reader
// that has drained a segment to its end must hand off to the next segment
// without re-reading or skipping an LSN, including when the rotation
// happens mid-tail (after the reader already caught up).
func TestTailReaderAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10}) // rotate eagerly
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}

	r := st.NewTailReader(1)
	defer r.Close()

	// Fill past at least two rotations, draining the tail as we go so the
	// reader is parked exactly at a sealed segment's end when the next
	// append opens a fresh segment.
	var got []TailRecord
	var lsn uint64
	for len(mustSegments(st)) < 3 {
		lsn = appendSynced(t, st, cm.Event{Kind: cm.EventObjectAdded, Object: testObject(int(lsn), 3)})
		got = append(got, drainTail(t, r)...)
	}
	// A few more records after the last rotation, then drain the rest.
	for i := 0; i < 5; i++ {
		lsn = appendSynced(t, st, cm.Event{Kind: cm.EventObjectRemoved, ObjectID: int(lsn)})
	}
	got = append(got, drainTail(t, r)...)
	assertContiguous(t, got, 1, lsn)

	// A second reader starting cold from LSN 1 crosses the same sealed
	// segment boundaries in bulk and must see the identical sequence.
	r2 := st.NewTailReader(1)
	defer r2.Close()
	cold := drainTail(t, r2)
	assertContiguous(t, cold, 1, lsn)
	for i := range got {
		if got[i].LSN != cold[i].LSN || string(got[i].Event) != string(cold[i].Event) {
			t.Fatalf("record %d differs between incremental and cold tail", i)
		}
	}
}

// TestTailReaderResumeMidSegment: a reader created at an arbitrary LSN
// (reconnect resume) starts exactly there.
func TestTailReaderResumeMidSegment(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 40; i++ {
		last = appendSynced(t, st, cm.Event{Kind: cm.EventObjectAdded, Object: testObject(i, 2)})
	}
	for _, from := range []uint64{1, 2, last / 2, last - 1, last, last + 1} {
		r := st.NewTailReader(from)
		recs := drainTail(t, r)
		r.Close()
		if from > last {
			if len(recs) != 0 {
				t.Fatalf("tail from %d past end returned %d records", from, len(recs))
			}
			continue
		}
		assertContiguous(t, recs, from, last)
	}
}

// TestTailReaderTruncated: a position pruned below the checkpoint horizon
// reports ErrTailTruncated so the consumer re-bootstraps.
func TestTailReaderTruncated(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	// Two checkpoint cycles so pruning (retain 2) drops the oldest
	// segments; keep appending until the oldest surviving segment starts
	// above LSN 1.
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 20; i++ {
			if err := srv.AddObject(testObject(cycle*100+i, 2)); err != nil {
				t.Fatal(err)
			}
			appendSynced(t, st, cm.Event{Kind: cm.EventObjectAdded, Object: testObject(cycle*100+i, 2)})
		}
		if _, err := st.Checkpoint(srv); err != nil {
			t.Fatal(err)
		}
	}
	segs := mustSegments(st)
	if segs[0].first <= 1 {
		t.Skipf("pruning kept LSN 1 (oldest segment starts at %d)", segs[0].first)
	}
	r := st.NewTailReader(1)
	defer r.Close()
	if _, err := r.Next(10); !errors.Is(err, ErrTailTruncated) {
		t.Fatalf("tail from pruned LSN 1: err = %v, want ErrTailTruncated", err)
	}
}

// TestDurableNotify: the notify channel fires when the durable frontier
// advances, and the (lsn, epoch) pair tracks scaling events.
func TestDurableNotify(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	lsn0, ch := st.DurableNotify()
	select {
	case <-ch:
		t.Fatal("notify fired with no durable advance")
	default:
	}
	appendSynced(t, st, cm.Event{Kind: cm.EventScaleUpStarted, Count: 2})
	select {
	case <-ch:
	default:
		t.Fatal("notify did not fire after sync")
	}
	lsn1, epoch := st.Durable()
	if lsn1 != lsn0+1 {
		t.Fatalf("durable LSN %d, want %d", lsn1, lsn0+1)
	}
	if epoch != 1 {
		t.Fatalf("durable epoch %d after one scaling event, want 1", epoch)
	}
}

// TestCheckpointEpochRoundTrip: the replication epoch survives checkpoint
// encode/decode and reseeds a reopened store.
func TestCheckpointEpochRoundTrip(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st := openStore(t, dir)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	// One full scale-up = two epoch events (started + completed), journaled
	// through the sink Bootstrap wired.
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	drain(t, srv)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(srv); err != nil {
		t.Fatal(err)
	}
	ckLSN, ckEpoch, data, err := st.CheckpointData()
	if err != nil {
		t.Fatal(err)
	}
	if ckEpoch != 2 {
		t.Fatalf("checkpoint epoch %d, want 2", ckEpoch)
	}
	dLSN, dEpoch, _, _, err := DecodeCheckpointData(data)
	if err != nil {
		t.Fatal(err)
	}
	if dLSN != ckLSN || dEpoch != ckEpoch {
		t.Fatalf("decoded (lsn=%d epoch=%d), want (%d, %d)", dLSN, dEpoch, ckLSN, ckEpoch)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	defer st2.Close()
	if got := st2.Epoch(); got != 2 {
		t.Fatalf("reopened store epoch %d, want 2", got)
	}
}

// mustSegments snapshots the store's trusted segment chain.
func mustSegments(st *Store) []segmentMeta {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]segmentMeta(nil), st.segments...)
}
