package store

// On-disk journal format. A data directory holds:
//
//	wal-<firstLSN:016x>.seg   journal segments
//	ckpt-<LSN:016x>.ckpt      checkpoints (see checkpoint.go)
//
// A segment begins with a 13-byte header — magic "SCWL", a format version
// byte, and the first LSN it holds (little-endian uint64, cross-checked
// against the filename so a mislabeled copy of another segment is caught) —
// followed by length-prefixed records:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// where the payload is a uvarint LSN followed by the event encoding
// (event.go). LSNs start at 1 and are contiguous within and across
// segments. Scanning stops at the first record that is torn (runs past the
// end of the file) or corrupt (CRC or LSN-continuity violation): everything
// before it is trusted, everything after it is discarded — the contract
// crash recovery is built on.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

const (
	segMagic      = "SCWL"
	segVersion    = 1
	segHeaderLen  = 4 + 1 + 8
	recHeaderLen  = 8
	maxRecordLen  = 8 << 20 // sanity bound against forged lengths
	segPrefix     = "wal-"
	segSuffix     = ".seg"
	ckptPrefix    = "ckpt-"
	ckptSuffix    = ".ckpt"
	lsnNameDigits = 16
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on most CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName returns the filename of the segment starting at firstLSN.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

// checkpointName returns the filename of the checkpoint covering all
// events through lsn.
func checkpointName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// parseLSNName extracts the LSN from a "<prefix><16 hex digits><suffix>"
// filename, or reports false.
func parseLSNName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != lsnNameDigits {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segmentHeader renders the header for a segment starting at firstLSN.
func segmentHeader(firstLSN uint64) []byte {
	hdr := make([]byte, segHeaderLen)
	copy(hdr, segMagic)
	hdr[4] = segVersion
	binary.LittleEndian.PutUint64(hdr[5:], firstLSN)
	return hdr
}

// appendRecord frames one event payload as a journal record.
func appendRecord(dst []byte, lsn uint64, event []byte) []byte {
	payload := binary.AppendUvarint(nil, lsn)
	payload = append(payload, event...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// record is one decoded journal record: the event payload is kept raw and
// decoded at replay time.
type record struct {
	lsn   uint64
	event []byte
}

// segmentScan is the result of scanning one segment's bytes.
type segmentScan struct {
	// firstLSN is the header's declared first LSN.
	firstLSN uint64
	// records are the valid records, in LSN order.
	records []record
	// validLen is the byte length of the trusted prefix (header plus valid
	// records); bytes past it must be truncated.
	validLen int64
	// truncated reports whether bytes past validLen exist, and why.
	truncated bool
	reason    string
}

// scanSegment parses a segment's bytes, trusting the longest valid prefix.
// An unusable header is an error (the file is not a segment of this store);
// anything wrong after the header marks a truncation point instead.
func scanSegment(data []byte) (*segmentScan, error) {
	if len(data) < segHeaderLen {
		return nil, fmt.Errorf("store: segment of %d bytes has no header", len(data))
	}
	if string(data[:4]) != segMagic {
		return nil, fmt.Errorf("store: segment lacks magic %q", segMagic)
	}
	if data[4] != segVersion {
		return nil, fmt.Errorf("store: segment format version %d, want %d", data[4], segVersion)
	}
	scan := &segmentScan{
		firstLSN: binary.LittleEndian.Uint64(data[5:]),
		validLen: segHeaderLen,
	}
	next := scan.firstLSN
	off := int64(segHeaderLen)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return scan, nil
		}
		if len(rest) < recHeaderLen {
			scan.markTruncated("torn record header")
			return scan, nil
		}
		payloadLen := binary.LittleEndian.Uint32(rest)
		if payloadLen == 0 || payloadLen > maxRecordLen {
			scan.markTruncated(fmt.Sprintf("record declares %d payload bytes", payloadLen))
			return scan, nil
		}
		if int64(len(rest)) < recHeaderLen+int64(payloadLen) {
			scan.markTruncated("torn record payload")
			return scan, nil
		}
		payload := rest[recHeaderLen : recHeaderLen+payloadLen]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:]) {
			scan.markTruncated("record CRC mismatch")
			return scan, nil
		}
		lsn, n := binary.Uvarint(payload)
		if n <= 0 || lsn != next {
			scan.markTruncated(fmt.Sprintf("record LSN %d breaks continuity (want %d)", lsn, next))
			return scan, nil
		}
		scan.records = append(scan.records, record{lsn: lsn, event: payload[n:]})
		next++
		off += recHeaderLen + int64(payloadLen)
		scan.validLen = off
	}
}

// markTruncated records why the trusted prefix ends before the file does.
func (sc *segmentScan) markTruncated(reason string) {
	sc.truncated = true
	sc.reason = reason
}

// lastLSN returns the LSN of the final valid record, or firstLSN-1 when the
// segment holds none.
func (sc *segmentScan) lastLSN() uint64 {
	if n := len(sc.records); n > 0 {
		return sc.records[n-1].lsn
	}
	return sc.firstLSN - 1
}
