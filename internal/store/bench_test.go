package store

import (
	"fmt"
	"testing"

	"scaddar/internal/cm"
)

// BenchmarkJournalAppend measures the per-event journaling cost across
// group-commit batch sizes: syncEvery=1 is the fsync-per-event worst case,
// larger batches amortize the fsync the way the gateway's once-per-round
// Sync does.
func BenchmarkJournalAppend(b *testing.B) {
	ev := cm.Event{Kind: cm.EventBlocksMigrated, Moves: []cm.BlockPos{
		{Object: 1, Index: 10}, {Object: 2, Index: 20}, {Object: 3, Index: 30},
	}}
	for _, syncEvery := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("syncEvery=%d", syncEvery), func(b *testing.B) {
			st, err := Open(Config{Dir: b.TempDir(), SyncEvery: syncEvery, SegmentBytes: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Append(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover measures full crash recovery — open, checkpoint restore,
// tail replay, integrity verification — as the journal tail grows.
func BenchmarkRecover(b *testing.B) {
	for _, events := range []int{50, 500} {
		b.Run(fmt.Sprintf("tail=%d", events), func(b *testing.B) {
			dir := b.TempDir()
			strat := newTestServer(b, testConfig(), 4)
			st, err := Open(Config{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Bootstrap(strat); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < events; i++ {
				if err := strat.AddObject(testObject(i, 8)); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := Open(Config{Dir: dir, ReadOnly: true})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := st.Recover(testX0()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
