package store

// Binary codec for cm.Event — the payload inside every journal record. The
// encoding is varint-packed like the History codec: a kind tag followed by
// exactly the fields that kind carries. Kinds are append-only; decode
// rejects unknown kinds and forged counts so a corrupted (but CRC-colliding)
// or fuzzed payload cannot allocate unboundedly.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/disk"
	"scaddar/internal/workload"
)

// appendEvent serializes an event onto dst.
func appendEvent(dst []byte, ev cm.Event) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(ev.Kind))
	switch ev.Kind {
	case cm.EventObjectAdded, cm.EventIngestCommitted:
		return appendObject(dst, ev.Object)
	case cm.EventObjectRemoved:
		if ev.ObjectID < 0 {
			return nil, fmt.Errorf("store: negative object ID %d", ev.ObjectID)
		}
		return binary.AppendUvarint(dst, uint64(ev.ObjectID)), nil
	case cm.EventScaleUpStarted:
		if ev.Count < 0 {
			return nil, fmt.Errorf("store: negative disk count %d", ev.Count)
		}
		dst = binary.AppendUvarint(dst, uint64(ev.Count))
		if ev.Profile == nil {
			return append(dst, 0), nil
		}
		return appendProfile(append(dst, 1), *ev.Profile)
	case cm.EventScaleDownStarted:
		dst = binary.AppendUvarint(dst, uint64(len(ev.Disks)))
		for _, d := range ev.Disks {
			if d < 0 {
				return nil, fmt.Errorf("store: negative disk index %d", d)
			}
			dst = binary.AppendUvarint(dst, uint64(d))
		}
		return dst, nil
	case cm.EventRedistributeStarted, cm.EventReorgCompleted:
		return dst, nil
	case cm.EventBlocksMigrated:
		return appendBlockList(dst, ev.Moves)
	case cm.EventDiskFailed:
		if ev.Disk < 0 {
			return nil, fmt.Errorf("store: negative disk index %d", ev.Disk)
		}
		dst = binary.AppendUvarint(dst, uint64(ev.Disk))
		return appendBlockList(dst, ev.Lost)
	case cm.EventDiskRepaired:
		if ev.Disk < 0 {
			return nil, fmt.Errorf("store: negative disk index %d", ev.Disk)
		}
		return binary.AppendUvarint(dst, uint64(ev.Disk)), nil
	case cm.EventBlocksRebuilt:
		dst = binary.AppendUvarint(dst, uint64(len(ev.Rebuilt)))
		for _, rp := range ev.Rebuilt {
			if rp.Kind < 0 || rp.Object < 0 {
				return nil, fmt.Errorf("store: negative rebuild fields %+v", rp)
			}
			dst = binary.AppendUvarint(dst, uint64(rp.Kind))
			dst = binary.AppendUvarint(dst, uint64(rp.Object))
			dst = binary.AppendUvarint(dst, rp.Index)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("store: unknown event kind %d", ev.Kind)
	}
}

func appendObject(dst []byte, obj workload.Object) ([]byte, error) {
	if obj.ID < 0 || obj.Blocks < 0 || obj.BlockBytes < 0 || obj.BitrateBitsPerSec < 0 {
		return nil, fmt.Errorf("store: object %d has negative fields", obj.ID)
	}
	dst = binary.AppendUvarint(dst, uint64(obj.ID))
	dst = binary.AppendUvarint(dst, obj.Seed)
	dst = binary.AppendUvarint(dst, uint64(obj.Blocks))
	dst = binary.AppendUvarint(dst, uint64(obj.BlockBytes))
	dst = binary.AppendUvarint(dst, uint64(obj.BitrateBitsPerSec))
	return dst, nil
}

func appendProfile(dst []byte, p disk.Profile) ([]byte, error) {
	if p.CapacityBytes < 0 || p.AvgSeek < 0 || p.RPM < 0 || p.TransferBytesPerSec < 0 {
		return nil, fmt.Errorf("store: profile %q has negative fields", p.Name)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p.Name)))
	dst = append(dst, p.Name...)
	dst = binary.AppendUvarint(dst, uint64(p.CapacityBytes))
	dst = binary.AppendUvarint(dst, uint64(p.AvgSeek))
	dst = binary.AppendUvarint(dst, uint64(p.RPM))
	dst = binary.AppendUvarint(dst, uint64(p.TransferBytesPerSec))
	return dst, nil
}

func appendBlockList(dst []byte, list []cm.BlockPos) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(list)))
	for _, bp := range list {
		if bp.Object < 0 {
			return nil, fmt.Errorf("store: negative object ID %d", bp.Object)
		}
		dst = binary.AppendUvarint(dst, uint64(bp.Object))
		dst = binary.AppendUvarint(dst, bp.Index)
	}
	return dst, nil
}

// maxInt rejects values that cannot round-trip through int on any platform.
const maxInt = 1<<62 - 1

// EncodeEvent renders one event in the journal's binary form — the inverse
// of DecodeEvent, exported for replication tests and tools that synthesize
// streams.
func EncodeEvent(ev cm.Event) ([]byte, error) {
	return appendEvent(nil, ev)
}

// DecodeEvent parses one event payload (the Event bytes of a TailRecord),
// rejecting trailing bytes. It is the exported face of the journal's event
// codec for replication consumers.
func DecodeEvent(data []byte) (cm.Event, error) {
	return decodeEvent(data)
}

// decodeEvent parses one event payload, rejecting trailing bytes.
func decodeEvent(data []byte) (cm.Event, error) {
	r := bytes.NewReader(data)
	ev, err := readEvent(r)
	if err != nil {
		return cm.Event{}, err
	}
	if r.Len() != 0 {
		return cm.Event{}, fmt.Errorf("store: event has %d trailing bytes", r.Len())
	}
	return ev, nil
}

func readEvent(r *bytes.Reader) (cm.Event, error) {
	kind, err := readUint(r, "event kind")
	if err != nil {
		return cm.Event{}, err
	}
	ev := cm.Event{Kind: cm.EventKind(kind)}
	switch ev.Kind {
	case cm.EventObjectAdded, cm.EventIngestCommitted:
		ev.Object, err = readObject(r)
		return ev, err
	case cm.EventObjectRemoved:
		id, err := readUint(r, "object ID")
		ev.ObjectID = int(id)
		return ev, err
	case cm.EventScaleUpStarted:
		count, err := readUint(r, "disk count")
		if err != nil {
			return cm.Event{}, err
		}
		ev.Count = int(count)
		flag, err := r.ReadByte()
		if err != nil {
			return cm.Event{}, fmt.Errorf("store: profile flag: %w", err)
		}
		switch flag {
		case 0:
		case 1:
			p, err := readProfile(r)
			if err != nil {
				return cm.Event{}, err
			}
			ev.Profile = &p
		default:
			return cm.Event{}, fmt.Errorf("store: profile flag %d", flag)
		}
		return ev, nil
	case cm.EventScaleDownStarted:
		n, err := readCount(r, 1, "disk list")
		if err != nil {
			return cm.Event{}, err
		}
		for i := uint64(0); i < n; i++ {
			d, err := readUint(r, "disk index")
			if err != nil {
				return cm.Event{}, err
			}
			ev.Disks = append(ev.Disks, int(d))
		}
		return ev, nil
	case cm.EventRedistributeStarted, cm.EventReorgCompleted:
		return ev, nil
	case cm.EventBlocksMigrated:
		ev.Moves, err = readBlockList(r)
		return ev, err
	case cm.EventDiskFailed:
		d, err := readUint(r, "disk index")
		if err != nil {
			return cm.Event{}, err
		}
		ev.Disk = int(d)
		ev.Lost, err = readBlockList(r)
		return ev, err
	case cm.EventDiskRepaired:
		d, err := readUint(r, "disk index")
		ev.Disk = int(d)
		return ev, err
	case cm.EventBlocksRebuilt:
		n, err := readCount(r, 3, "rebuild list")
		if err != nil {
			return cm.Event{}, err
		}
		for i := uint64(0); i < n; i++ {
			kind, err := readUint(r, "rebuild kind")
			if err != nil {
				return cm.Event{}, err
			}
			object, err := readUint(r, "object ID")
			if err != nil {
				return cm.Event{}, err
			}
			index, err := binary.ReadUvarint(r)
			if err != nil {
				return cm.Event{}, fmt.Errorf("store: block index: %w", err)
			}
			ev.Rebuilt = append(ev.Rebuilt, cm.RebuildPos{Kind: int(kind), Object: int(object), Index: index})
		}
		return ev, nil
	default:
		return cm.Event{}, fmt.Errorf("store: unknown event kind %d", kind)
	}
}

// readUint reads a uvarint that must fit an int.
func readUint(r *bytes.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("store: %s: %w", what, err)
	}
	if v > maxInt {
		return 0, fmt.Errorf("store: %s %d out of range", what, v)
	}
	return v, nil
}

// readCount reads a list length and rejects counts the remaining bytes
// cannot possibly hold (minBytes is the minimum encoded size per element).
func readCount(r *bytes.Reader, minBytes int, what string) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("store: %s length: %w", what, err)
	}
	if n > uint64(r.Len())/uint64(minBytes) {
		return 0, fmt.Errorf("store: %s declares %d entries in %d bytes", what, n, r.Len())
	}
	return n, nil
}

func readObject(r *bytes.Reader) (workload.Object, error) {
	var fields [5]uint64
	for k, what := range [5]string{"object ID", "seed", "blocks", "block bytes", "bitrate"} {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return workload.Object{}, fmt.Errorf("store: %s: %w", what, err)
		}
		if k != 1 && v > maxInt {
			return workload.Object{}, fmt.Errorf("store: %s %d out of range", what, v)
		}
		fields[k] = v
	}
	return workload.Object{
		ID:                int(fields[0]),
		Seed:              fields[1],
		Blocks:            int(fields[2]),
		BlockBytes:        int64(fields[3]),
		BitrateBitsPerSec: int64(fields[4]),
	}, nil
}

func readProfile(r *bytes.Reader) (disk.Profile, error) {
	nameLen, err := readCount(r, 1, "profile name")
	if err != nil {
		return disk.Profile{}, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return disk.Profile{}, fmt.Errorf("store: profile name: %w", err)
	}
	var fields [4]uint64
	for k, what := range [4]string{"capacity", "seek", "rpm", "transfer rate"} {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return disk.Profile{}, fmt.Errorf("store: profile %s: %w", what, err)
		}
		if v > maxInt {
			return disk.Profile{}, fmt.Errorf("store: profile %s %d out of range", what, v)
		}
		fields[k] = v
	}
	return disk.Profile{
		Name:                string(name),
		CapacityBytes:       int64(fields[0]),
		AvgSeek:             time.Duration(fields[1]),
		RPM:                 int(fields[2]),
		TransferBytesPerSec: int64(fields[3]),
	}, nil
}

func readBlockList(r *bytes.Reader) ([]cm.BlockPos, error) {
	n, err := readCount(r, 2, "block list")
	if err != nil {
		return nil, err
	}
	var out []cm.BlockPos
	for i := uint64(0); i < n; i++ {
		object, err := readUint(r, "object ID")
		if err != nil {
			return nil, err
		}
		index, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("store: block index: %w", err)
		}
		out = append(out, cm.BlockPos{Object: int(object), Index: index})
	}
	return out, nil
}
