package store

import (
	"path/filepath"
	"testing"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
)

// TestRecoveryRetracesRing is the trace contract: a live server with a
// trace ring installed and a recovery replaying the same journal must
// produce the same span sequence (kind, object, disk, count, aux — Seq is
// ring-local and Round is -1 on replay, since rounds are not re-executed).
func TestRecoveryRetracesRing(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: filepath.Join(dir, "data")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	srv := newTestServer(t, testConfig(), 4)
	liveRing := obs.NewRing(1024)
	srv.SetTraceRing(liveRing)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}

	// An operational history with every span-relevant event kind that can
	// appear in a journal tail: loads, a scale-up with its migration, a
	// failure drill with lost blocks possible, an object removal.
	loadObjects(t, srv, 3, 40)
	if _, err := srv.ScaleUp(2); err != nil {
		t.Fatal(err)
	}
	drain(t, srv)
	if err := srv.RemoveObject(2); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	live := liveRing.Dump()
	if len(live) == 0 {
		t.Fatal("live ring recorded nothing")
	}

	// Recover from the same directory with a fresh ring installed on the
	// store, so replay appends spans for every journaled event.
	st2, err := Open(Config{Dir: filepath.Join(dir, "data")})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	replayRing := obs.NewRing(1024)
	st2.SetTraceRing(replayRing)
	srv2, info, err := st2.Recover(testX0())
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedEvents == 0 {
		t.Fatal("recovery replayed nothing; the retrace comparison is vacuous")
	}
	replayed := replayRing.Dump()

	// The journal tail starts after the bootstrap checkpoint, so every live
	// span must reappear, in order, with identical payload.
	if len(replayed) != len(live) {
		t.Fatalf("replay produced %d spans, live produced %d", len(replayed), len(live))
	}
	for i := range live {
		l, r := live[i], replayed[i]
		if l.Kind != r.Kind || l.Object != r.Object || l.Disk != r.Disk ||
			l.Count != r.Count || l.Aux != r.Aux {
			t.Fatalf("span %d diverged:\nlive   %+v\nreplay %+v", i, l, r)
		}
		if r.Round != -1 {
			t.Fatalf("replayed span %d has Round %d, want -1", i, r.Round)
		}
	}

	// The recovered server keeps extending the same ring on its next event.
	srv2.SetTraceRing(replayRing)
	before := replayRing.Total()
	if err := srv2.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	if replayRing.Total() != before+1 {
		t.Fatal("recovered server's events do not extend the ring")
	}
	last := replayRing.Dump()
	if sp := last[len(last)-1]; sp.Kind != cm.EventObjectRemoved.String() || sp.Object != 1 {
		t.Fatalf("post-recovery span %+v", last[len(last)-1])
	}
}

// TestStoreObserve checks the journal metrics advance through an append /
// sync / checkpoint / recover cycle.
func TestStoreObserve(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, err := Open(Config{Dir: filepath.Join(dir, "data"), SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Observe(reg)

	srv := newTestServer(t, testConfig(), 4)
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	loadObjects(t, srv, 2, 20)
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	appends := reg.NewCounter("store_appends_total", "").Value()
	if appends != 2 {
		t.Fatalf("store_appends_total = %d, want 2", appends)
	}
	if v := reg.NewCounter("store_append_bytes_total", "").Value(); v == 0 {
		t.Fatal("store_append_bytes_total did not advance")
	}
	if v := reg.NewCounter("store_fsyncs_total", "").Value(); v == 0 {
		t.Fatal("store_fsyncs_total did not advance")
	}
	if h := reg.NewHistogram("store_fsync_seconds", "", obs.LatencyBuckets()); h.Count() == 0 {
		t.Fatal("store_fsync_seconds recorded nothing")
	}
	if v := reg.NewGauge("store_lsn", "").Value(); v != 2 {
		t.Fatalf("store_lsn = %g, want 2", v)
	}
	if v := reg.NewGauge("store_durable_lsn", "").Value(); v != 2 {
		t.Fatalf("store_durable_lsn = %g, want 2", v)
	}
	if v := reg.NewGauge("store_events_since_checkpoint", "").Value(); v != 2 {
		t.Fatalf("store_events_since_checkpoint = %g, want 2", v)
	}

	if _, err := st.Checkpoint(srv); err != nil {
		t.Fatal(err)
	}
	if v := reg.NewCounter("store_checkpoints_total", "").Value(); v != 2 { // bootstrap + explicit
		t.Fatalf("store_checkpoints_total = %g, want 2", float64(v))
	}
	if v := reg.NewGauge("store_events_since_checkpoint", "").Value(); v != 0 {
		t.Fatalf("store_events_since_checkpoint after checkpoint = %g, want 0", v)
	}

	// Recovery against a fresh registry counts replayed events.
	st.Close()
	st2, err := Open(Config{Dir: filepath.Join(dir, "data")})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	reg2 := obs.NewRegistry()
	st2.Observe(reg2)
	srv2, _, err := st2.Recover(testX0())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.RemoveObject(0); err != nil {
		t.Fatal(err)
	}
	if v := reg2.NewCounter("store_replayed_events_total", "").Value(); v != 0 {
		t.Fatalf("store_replayed_events_total = %d, want 0 (checkpoint covered everything)", v)
	}
	if v := reg2.NewCounter("store_appends_total", "").Value(); v != 1 {
		t.Fatalf("post-recovery store_appends_total = %d, want 1", v)
	}
}
