package store

import (
	"testing"

	"scaddar/internal/cm"
)

// The scale-down drain is the hardest state to recover: the physical array
// still uses pre-removal numbering while the strategy already speaks
// post-removal, bridged by the translation table rebuilt from the journal.
// This test restarts the server mid-drain and proves the recovered server
// (a) serves every block from the same disk as before the restart, using
// the pre-removal translation, and (b) finishes the reorganization to a
// state block-for-block identical to a survivor that never restarted, with
// zero lost blocks.

// runScaleDown drives one server through scale-down with an optional
// restart after `restartAfter` ticks (-1 = never), returning the final
// server.
func TestScaleDownRestartMidMigration(t *testing.T) {
	const (
		n0          = 4
		objects     = 6
		blocks      = 80
		ticksBefore = 2
	)
	script := func(t *testing.T, dir string, restart bool) *cm.Server {
		t.Helper()
		srv := newTestServer(t, testConfig(), n0)
		loadObjects(t, srv, objects, blocks)
		st := openStore(t, dir)
		if err := st.Bootstrap(srv); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.ScaleDown(1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ticksBefore; i++ {
			if err := srv.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if srv.MigrationRemaining() == 0 {
			t.Fatalf("drain finished within %d ticks; enlarge the workload so the restart lands mid-migration", ticksBefore)
		}
		if restart {
			preRestart := captureState(t, srv)
			remaining := srv.MigrationRemaining()
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st = openStore(t, dir)
			var info *RecoveryInfo
			srv, info = recoverServer(t, st)
			if !srv.Reorganizing() {
				t.Fatal("recovered server forgot the in-flight scale-down")
			}
			if srv.MigrationRemaining() != remaining {
				t.Fatalf("recovered migration has %d moves pending, want %d", srv.MigrationRemaining(), remaining)
			}
			if info.ReplayedEvents == 0 {
				t.Fatal("recovery replayed no events; the drain progress was lost")
			}
			// Mid-drain agreement: every block — moved, pending, or
			// translated through the pre-removal numbering — is served from
			// the same disk as before the restart.
			assertSameState(t, preRestart, captureState(t, srv))
		}
		drain(t, srv)
		if err := srv.VerifyIntegrity(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	survivor := script(t, t.TempDir(), false)
	restarted := script(t, t.TempDir(), true)

	if got, want := restarted.N(), n0-1; got != want {
		t.Fatalf("restarted server has %d disks after scale-down, want %d", got, want)
	}
	if got, want := restarted.TotalBlocks(), objects*blocks; got != want {
		t.Fatalf("restarted server holds %d blocks, want %d — blocks were lost", got, want)
	}
	assertSameState(t, captureState(t, survivor), captureState(t, restarted))
}
