package store

// Journal tailing: the serve side of replication. A TailReader walks the
// on-disk segment chain in LSN order and returns only records an fsync has
// covered — a follower must never apply an event the leader could still
// lose. Readers keep a per-segment byte offset so steady-state tailing
// reads each byte once: reaching a sealed segment's end hands off to the
// next segment at its header, never re-reading or skipping an LSN (the
// rotation contract TestTailReaderAcrossRotation pins down).
//
// Tailing tolerates the writer: the active segment may end mid-frame (a
// partial bufio flush) — parsing simply stops there, and those bytes are
// beyond durableLSN anyway. Checkpoint pruning can delete segments a slow
// reader still needs; that surfaces as ErrTailTruncated, the signal to
// re-bootstrap the follower from the newest checkpoint instead.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"scaddar/internal/cm"
)

// ErrTailTruncated reports that a tail position has been pruned out of the
// journal (superseded by a newer checkpoint): the reader cannot continue
// and the consumer must re-bootstrap from checkpoint state.
var ErrTailTruncated = errors.New("store: tail position pruned from journal")

// TailRecord is one durable journal record as shipped to a follower: the
// assigned LSN and the raw event payload (decode with DecodeEvent).
type TailRecord struct {
	// LSN is the record's journal sequence number.
	LSN uint64
	// Event is the raw event encoding (event.go), without the LSN prefix.
	Event []byte
}

// Durable returns the last fsync-covered LSN and the replication epoch at
// that LSN — the pair replication heartbeats carry.
func (s *Store) Durable() (lsn, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN, s.durableEpoch
}

// Epoch returns the replication epoch: the count of scaling-operation
// events journaled since the journal's birth (including not-yet-durable
// appends).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// DurableNotify returns the current durable LSN and a channel that is
// closed the next time it advances. Callers that find themselves caught up
// select on the channel (plus their own cancellation) instead of polling.
func (s *Store) DurableNotify() (uint64, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durableLSN, s.notify
}

// CheckpointData re-encodes the newest valid checkpoint from memory for
// shipping to a bootstrapping follower: the covered LSN, the replication
// epoch at that LSN, and the complete checkpoint file bytes (CRC-framed;
// the follower validates them with the same decoder recovery uses).
// Returns ErrNoCheckpoint when the store holds none.
func (s *Store) CheckpointData() (lsn, epoch uint64, data []byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveCkpt {
		return 0, 0, nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.cfg.Dir)
	}
	data, err = encodeCheckpoint(s.ckptLSN, s.ckptEpoch, s.serverCfg, s.metadata)
	if err != nil {
		return 0, 0, nil, err
	}
	return s.ckptLSN, s.ckptEpoch, data, nil
}

// DecodeCheckpointData parses checkpoint bytes produced by CheckpointData
// (or read from a checkpoint file), returning the covered LSN, the
// replication epoch at it, the server configuration, and the metadata.
func DecodeCheckpointData(data []byte) (lsn, epoch uint64, cfg cm.Config, md *cm.Metadata, err error) {
	return decodeCheckpoint(data)
}

// TailReader is a stateful cursor over the durable journal, safe to use
// from one goroutine while the store appends concurrently. It reads each
// segment byte once, handing off across segment rotations without
// re-reading or skipping records.
type TailReader struct {
	s    *Store
	next uint64 // next LSN to return

	// Cursor into the segment currently being read: the segment's first
	// LSN identifies it across rotations, off is the byte offset of the
	// next unread frame. segFirst 0 means "not positioned yet".
	segFirst uint64
	off      int64
	f        *os.File
}

// NewTailReader returns a reader positioned at fromLSN. Positioning is
// lazy: a fromLSN that has been pruned surfaces as ErrTailTruncated from
// the first Next call.
func (s *Store) NewTailReader(fromLSN uint64) *TailReader {
	if fromLSN == 0 {
		fromLSN = 1
	}
	return &TailReader{s: s, next: fromLSN}
}

// Pos returns the next LSN the reader will return — the resume position a
// replication stream advertises.
func (r *TailReader) Pos() uint64 { return r.next }

// Close releases the reader's open segment handle. The reader may be used
// again afterwards; the next read reopens.
func (r *TailReader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	r.segFirst = 0
}

// Next returns up to max durable records starting at the reader's position,
// advancing it past what was returned. An empty batch with a nil error
// means the reader is caught up with the durable frontier — block on
// DurableNotify before calling again. ErrTailTruncated means the position
// was pruned and the consumer must re-bootstrap from a checkpoint.
func (r *TailReader) Next(max int) ([]TailRecord, error) {
	if max <= 0 {
		max = 256
	}
	s := r.s
	s.mu.Lock()
	durable := s.durableLSN
	if r.next > durable {
		s.mu.Unlock()
		return nil, nil
	}
	// Find the segment holding r.next. The chain is sorted; positions below
	// the oldest segment have been pruned.
	var seg segmentMeta
	found := false
	pruned := len(s.segments) == 0 || r.next < s.segments[0].first
	for _, sm := range s.segments {
		if r.next >= sm.first && (r.next <= sm.last || r.next == sm.first) {
			seg, found = sm, true
			break
		}
	}
	s.mu.Unlock()
	if !found {
		if pruned {
			return nil, fmt.Errorf("%w: LSN %d", ErrTailTruncated, r.next)
		}
		// Between segments with no holder (an empty active segment whose
		// first record is not durable yet): caught up.
		return nil, nil
	}

	// Hand off to the found segment if the cursor is elsewhere.
	if r.segFirst != seg.first || r.f == nil {
		r.Close()
		f, err := os.Open(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				// Pruned between the lock release and the open.
				return nil, fmt.Errorf("%w: LSN %d", ErrTailTruncated, r.next)
			}
			return nil, err
		}
		r.f = f
		r.segFirst = seg.first
		r.off = segHeaderLen
		// A mid-segment start (reconnect resume) skips already-consumed
		// records by parsing from the header; offsets then stay aligned.
		if r.next > seg.first {
			if err := r.skipTo(seg, r.next); err != nil {
				r.Close()
				return nil, err
			}
		}
	}
	return r.read(seg, durable, max)
}

// skipTo advances the open segment's offset to the frame holding lsn by
// parsing (and discarding) the frames before it.
func (r *TailReader) skipTo(seg segmentMeta, lsn uint64) error {
	expect := seg.first
	for expect < lsn {
		rec, n, err := readFrameAt(r.f, r.off)
		if err != nil {
			return fmt.Errorf("store: tail resume at LSN %d in %s: %w", lsn, seg.path, err)
		}
		if rec.LSN != expect {
			return fmt.Errorf("store: tail resume: segment %s has LSN %d where %d expected", seg.path, rec.LSN, expect)
		}
		r.off += n
		expect++
	}
	return nil
}

// read parses frames from the cursor until the batch is full, the durable
// frontier is reached, or the segment ends (sealed: the caller's next call
// hands off to the successor; active: caught up).
func (r *TailReader) read(seg segmentMeta, durable uint64, max int) ([]TailRecord, error) {
	var out []TailRecord
	for len(out) < max && r.next <= durable {
		if r.next > seg.last && seg.last >= seg.first {
			// Sealed segment exhausted under the snapshot we took; the next
			// call re-resolves the chain and hands off.
			break
		}
		rec, n, err := readFrameAt(r.f, r.off)
		if err != nil {
			if errors.Is(err, errFrameTorn) {
				// Bytes past the durable frontier not fully flushed yet.
				break
			}
			return out, err
		}
		if rec.LSN != r.next {
			return out, fmt.Errorf("store: tail: segment %s has LSN %d where %d expected",
				seg.path, rec.LSN, r.next)
		}
		r.off += n
		r.next++
		out = append(out, rec)
	}
	return out, nil
}

// errFrameTorn reports a frame that runs past the end of the file — for a
// tail reader that just means "not flushed yet", not corruption.
var errFrameTorn = errors.New("store: torn frame")

// readFrameAt parses one length-prefixed record frame at the given offset,
// returning the record and the frame's total byte length.
func readFrameAt(f *os.File, off int64) (TailRecord, int64, error) {
	var hdr [recHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		if errors.Is(err, io.EOF) {
			return TailRecord{}, 0, errFrameTorn
		}
		return TailRecord{}, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(hdr[:4])
	if payloadLen == 0 || payloadLen > maxRecordLen {
		return TailRecord{}, 0, fmt.Errorf("store: tail record declares %d payload bytes", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := f.ReadAt(payload, off+recHeaderLen); err != nil {
		if errors.Is(err, io.EOF) {
			return TailRecord{}, 0, errFrameTorn
		}
		return TailRecord{}, 0, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return TailRecord{}, 0, fmt.Errorf("store: tail record CRC mismatch")
	}
	lsn, n := binary.Uvarint(payload)
	if n <= 0 {
		return TailRecord{}, 0, fmt.Errorf("store: tail record has no LSN")
	}
	return TailRecord{LSN: lsn, Event: payload[n:]}, recHeaderLen + int64(payloadLen), nil
}
