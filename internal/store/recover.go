package store

// Crash recovery: rebuild a cm.Server from the newest valid checkpoint plus
// the journal tail. Checkpoint restore re-derives every block location by
// computation (cm.RestoreServer); the tail replays each journaled event
// through the server's replay entry points, which mirror the original
// mutations deterministically — migrated blocks are re-executed by (object,
// index) rather than by re-planning, so the recovered locator agrees
// block-for-block with the survivor.

import (
	"fmt"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
)

// Recover rebuilds the server this data directory holds. x0 must be built
// over the same generator family as the original server (the store cannot
// persist a function). On success the recovered server is integrity-verified
// and — unless the store is ReadOnly — wired to journal its future events
// here. Returns ErrNoCheckpoint when the directory has no usable base state.
func (s *Store) Recover(x0 placement.X0Func) (*cm.Server, *RecoveryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.haveCkpt {
		return nil, nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.cfg.Dir)
	}
	srv, err := cm.RestoreServer(s.serverCfg, s.metadata, x0)
	if err != nil {
		return nil, nil, err
	}
	for _, rec := range s.tail {
		ev, err := decodeEvent(rec.event)
		if err != nil {
			return nil, nil, fmt.Errorf("store: event at LSN %d: %w", rec.lsn, err)
		}
		if err := ApplyEvent(srv, ev); err != nil {
			return nil, nil, fmt.Errorf("store: replaying %s at LSN %d: %w", ev.Kind, rec.lsn, err)
		}
		s.observeReplay(ev)
	}
	if err := srv.VerifyIntegrity(); err != nil {
		return nil, nil, fmt.Errorf("store: recovered server failed verification: %w", err)
	}
	info := s.recovery
	info.CheckpointLSN = s.ckptLSN
	info.ReplayedEvents = len(s.tail)
	info.LSN = s.nextLSN - 1
	s.recovery = info
	if !s.cfg.ReadOnly {
		srv.SetEventSink(s.Sink())
	}
	return srv, &info, nil
}

// ApplyEvent re-executes one journaled event against a recovering server.
// The dispatch inverts the emit sites in package cm exactly: every event a
// live server journals must replay here, or recovery diverges. Follower
// replicas use the same dispatch to apply streamed journal records, which
// is what keeps a replica byte-identical to leader-side recovery.
func ApplyEvent(srv *cm.Server, ev cm.Event) error {
	switch ev.Kind {
	case cm.EventObjectAdded:
		return srv.AddObject(ev.Object)
	case cm.EventObjectRemoved:
		return srv.RemoveObject(ev.ObjectID)
	case cm.EventIngestCommitted:
		return srv.ReplayIngestCommit(ev.Object)
	case cm.EventScaleUpStarted:
		if ev.Profile != nil {
			_, err := srv.ScaleUpProfile(ev.Count, *ev.Profile)
			return err
		}
		_, err := srv.ScaleUp(ev.Count)
		return err
	case cm.EventScaleDownStarted:
		_, err := srv.ScaleDown(ev.Disks...)
		return err
	case cm.EventRedistributeStarted:
		_, err := srv.FullRedistribute()
		return err
	case cm.EventBlocksMigrated:
		return srv.ReplayMigratedBlocks(ev.Moves)
	case cm.EventReorgCompleted:
		return srv.FinishReorganization()
	case cm.EventDiskFailed:
		return srv.ReplayDiskFailed(ev.Disk, ev.Lost)
	case cm.EventDiskRepaired:
		return srv.RepairDisk(ev.Disk)
	case cm.EventBlocksRebuilt:
		return srv.ReplayRebuiltItems(ev.Rebuilt)
	default:
		return fmt.Errorf("store: no replay for event kind %d", ev.Kind)
	}
}
