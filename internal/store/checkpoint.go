package store

// Checkpoint files. A checkpoint serializes everything needed to rebuild
// the server without the journal prefix it covers: the server configuration
// (so `recover` needs no flags re-stating it) and cm.Metadata in its binary
// form. The file is written atomically (fsio) and framed with a CRC so a
// torn or bit-rotted checkpoint is detected and skipped in favor of an
// older one:
//
//	magic "SCCK" | version byte | uint32 LE CRC-32C of payload | payload
//
// The payload opens with the checkpoint's LSN (every event with an LSN at
// or below it is reflected in the state), cross-checked against the
// filename, followed by the replication epoch at that LSN (the running
// count of scaling-operation events since the journal's birth — what
// follower replicas fence reads on; version 2 added it). Function-typed
// config fields (MirrorOffset, the placement X0 generator) cannot be
// persisted: stores refuse configs with a custom mirror offset, and
// recovery takes the generator factory as an argument — it must match what
// the original server used.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"scaddar/internal/cm"
)

const (
	ckptMagic     = "SCCK"
	ckptVersion   = 2
	ckptHeaderLen = 4 + 1 + 4
)

// encodeCheckpoint renders a complete checkpoint file.
func encodeCheckpoint(lsn, epoch uint64, cfg cm.Config, md *cm.Metadata) ([]byte, error) {
	if cfg.MirrorOffset != nil {
		return nil, fmt.Errorf("store: cannot persist a custom MirrorOffset function")
	}
	payload := binary.AppendUvarint(nil, lsn)
	payload = binary.AppendUvarint(payload, epoch)
	payload = binary.AppendUvarint(payload, uint64(cfg.Round))
	payload, err := appendProfile(payload, cfg.Profile)
	if err != nil {
		return nil, err
	}
	payload = binary.AppendUvarint(payload, uint64(cfg.BlockBytes))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(cfg.Utilization))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(cfg.OverloadTarget))
	payload = binary.AppendUvarint(payload, uint64(cfg.GeneratorBits))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(cfg.Tolerance))
	payload = binary.AppendUvarint(payload, uint64(cfg.CacheBlocks))
	if cfg.MeasureRounds {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	payload = binary.AppendUvarint(payload, uint64(cfg.Redundancy))
	payload = binary.AppendUvarint(payload, uint64(cfg.ParityGroup))
	mdBytes, err := cm.EncodeMetadataBinary(md)
	if err != nil {
		return nil, err
	}
	payload = binary.AppendUvarint(payload, uint64(len(mdBytes)))
	payload = append(payload, mdBytes...)

	out := make([]byte, 0, ckptHeaderLen+len(payload))
	out = append(out, ckptMagic...)
	out = append(out, ckptVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...), nil
}

// decodeCheckpoint parses and validates a checkpoint file.
func decodeCheckpoint(data []byte) (lsn, epoch uint64, cfg cm.Config, md *cm.Metadata, err error) {
	if len(data) < ckptHeaderLen || string(data[:4]) != ckptMagic {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint lacks magic %q", ckptMagic)
	}
	if data[4] != ckptVersion {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint format version %d, want %d", data[4], ckptVersion)
	}
	payload := data[ckptHeaderLen:]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[5:]) {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint CRC mismatch")
	}
	r := bytes.NewReader(payload)
	if lsn, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint LSN: %w", err)
	}
	if epoch, err = binary.ReadUvarint(r); err != nil {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint epoch: %w", err)
	}
	round, err := readUint(r, "round length")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.Round = time.Duration(round)
	if cfg.Profile, err = readProfile(r); err != nil {
		return 0, 0, cfg, nil, err
	}
	blockBytes, err := readUint(r, "block size")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.BlockBytes = int64(blockBytes)
	if cfg.Utilization, err = readFloat(r, "utilization"); err != nil {
		return 0, 0, cfg, nil, err
	}
	if cfg.OverloadTarget, err = readFloat(r, "overload target"); err != nil {
		return 0, 0, cfg, nil, err
	}
	bits, err := readUint(r, "generator bits")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.GeneratorBits = uint(bits)
	if cfg.Tolerance, err = readFloat(r, "tolerance"); err != nil {
		return 0, 0, cfg, nil, err
	}
	cacheBlocks, err := readUint(r, "cache blocks")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.CacheBlocks = int(cacheBlocks)
	measure, err := r.ReadByte()
	if err != nil {
		return 0, 0, cfg, nil, fmt.Errorf("store: measure-rounds flag: %w", err)
	}
	cfg.MeasureRounds = measure != 0
	redundancy, err := readUint(r, "redundancy")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.Redundancy = cm.Redundancy(redundancy)
	parityGroup, err := readUint(r, "parity group")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	cfg.ParityGroup = int(parityGroup)
	mdLen, err := readCount(r, 1, "metadata")
	if err != nil {
		return 0, 0, cfg, nil, err
	}
	mdBytes := make([]byte, mdLen)
	if _, err := io.ReadFull(r, mdBytes); err != nil {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint metadata: %w", err)
	}
	if md, err = cm.DecodeMetadataBinary(mdBytes); err != nil {
		return 0, 0, cfg, nil, err
	}
	if r.Len() != 0 {
		return 0, 0, cfg, nil, fmt.Errorf("store: checkpoint has %d trailing bytes", r.Len())
	}
	return lsn, epoch, cfg, md, nil
}

// readFloat reads a fixed 8-byte float64 and rejects NaNs (no config field
// is legitimately NaN, and NaN != NaN breaks comparisons downstream).
func readFloat(r *bytes.Reader, what string) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("store: %s: %w", what, err)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	if math.IsNaN(v) {
		return 0, fmt.Errorf("store: %s is NaN", what)
	}
	return v, nil
}
