package repl

// Leader side: accept follower connections and stream the durable journal
// at each one. Every connection gets its own goroutine and its own
// store.TailReader; the store's durable-notify channel turns the stream
// into push (no polling) while a heartbeat timer keeps idle connections
// provably alive and keeps followers' lag measurements fresh.
//
// A follower that falls behind checkpoint pruning is not dropped: the
// leader notices ErrTailTruncated mid-stream and splices a fresh
// helloSnapshot into the connection, which the follower applies as a full
// state replacement. The stream then continues from the checkpoint's LSN.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scaddar/internal/obs"
	"scaddar/internal/store"
)

// LeaderConfig configures a journal-shipping leader.
type LeaderConfig struct {
	// Store is the open journal to serve. Required.
	Store *store.Store
	// Heartbeat is how often an idle connection receives a durable-frontier
	// frame; 0 means 500ms. Followers size their read timeouts from it.
	Heartbeat time.Duration
	// WriteTimeout bounds each frame batch's network write; 0 means 10s. A
	// follower that cannot drain the stream that long is disconnected (it
	// will reconnect and resume).
	WriteTimeout time.Duration
	// Registry, when non-nil, receives the leader's metrics.
	Registry *obs.Registry
	// Logf, when non-nil, receives connection-lifecycle log lines.
	Logf func(format string, args ...any)
}

// FollowerConnStatus describes one live follower connection.
type FollowerConnStatus struct {
	// Remote is the follower's network address.
	Remote string `json:"remote"`
	// SentLSN is the last journal record shipped on this connection.
	SentLSN uint64 `json:"sentLsn"`
	// Snapshots counts full-state bootstraps sent (1 for a fresh follower,
	// more if pruning overtook it mid-stream).
	Snapshots int `json:"snapshots"`
}

// LeaderStatus is a point-in-time view of the leader for /v1/replication.
type LeaderStatus struct {
	// Addr is the listening address.
	Addr string `json:"addr"`
	// JournalID is the identity of the journal being shipped
	// (store.JournalID); followers refuse to mix journals.
	JournalID string `json:"journalId"`
	// DurableLSN is the leader's shippable frontier.
	DurableLSN uint64 `json:"durableLsn"`
	// Epoch is the leader's replication epoch at DurableLSN.
	Epoch uint64 `json:"epoch"`
	// Followers lists the live connections.
	Followers []FollowerConnStatus `json:"followers"`
}

// Leader serves the journal to followers. Start it with Serve; stop it
// with Close (which also disconnects every follower).
type Leader struct {
	cfg LeaderConfig
	id  journalID // the store's journal identity in wire form

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]*leaderConn
	closed bool
	wg     sync.WaitGroup

	metrics *leaderMetrics
}

// leaderConn is the per-connection state Status reports.
type leaderConn struct {
	mu        sync.Mutex
	remote    string
	sentLSN   uint64
	snapshots int
}

// leaderMetrics holds the leader's registry cells.
type leaderMetrics struct {
	accepted   *obs.Counter
	active     *obs.Gauge
	records    *obs.Counter
	heartbeats *obs.Counter
	snapshots  *obs.Counter
}

func newLeaderMetrics(reg *obs.Registry) *leaderMetrics {
	if reg == nil {
		return nil
	}
	return &leaderMetrics{
		accepted:   reg.NewCounter("repl_leader_connections_total", "Follower connections accepted."),
		active:     reg.NewGauge("repl_leader_followers", "Live follower connections right now."),
		records:    reg.NewCounter("repl_leader_records_sent_total", "Journal records shipped to followers."),
		heartbeats: reg.NewCounter("repl_leader_heartbeats_total", "Heartbeat frames sent to idle followers."),
		snapshots:  reg.NewCounter("repl_leader_snapshots_total", "Full checkpoint bootstraps shipped."),
	}
}

// NewLeader builds a leader over an open store.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("repl: LeaderConfig.Store is required")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	id, err := parseJournalID(cfg.Store.JournalID())
	if err != nil {
		return nil, err
	}
	return &Leader{
		cfg:     cfg,
		id:      id,
		conns:   make(map[net.Conn]*leaderConn),
		metrics: newLeaderMetrics(cfg.Registry),
	}, nil
}

// Serve starts accepting followers on ln and returns immediately. The
// listener is owned by the leader from here on: Close closes it.
func (l *Leader) Serve(ln net.Listener) {
	l.mu.Lock()
	l.ln = ln
	l.mu.Unlock()
	l.wg.Add(1)
	go l.acceptLoop(ln)
}

// Addr returns the listening address, or nil before Serve.
func (l *Leader) Addr() net.Addr {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ln == nil {
		return nil
	}
	return l.ln.Addr()
}

// Status reports the leader's frontier and live follower connections.
func (l *Leader) Status() LeaderStatus {
	durable, epoch := l.cfg.Store.Durable()
	st := LeaderStatus{JournalID: l.cfg.Store.JournalID(), DurableLSN: durable, Epoch: epoch}
	l.mu.Lock()
	if l.ln != nil {
		st.Addr = l.ln.Addr().String()
	}
	for _, lc := range l.conns {
		lc.mu.Lock()
		st.Followers = append(st.Followers, FollowerConnStatus{
			Remote:    lc.remote,
			SentLSN:   lc.sentLSN,
			Snapshots: lc.snapshots,
		})
		lc.mu.Unlock()
	}
	l.mu.Unlock()
	return st
}

// Close stops accepting, disconnects every follower, and waits for the
// per-connection goroutines to drain.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	ln := l.ln
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	l.wg.Wait()
	return nil
}

func (l *Leader) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}

func (l *Leader) acceptLoop(ln net.Listener) {
	defer l.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		lc := &leaderConn{remote: conn.RemoteAddr().String()}
		l.conns[conn] = lc
		l.wg.Add(1)
		l.mu.Unlock()
		if l.metrics != nil {
			l.metrics.accepted.Inc()
			l.metrics.active.Add(1)
		}
		go func() {
			defer l.wg.Done()
			err := l.serveConn(conn, lc)
			conn.Close()
			l.mu.Lock()
			delete(l.conns, conn)
			l.mu.Unlock()
			if l.metrics != nil {
				l.metrics.active.Add(-1)
			}
			if err != nil {
				l.logf("repl leader: follower %s: %v", lc.remote, err)
			}
		}()
	}
}

// connWriter pairs the buffered frame writer with its deadline-bearing
// conn so every flush is bounded.
type connWriter struct {
	conn    net.Conn
	w       *bufio.Writer
	timeout time.Duration
}

func (cw *connWriter) flush() error {
	cw.conn.SetWriteDeadline(time.Now().Add(cw.timeout))
	return cw.w.Flush()
}

// serveConn speaks the protocol at one follower until the connection or
// the leader dies. A nil return is a clean disconnect.
func (l *Leader) serveConn(conn net.Conn, lc *leaderConn) error {
	conn.SetReadDeadline(time.Now().Add(l.cfg.WriteTimeout))
	fromLSN, clientID, err := readHandshake(conn)
	if err != nil {
		return err
	}
	conn.SetReadDeadline(time.Time{})
	l.logf("repl leader: follower %s connected, fromLSN=%d", lc.remote, fromLSN)

	// A resume position only means something inside the journal it counts
	// LSNs in: a follower carrying another journal's state (or a position
	// past our durable frontier, i.e. a journal this leader lost) is
	// re-bootstrapped, never resumed.
	if fromLSN > 0 {
		if clientID != l.id {
			l.logf("repl leader: follower %s applied journal %x, ours is %x: forcing bootstrap",
				lc.remote, clientID, l.id)
			fromLSN = 0
		} else if durable, _ := l.cfg.Store.Durable(); fromLSN > durable+1 {
			l.logf("repl leader: follower %s asks for LSN %d past durable %d: forcing bootstrap",
				lc.remote, fromLSN, durable)
			fromLSN = 0
		}
	}

	cw := &connWriter{conn: conn, w: bufio.NewWriter(conn), timeout: l.cfg.WriteTimeout}
	reader := l.cfg.Store.NewTailReader(fromLSN)
	defer func() { reader.Close() }() // reader is reassigned by snapshot splices

	// Resume if the journal still holds the requested position; bootstrap
	// otherwise. Probing with Next both answers that and fetches the first
	// batch, which is sent right after the hello.
	var firstBatch []store.TailRecord
	if fromLSN > 0 {
		firstBatch, err = reader.Next(tailBatch)
	}
	if fromLSN == 0 || errors.Is(err, store.ErrTailTruncated) {
		reader, err = l.sendSnapshot(cw, lc, reader)
		if err != nil {
			return err
		}
		firstBatch = nil
	} else if err != nil {
		return err
	} else {
		durable, epoch := l.cfg.Store.Durable()
		if err := writeFrame(cw.w, encodeHelloResume(helloResume{
			journal:     l.id,
			resumeLSN:   fromLSN,
			durableLSN:  durable,
			leaderEpoch: epoch,
		})); err != nil {
			return err
		}
	}
	if err := l.sendRecords(cw, lc, firstBatch); err != nil {
		return err
	}

	for {
		batch, err := reader.Next(tailBatch)
		if errors.Is(err, store.ErrTailTruncated) {
			// Pruning overtook this follower mid-stream: replace its state.
			reader.Close()
			if reader, err = l.sendSnapshot(cw, lc, reader); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if len(batch) > 0 {
			if err := l.sendRecords(cw, lc, batch); err != nil {
				return err
			}
			continue
		}
		// Caught up: advertise the frontier, then wait for it to advance.
		durable, ch := l.cfg.Store.DurableNotify()
		if durable >= reader.Pos() {
			continue // advanced between Next and DurableNotify
		}
		_, epoch := l.cfg.Store.Durable()
		if err := writeFrame(cw.w, encodeHeartbeat(heartbeat{durableLSN: durable, durableEpoch: epoch})); err != nil {
			return err
		}
		if err := cw.flush(); err != nil {
			return err
		}
		if l.metrics != nil {
			l.metrics.heartbeats.Inc()
		}
		if closed := l.waitAdvance(ch); closed {
			return nil
		}
	}
}

// tailBatch is how many records one Next call fetches — small enough to
// interleave heartbeats, large enough to amortize framing.
const tailBatch = 256

// waitAdvance blocks until the durable frontier advances, a heartbeat is
// due, or the leader closes. Reports whether the leader closed.
func (l *Leader) waitAdvance(ch <-chan struct{}) bool {
	t := time.NewTimer(l.cfg.Heartbeat)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// sendSnapshot ships a full bootstrap hello and returns a fresh reader
// positioned just past the checkpoint it carried.
func (l *Leader) sendSnapshot(cw *connWriter, lc *leaderConn, old *store.TailReader) (*store.TailReader, error) {
	if old != nil {
		old.Close()
	}
	ckLSN, ckEpoch, data, err := l.cfg.Store.CheckpointData()
	if err != nil {
		return nil, err
	}
	durable, epoch := l.cfg.Store.Durable()
	h := helloSnapshot{
		journal:     l.id,
		ckptLSN:     ckLSN,
		ckptEpoch:   ckEpoch,
		durableLSN:  durable,
		leaderEpoch: epoch,
		ckptData:    data,
	}
	if err := writeFrame(cw.w, encodeHelloSnapshot(h)); err != nil {
		return nil, err
	}
	if err := cw.flush(); err != nil {
		return nil, err
	}
	lc.mu.Lock()
	lc.snapshots++
	lc.sentLSN = ckLSN
	lc.mu.Unlock()
	if l.metrics != nil {
		l.metrics.snapshots.Inc()
	}
	return l.cfg.Store.NewTailReader(ckLSN + 1), nil
}

// sendRecords frames a batch of journal records and flushes.
func (l *Leader) sendRecords(cw *connWriter, lc *leaderConn, batch []store.TailRecord) error {
	if len(batch) == 0 {
		return nil
	}
	for _, rec := range batch {
		if err := writeFrame(cw.w, encodeRecord(rec.LSN, rec.Event)); err != nil {
			return err
		}
	}
	if err := cw.flush(); err != nil {
		return err
	}
	lc.mu.Lock()
	lc.sentLSN = batch[len(batch)-1].LSN
	lc.mu.Unlock()
	if l.metrics != nil {
		l.metrics.records.Add(uint64(len(batch)))
	}
	return nil
}
