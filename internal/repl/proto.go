// Package repl ships the leader's journal to follower replicas over TCP,
// so reads survive the leader: a follower bootstraps from the newest
// checkpoint, tails the durable journal, applies events through the same
// replay dispatch crash recovery uses, and serves block lookups from its
// own lock-free locator snapshot. Reads are epoch-fenced — a follower that
// knows the leader journaled a scaling operation it has not applied yet
// refuses lookups (cm.ErrEpochFenced) instead of answering from placement
// state the operation superseded — and report bounded staleness against a
// configured lag budget (cm.ErrStaleRead).
//
// The wire protocol is deliberately minimal: one TCP connection, client
// speaks first with a fixed-size handshake, then the leader streams frames
// until the connection dies. Frames reuse the store's record idiom —
// length prefix plus CRC-32C over the payload — so a truncated or
// bit-flipped frame is detected at the follower, which drops the
// connection and resumes from its applied LSN.
//
//	client → leader: "SCRP" | version byte | uint64 LE fromLSN | 16-byte journal ID
//	leader → client: uint32 LE len | uint32 LE CRC-32C | payload
//
// The payload's first byte is the frame type:
//
//	helloSnapshot: 16-byte journal ID, then uvarint ckptLSN, ckptEpoch,
//	               durableLSN, leaderEpoch, ckptLen, then ckptLen
//	               checkpoint-file bytes
//	helloResume:   16-byte journal ID, then uvarint resumeLSN, durableLSN,
//	               leaderEpoch
//	record:        uvarint LSN, then the raw event encoding
//	heartbeat:     uvarint durableLSN, durableEpoch
//
// fromLSN names the first LSN the follower still needs (applied+1); zero
// asks for a full bootstrap. The journal ID pins which journal those LSNs
// belong to: the follower sends the identity it bootstrapped from (zero
// before any bootstrap) and the leader only resumes when it matches its own
// store's identity AND the journal still holds fromLSN — otherwise it
// answers helloSnapshot, replacing the follower's state wholesale. LSNs are
// per-journal counters, so without the identity a follower of journal A
// reconnecting to a leader of journal B could be "resumed" at a position
// that lines up numerically and then splice B's records onto A's state.
// The leader likewise refuses to resume a follower claiming a position
// ahead of its own durable frontier (a leader restored from an older copy
// of the same journal): that too forces a snapshot. A mid-stream
// helloSnapshot is also sent if checkpoint pruning overtakes a slow
// follower. Only fsync-covered records are ever shipped; a follower can
// never apply an event the leader could still lose.
package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants. The version byte is checked exactly: there is one
// version of this protocol until there are two.
const (
	protoMagic   = "SCRP"
	protoVersion = 1
	journalIDLen = 16
	handshakeLen = 4 + 1 + 8 + journalIDLen

	frameHeaderLen = 8        // uint32 len + uint32 CRC
	maxFrameLen    = 64 << 20 // sanity bound; checkpoints dominate frame size
)

// journalID is the raw form of a store journal identity on the wire. The
// zero value means "no journal": what a follower sends before its first
// bootstrap.
type journalID [journalIDLen]byte

// parseJournalID decodes a store's hex identity (store.JournalID) into its
// wire form.
func parseJournalID(s string) (journalID, error) {
	var id journalID
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != journalIDLen {
		return id, fmt.Errorf("repl: malformed journal identity %q", s)
	}
	copy(id[:], raw)
	return id, nil
}

// Frame types.
const (
	frameHelloSnapshot = 1
	frameHelloResume   = 2
	frameRecord        = 3
	frameHeartbeat     = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errBadFrame reports a frame that failed structural validation (CRC, type,
// bounds). The receiver treats it like a dead connection: drop and resume.
var errBadFrame = errors.New("repl: bad frame")

// encodeHandshake renders the client's opening bytes: the resume position
// plus the identity of the journal that position counts LSNs in.
func encodeHandshake(fromLSN uint64, id journalID) []byte {
	buf := make([]byte, 0, handshakeLen)
	buf = append(buf, protoMagic...)
	buf = append(buf, protoVersion)
	buf = binary.LittleEndian.AppendUint64(buf, fromLSN)
	return append(buf, id[:]...)
}

// readHandshake parses the client's opening bytes from the wire.
func readHandshake(r io.Reader) (fromLSN uint64, id journalID, err error) {
	var buf [handshakeLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, id, fmt.Errorf("repl: handshake: %w", err)
	}
	if string(buf[:4]) != protoMagic {
		return 0, id, fmt.Errorf("repl: handshake lacks magic %q", protoMagic)
	}
	if buf[4] != protoVersion {
		return 0, id, fmt.Errorf("repl: protocol version %d, want %d", buf[4], protoVersion)
	}
	copy(id[:], buf[13:])
	return binary.LittleEndian.Uint64(buf[5:13]), id, nil
}

// writeFrame frames a payload (type byte already included) onto w.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and validates one frame, returning its payload.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrameLen {
		return nil, fmt.Errorf("%w: declares %d payload bytes", errBadFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", errBadFrame)
	}
	return payload, nil
}

// helloSnapshot carries a full bootstrap: the leader's journal identity,
// checkpoint state, and its durable frontier at send time.
type helloSnapshot struct {
	journal     journalID
	ckptLSN     uint64
	ckptEpoch   uint64
	durableLSN  uint64
	leaderEpoch uint64
	ckptData    []byte
}

func encodeHelloSnapshot(h helloSnapshot) []byte {
	p := []byte{frameHelloSnapshot}
	p = append(p, h.journal[:]...)
	p = binary.AppendUvarint(p, h.ckptLSN)
	p = binary.AppendUvarint(p, h.ckptEpoch)
	p = binary.AppendUvarint(p, h.durableLSN)
	p = binary.AppendUvarint(p, h.leaderEpoch)
	p = binary.AppendUvarint(p, uint64(len(h.ckptData)))
	return append(p, h.ckptData...)
}

// helloResume tells the follower the leader will stream from resumeLSN. It
// echoes the leader's journal identity so the follower can verify the
// resume really is against the journal it applied.
type helloResume struct {
	journal     journalID
	resumeLSN   uint64
	durableLSN  uint64
	leaderEpoch uint64
}

func encodeHelloResume(h helloResume) []byte {
	p := []byte{frameHelloResume}
	p = append(p, h.journal[:]...)
	p = binary.AppendUvarint(p, h.resumeLSN)
	p = binary.AppendUvarint(p, h.durableLSN)
	return binary.AppendUvarint(p, h.leaderEpoch)
}

// encodeRecord frames one journal record for the wire.
func encodeRecord(lsn uint64, event []byte) []byte {
	p := []byte{frameRecord}
	p = binary.AppendUvarint(p, lsn)
	return append(p, event...)
}

// heartbeat advertises the leader's durable frontier so an idle follower
// can measure lag and detect epoch divergence without traffic.
type heartbeat struct {
	durableLSN   uint64
	durableEpoch uint64
}

func encodeHeartbeat(h heartbeat) []byte {
	p := []byte{frameHeartbeat}
	p = binary.AppendUvarint(p, h.durableLSN)
	return binary.AppendUvarint(p, h.durableEpoch)
}

// frameCursor walks a frame payload's uvarint fields with uniform error
// handling.
type frameCursor struct {
	buf []byte
	off int
	err error
}

func (c *frameCursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.err = fmt.Errorf("%w: truncated %s", errBadFrame, what)
		return 0
	}
	c.off += n
	return v
}

func (c *frameCursor) bytes(n uint64, what string) []byte {
	if c.err != nil {
		return nil
	}
	if uint64(len(c.buf)-c.off) < n {
		c.err = fmt.Errorf("%w: %s wants %d bytes, %d left", errBadFrame, what, n, len(c.buf)-c.off)
		return nil
	}
	b := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return b
}

func (c *frameCursor) rest() []byte {
	b := c.buf[c.off:]
	c.off = len(c.buf)
	return b
}

func (c *frameCursor) done(what string) error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.buf) {
		return fmt.Errorf("%w: %s has %d trailing bytes", errBadFrame, what, len(c.buf)-c.off)
	}
	return nil
}

func decodeHelloSnapshot(p []byte) (helloSnapshot, error) {
	c := frameCursor{buf: p, off: 1}
	var h helloSnapshot
	copy(h.journal[:], c.bytes(journalIDLen, "journal identity"))
	h.ckptLSN = c.uvarint("checkpoint LSN")
	h.ckptEpoch = c.uvarint("checkpoint epoch")
	h.durableLSN = c.uvarint("durable LSN")
	h.leaderEpoch = c.uvarint("leader epoch")
	h.ckptData = c.bytes(c.uvarint("checkpoint length"), "checkpoint")
	return h, c.done("hello-snapshot")
}

func decodeHelloResume(p []byte) (helloResume, error) {
	c := frameCursor{buf: p, off: 1}
	var h helloResume
	copy(h.journal[:], c.bytes(journalIDLen, "journal identity"))
	h.resumeLSN = c.uvarint("resume LSN")
	h.durableLSN = c.uvarint("durable LSN")
	h.leaderEpoch = c.uvarint("leader epoch")
	return h, c.done("hello-resume")
}

func decodeRecord(p []byte) (lsn uint64, event []byte, err error) {
	c := frameCursor{buf: p, off: 1}
	lsn = c.uvarint("record LSN")
	event = c.rest()
	return lsn, event, c.done("record")
}

func decodeHeartbeat(p []byte) (heartbeat, error) {
	c := frameCursor{buf: p, off: 1}
	h := heartbeat{
		durableLSN:   c.uvarint("durable LSN"),
		durableEpoch: c.uvarint("durable epoch"),
	}
	return h, c.done("heartbeat")
}
