package repl

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/store"
	"scaddar/internal/workload"
)

// Shared helpers: a deterministic generator family (the store tests' one),
// a bootstrapped leader store, and wait/compare utilities.

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

func testX0() placement.X0Func { return placement.NewX0Func(testFactory) }

func testConfig() cm.Config {
	cfg := cm.DefaultConfig()
	cfg.Round = 100 * time.Millisecond
	return cfg
}

func newTestServer(t testing.TB, cfg cm.Config, n0 int) *cm.Server {
	t.Helper()
	strat, err := placement.NewScaddar(n0, testX0())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cm.NewServer(cfg, strat)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func testObject(id, blocks int) workload.Object {
	return workload.Object{
		ID:                id,
		Seed:              uint64(id)*1000 + 7,
		Blocks:            blocks,
		BlockBytes:        256 << 10,
		BitrateBitsPerSec: 4 << 20,
	}
}

// newLeader bootstraps a server+store in dir (wiring the journal sink) and
// starts a leader on a fresh loopback port. Cleanup closes both.
func newLeader(t *testing.T, dir string, storeCfg store.Config, objects int) (*cm.Server, *store.Store, *Leader) {
	t.Helper()
	storeCfg.Dir = dir
	srv := newTestServer(t, testConfig(), 4)
	st, err := store.Open(storeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < objects; i++ {
		if err := srv.AddObject(testObject(i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	ldr, err := NewLeader(LeaderConfig{Store: st, Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ldr.Serve(ln)
	t.Cleanup(func() {
		ldr.Close()
		st.Close()
	})
	return srv, st, ldr
}

func startTestFollower(t *testing.T, addr string, tweak func(*FollowerConfig)) *Follower {
	t.Helper()
	cfg := FollowerConfig{
		Addr:        addr,
		X0:          testX0(),
		Factory:     testFactory,
		ReadTimeout: time.Second,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  200 * time.Millisecond,
		Seed:        1,
		Logf:        t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	f, err := StartFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// waitApplied blocks until the follower's applied LSN reaches lsn.
func waitApplied(t *testing.T, f *Follower, lsn uint64, within time.Duration) *View {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if v := f.View(); v != nil && v.AppliedLSN >= lsn {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	v := f.View()
	if v == nil {
		t.Fatalf("follower never bootstrapped (want LSN %d)", lsn)
	}
	t.Fatalf("follower stuck at LSN %d (epoch %d), want %d", v.AppliedLSN, v.Epoch, lsn)
	return nil
}

// assertConverged checks the follower's server is byte-identical to the
// leader's and agrees on every block location.
func assertConverged(t *testing.T, leader, follower *cm.Server) {
	t.Helper()
	if err := follower.VerifyIntegrity(); err != nil {
		t.Fatalf("replica failed integrity: %v", err)
	}
	wantMD, err := leader.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	gotMD, err := follower.ExportMetadata()
	if err != nil {
		t.Fatal(err)
	}
	want, err := cm.EncodeMetadataBinary(wantMD)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cm.EncodeMetadataBinary(gotMD)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatalf("replica metadata diverged: %d vs %d bytes (or content)", len(got), len(want))
	}
	wantSnap, err := leader.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	gotSnap, err := follower.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range wantSnap.Objects() {
		for idx := 0; idx < obj.Blocks; idx++ {
			wd, werr := wantSnap.Locate(obj.ID, idx)
			gd, gerr := gotSnap.Locate(obj.ID, idx)
			if (werr == nil) != (gerr == nil) || wd != gd {
				t.Fatalf("block %d/%d: leader (%d,%v) vs replica (%d,%v)",
					obj.ID, idx, wd, werr, gd, gerr)
			}
		}
	}
}

// TestReplicationBasic: bootstrap from checkpoint, stream live appends,
// converge byte-identical.
func TestReplicationBasic(t *testing.T) {
	srv, st, ldr := newLeader(t, t.TempDir(), store.Config{}, 5)
	f := startTestFollower(t, ldr.Addr().String(), nil)

	durable, _ := st.Durable()
	waitApplied(t, f, durable, 5*time.Second)

	// Live traffic after bootstrap: more objects plus one full scale-up.
	for i := 5; i < 10; i++ {
		if err := srv.AddObject(testObject(i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.ScaleUp(1); err != nil {
		t.Fatal(err)
	}
	for srv.Reorganizing() {
		if err := srv.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.FinishReorganization(); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	durable, epoch := st.Durable()
	v := waitApplied(t, f, durable, 5*time.Second)
	if v.Epoch != epoch {
		t.Fatalf("replica epoch %d, leader durable epoch %d", v.Epoch, epoch)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, srv, f.Server())

	// The replica answers lookups with its applied LSN attached.
	disk, lsn, err := f.Locate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != durable {
		t.Fatalf("read claimed LSN %d, want %d", lsn, durable)
	}
	if disk < 0 || disk >= 5 {
		t.Fatalf("block 0/0 on disk %d, want 0..4", disk)
	}
}

// TestFollowerResume: a dropped connection resumes from the applied LSN
// instead of re-bootstrapping.
func TestFollowerResume(t *testing.T) {
	srv, st, ldr := newLeader(t, t.TempDir(), store.Config{}, 3)
	f := startTestFollower(t, ldr.Addr().String(), nil)
	durable, _ := st.Durable()
	waitApplied(t, f, durable, 5*time.Second)

	// Sever every live connection; the follower must reconnect and resume.
	ldr.mu.Lock()
	for c := range ldr.conns {
		c.Close()
	}
	ldr.mu.Unlock()

	for i := 100; i < 105; i++ {
		if err := srv.AddObject(testObject(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	durable, _ = st.Durable()
	waitApplied(t, f, durable, 5*time.Second)

	// The leader must have served this as a resume, not a re-bootstrap.
	if st := f.Status(); st.Snapshots != 1 {
		t.Fatalf("follower applied %d snapshots, want 1 (resume after drop)", st.Snapshots)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, srv, f.Server())
}

// scriptedLeader runs a fake leader speaking raw frames from a script, for
// deterministic fencing/staleness tests the real leader cannot time. Every
// connection gets the hello plus the full frame history so far — a
// follower reconnect replays the script (duplicates are skipped by design)
// and no sent frame can be lost to a dead connection.
type scriptedLeader struct {
	ln     net.Listener
	mu     sync.Mutex
	hello  []byte
	frames [][]byte
}

func (sl *scriptedLeader) send(frame []byte) {
	sl.mu.Lock()
	sl.frames = append(sl.frames, frame)
	sl.mu.Unlock()
}

func startScriptedLeader(t *testing.T, hello []byte) *scriptedLeader {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := &scriptedLeader{ln: ln, hello: hello}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				if _, _, err := readHandshake(conn); err != nil {
					return
				}
				w := bufio.NewWriter(conn)
				if err := writeFrame(w, sl.hello); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				for sent := 0; ; {
					sl.mu.Lock()
					pending := sl.frames[sent:]
					sl.mu.Unlock()
					for _, frame := range pending {
						if err := writeFrame(w, frame); err != nil {
							return
						}
						sent++
					}
					if err := w.Flush(); err != nil {
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return sl
}

// snapshotHelloFor renders a helloSnapshot for a server's current state.
func snapshotHelloFor(t *testing.T, srv *cm.Server, lsn, epoch, durable, leaderEpoch uint64) []byte {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	_, _, data, err := st.CheckpointData()
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap checkpoints carry LSN 0 / epoch 0 — exactly the base the
	// scripted scenarios want.
	if lsn != 0 || epoch != 0 {
		t.Fatalf("scripted scenarios start at LSN 0, got %d/%d", lsn, epoch)
	}
	return encodeHelloSnapshot(helloSnapshot{
		ckptLSN:     lsn,
		ckptEpoch:   epoch,
		durableLSN:  durable,
		leaderEpoch: leaderEpoch,
		ckptData:    data,
	})
}

// TestEpochFencing: a heartbeat advertising an unapplied scaling epoch
// fences reads until the epoch event arrives and is applied.
func TestEpochFencing(t *testing.T) {
	srv := newTestServer(t, testConfig(), 4)
	for i := 0; i < 3; i++ {
		if err := srv.AddObject(testObject(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	hello := snapshotHelloFor(t, srv, 0, 0, 0, 0)
	sl := startScriptedLeader(t, hello)
	f := startTestFollower(t, sl.ln.Addr().String(), nil)
	waitApplied(t, f, 0, 5*time.Second)

	// Reads work at epoch parity.
	if _, _, err := f.Locate(0, 0); err != nil {
		t.Fatalf("read at epoch parity: %v", err)
	}

	// The leader journals a scaling op we have not seen: heartbeat says
	// durable epoch 1. Reads must fence.
	sl.send(encodeHeartbeat(heartbeat{durableLSN: 1, durableEpoch: 1}))
	waitFor(t, func() bool {
		_, _, err := f.Locate(0, 0)
		return errors.Is(err, cm.ErrEpochFenced)
	}, "read to fence on epoch skew")

	// Shipping and applying the scaling event clears the fence.
	ev, err := store.EncodeEvent(cm.Event{Kind: cm.EventScaleUpStarted, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	sl.send(encodeRecord(1, ev))
	waitFor(t, func() bool {
		_, _, err := f.Locate(0, 0)
		return err == nil
	}, "fence to clear after applying the epoch event")
	v := f.View()
	if v.Epoch != 1 || v.AppliedLSN != 1 {
		t.Fatalf("view at LSN %d epoch %d, want 1/1", v.AppliedLSN, v.Epoch)
	}
}

// TestStalenessBudget: falling behind the lag budget turns reads into
// ErrStaleRead until the replica catches up.
func TestStalenessBudget(t *testing.T) {
	srv := newTestServer(t, testConfig(), 4)
	if err := srv.AddObject(testObject(0, 2)); err != nil {
		t.Fatal(err)
	}
	hello := snapshotHelloFor(t, srv, 0, 0, 0, 0)
	sl := startScriptedLeader(t, hello)
	f := startTestFollower(t, sl.ln.Addr().String(), func(c *FollowerConfig) {
		c.MaxLagEvents = 3
	})
	waitApplied(t, f, 0, 5*time.Second)

	// Lag 2: inside budget, reads still served.
	sl.send(encodeHeartbeat(heartbeat{durableLSN: 2}))
	waitFor(t, func() bool { return f.View().LeaderLSN == 2 }, "heartbeat to land")
	if _, _, err := f.Locate(0, 0); err != nil {
		t.Fatalf("read inside lag budget: %v", err)
	}

	// Lag 10: over budget.
	sl.send(encodeHeartbeat(heartbeat{durableLSN: 10}))
	waitFor(t, func() bool {
		_, _, err := f.Locate(0, 0)
		return errors.Is(err, cm.ErrStaleRead)
	}, "read to fail over lag budget")

	// Catch up: ship records 1..10 (plain object adds, no epoch events).
	for lsn := uint64(1); lsn <= 10; lsn++ {
		ev, err := store.EncodeEvent(cm.Event{Kind: cm.EventObjectAdded, Object: testObject(int(lsn)+10, 2)})
		if err != nil {
			t.Fatal(err)
		}
		sl.send(encodeRecord(lsn, ev))
	}
	waitFor(t, func() bool {
		_, _, err := f.Locate(0, 0)
		return err == nil
	}, "reads to resume after catching up")
}

// TestFollowerNotBootstrapped: reads before any snapshot are stale, typed.
func TestFollowerNotBootstrapped(t *testing.T) {
	// Dial something that will never answer usefully: a listener that
	// accepts and stays silent.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	f := startTestFollower(t, ln.Addr().String(), func(c *FollowerConfig) {
		c.ReadTimeout = 100 * time.Millisecond
	})
	if _, _, err := f.Locate(0, 0); !errors.Is(err, cm.ErrStaleRead) {
		t.Fatalf("pre-bootstrap read: err = %v, want ErrStaleRead", err)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
