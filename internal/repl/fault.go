package repl

// FaultInjector: a seeded TCP proxy that sits between a follower and its
// leader and misbehaves on purpose. The chaos harness points followers at
// the proxy and asserts byte-identical convergence through every fault the
// schedule produces. Faults model a hostile network, not a hostile peer:
//
//   - drop: close both sides mid-stream (connection reset)
//   - stall: stop forwarding long enough to trip the follower's read
//     timeout
//   - truncate: forward a prefix of a chunk — usually mid-frame — then
//     close, exercising the CRC/length validation on partial frames
//   - duplicate: forward a chunk twice, exercising the follower's
//     at-or-below-applied-LSN skip
//
// All decisions come from one seeded generator consulted per forwarded
// chunk, so a failing schedule replays exactly from its seed.

import (
	"net"
	"sync"
	"time"

	"scaddar/internal/prng"
)

// FaultConfig tunes the injector's misbehavior. Rates are per forwarded
// chunk in [0,1); zero disables that fault.
type FaultConfig struct {
	// Target is the leader address the proxy forwards to. Required.
	Target string
	// Seed drives the fault schedule; 0 picks a fixed default.
	Seed uint64
	// DropRate closes the connection instead of forwarding a chunk.
	DropRate float64
	// StallRate pauses forwarding for StallFor before a chunk.
	StallRate float64
	// StallFor is the stall duration; 0 means 3s (enough to trip a 2s read
	// timeout).
	StallFor time.Duration
	// TruncateRate forwards a partial chunk (at least 1 byte short) and
	// then closes the connection.
	TruncateRate float64
	// DuplicateRate forwards a chunk twice.
	DuplicateRate float64
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// FaultInjector is a running chaos proxy. Point followers at Addr().
type FaultInjector struct {
	cfg FaultConfig
	ln  net.Listener

	mu     sync.Mutex
	rng    prng.Source
	conns  map[net.Conn]struct{}
	closed bool
	faults uint64
	wg     sync.WaitGroup
}

// StartFaultInjector listens on a fresh loopback port and proxies every
// connection to cfg.Target under the configured fault schedule.
func StartFaultInjector(cfg FaultConfig) (*FaultInjector, error) {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 3 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xfa17
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fi := &FaultInjector{
		cfg:   cfg,
		ln:    ln,
		rng:   prng.NewSplitMix64(cfg.Seed),
		conns: make(map[net.Conn]struct{}),
	}
	fi.wg.Add(1)
	go fi.acceptLoop()
	return fi, nil
}

// Addr is the proxy's listen address — what followers dial.
func (fi *FaultInjector) Addr() string { return fi.ln.Addr().String() }

// Faults reports how many faults the schedule has injected so far; the
// chaos harness asserts it is non-zero, or the run proved nothing.
func (fi *FaultInjector) Faults() uint64 {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.faults
}

// Close stops the proxy and severs every proxied connection.
func (fi *FaultInjector) Close() error {
	fi.mu.Lock()
	if fi.closed {
		fi.mu.Unlock()
		return nil
	}
	fi.closed = true
	for c := range fi.conns {
		c.Close()
	}
	fi.mu.Unlock()
	fi.ln.Close()
	fi.wg.Wait()
	return nil
}

func (fi *FaultInjector) logf(format string, args ...any) {
	if fi.cfg.Logf != nil {
		fi.cfg.Logf(format, args...)
	}
}

// roll draws one fault decision; rate 0 never fires.
func (fi *FaultInjector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	fi.mu.Lock()
	v := fi.rng.Next()
	fi.mu.Unlock()
	return float64(v%1_000_000)/1_000_000 < rate
}

func (fi *FaultInjector) injected(kind string) {
	fi.mu.Lock()
	fi.faults++
	n := fi.faults
	fi.mu.Unlock()
	fi.logf("fault injector: %s (fault #%d)", kind, n)
}

func (fi *FaultInjector) track(c net.Conn) bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.closed {
		return false
	}
	fi.conns[c] = struct{}{}
	return true
}

func (fi *FaultInjector) untrack(c net.Conn) {
	fi.mu.Lock()
	delete(fi.conns, c)
	fi.mu.Unlock()
}

func (fi *FaultInjector) acceptLoop() {
	defer fi.wg.Done()
	for {
		client, err := fi.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.DialTimeout("tcp", fi.cfg.Target, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		if !fi.track(client) || !fi.track(upstream) {
			client.Close()
			upstream.Close()
			return
		}
		// Client→leader (the 13-byte handshake) is forwarded faithfully;
		// the interesting traffic — and the faults — ride the
		// leader→client stream.
		fi.wg.Add(2)
		go func() {
			defer fi.wg.Done()
			defer fi.untrack(client)
			fi.forwardClean(client, upstream)
		}()
		go func() {
			defer fi.wg.Done()
			defer fi.untrack(upstream)
			fi.forwardFaulty(upstream, client)
		}()
	}
}

// forwardClean copies src to dst until either side dies, then severs both.
func (fi *FaultInjector) forwardClean(src, dst net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	src.Close()
	dst.Close()
}

// forwardFaulty copies src (leader) to dst (follower), consulting the
// fault schedule before each chunk.
func (fi *FaultInjector) forwardFaulty(src, dst net.Conn) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if fi.roll(fi.cfg.DropRate) {
				fi.injected("drop")
				return
			}
			if fi.roll(fi.cfg.StallRate) {
				fi.injected("stall")
				time.Sleep(fi.cfg.StallFor)
			}
			if n > 1 && fi.roll(fi.cfg.TruncateRate) {
				fi.injected("truncate")
				// At least one byte, at most n-1: always a real partial.
				fi.mu.Lock()
				cut := 1 + int(fi.rng.Next()%uint64(n-1))
				fi.mu.Unlock()
				dst.Write(buf[:cut])
				return
			}
			if fi.roll(fi.cfg.DuplicateRate) {
				fi.injected("duplicate")
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
