package repl

// Journal-identity regression tests. LSNs are per-journal counters, so a
// resume position is only meaningful against the journal it was applied
// from. These tests pin the two protections: the leader refuses to resume a
// follower carrying another journal's state (found live: an orphaned
// follower reconnected to a freshly-bootstrapped leader on the same address
// and was "resumed" at a numerically-plausible LSN), and refuses to resume
// a position ahead of its own durable frontier.

import (
	"bufio"
	"bytes"
	"net"
	"testing"
	"time"

	"scaddar/internal/store"
)

func TestHandshakeRoundTrip(t *testing.T) {
	id := journalID{0: 0xab, 15: 0xcd}
	fromLSN, gotID, err := readHandshake(bytes.NewReader(encodeHandshake(42, id)))
	if err != nil {
		t.Fatal(err)
	}
	if fromLSN != 42 || gotID != id {
		t.Fatalf("round trip: got fromLSN=%d id=%x, want 42/%x", fromLSN, gotID, id)
	}
}

// TestJournalSwitchForcesBootstrap: a follower that applied journal A and
// then reconnects to a leader shipping journal B (same address, overlapping
// LSN range) must be re-bootstrapped from B's checkpoint, never resumed —
// and must converge to B's state exactly.
func TestJournalSwitchForcesBootstrap(t *testing.T) {
	_, stA, ldrA := newLeader(t, t.TempDir(), store.Config{}, 3)
	addr := ldrA.Addr().String()

	f := startTestFollower(t, addr, nil)
	waitApplied(t, f, stA.LSN(), 2*time.Second)
	if st := f.Status(); st.JournalID != stA.JournalID() {
		t.Fatalf("follower applied journal %q, leader ships %q", st.JournalID, stA.JournalID())
	}

	// Kill leader A and put a leader for a *different* journal on the same
	// address, with a durable frontier past the follower's applied LSN so
	// only the identity check can catch the switch.
	ldrA.Close()
	dirB := t.TempDir()
	srvB := newTestServer(t, testConfig(), 4)
	stB, err := store.Open(store.Config{Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()
	if err := stB.Bootstrap(srvB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := srvB.AddObject(testObject(100+i, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := stB.Sync(); err != nil {
		t.Fatal(err)
	}
	if stB.LSN() <= stA.LSN() {
		t.Fatalf("journal B frontier %d not past A's %d: test would not isolate the identity check",
			stB.LSN(), stA.LSN())
	}
	ldrB, err := NewLeader(LeaderConfig{Store: stB, Heartbeat: 50 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	ldrB.Serve(ln)
	defer ldrB.Close()

	waitApplied(t, f, stB.LSN(), 2*time.Second)
	st := f.Status()
	if st.JournalID != stB.JournalID() {
		t.Fatalf("follower still reports journal %q, want B's %q", st.JournalID, stB.JournalID())
	}
	if st.Snapshots != 2 {
		t.Fatalf("follower applied %d snapshots, want 2 (one per journal)", st.Snapshots)
	}
	f.Close()
	assertConverged(t, srvB, f.Server())
}

// TestResumeGate probes the leader's handshake decision at the wire: a
// matching identity at the frontier resumes, a foreign identity or a
// position past the durable frontier gets a snapshot.
func TestResumeGate(t *testing.T) {
	_, st, ldr := newLeader(t, t.TempDir(), store.Config{}, 2)
	myID, err := parseJournalID(st.JournalID())
	if err != nil {
		t.Fatal(err)
	}
	foreign := myID
	foreign[0] ^= 0xff
	durable, _ := st.Durable()

	cases := []struct {
		name      string
		fromLSN   uint64
		id        journalID
		wantFrame byte
	}{
		{"matching identity at frontier resumes", durable + 1, myID, frameHelloResume},
		{"foreign identity forces snapshot", durable + 1, foreign, frameHelloSnapshot},
		{"position past frontier forces snapshot", durable + 10, myID, frameHelloSnapshot},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.DialTimeout("tcp", ldr.Addr().String(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(encodeHandshake(tc.fromLSN, tc.id)); err != nil {
				t.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			payload, err := readFrame(bufio.NewReader(conn))
			if err != nil {
				t.Fatal(err)
			}
			if payload[0] != tc.wantFrame {
				t.Fatalf("leader answered frame type %d, want %d", payload[0], tc.wantFrame)
			}
		})
	}
}
