package repl

// Follower bootstrap across the store's checkpoint-retention states:
//
//   1. a fresh store — only the bootstrap checkpoint, events all in the
//      journal tail
//   2. the newest checkpoint corrupted on disk — the store's retain-2
//      policy falls back to its predecessor, and the follower bootstraps
//      from the older checkpoint with a longer tail replay
//   3. a healthy checkpoint plus a partial tail past it
//
// Each case asserts applied-LSN continuity: the follower lands exactly on
// the leader's durable frontier having entered at the checkpoint's LSN,
// and its state is byte-identical (the stream's gap check makes any
// skipped or repeated LSN a connection error, so arriving at the frontier
// proves the walk was contiguous).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scaddar/internal/store"
)

// appendObjects journals n object adds through the leader's sink.
func appendObjects(t *testing.T, cl *chaosLeader, startID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := cl.srv.AddObject(testObject(startID+i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.st.Sync(); err != nil {
		t.Fatal(err)
	}
}

// bootstrapAndCheck starts a fresh follower against the leader, waits for
// it to reach the durable frontier, and asserts continuity + convergence.
// Returns the bootstrap LSN the follower entered at.
func bootstrapAndCheck(t *testing.T, cl *chaosLeader, wantCkptLSN uint64) {
	t.Helper()
	durable, _ := cl.st.Durable()
	f := startTestFollower(t, cl.ldr.Addr().String(), nil)
	waitApplied(t, f, durable, 10*time.Second)

	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("follower applied %d snapshots, want exactly 1", st.Snapshots)
	}
	ckLSN, _, _, err := cl.st.CheckpointData()
	if err != nil {
		t.Fatal(err)
	}
	if ckLSN != wantCkptLSN {
		t.Fatalf("leader serves checkpoint at LSN %d, want %d", ckLSN, wantCkptLSN)
	}
	if st.AppliedLSN != durable {
		t.Fatalf("follower applied LSN %d, leader durable %d", st.AppliedLSN, durable)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	assertConverged(t, cl.srv, f.Server())
}

// newBootstrapLeader opens a small-segment store, bootstraps a server into
// it, and serves replication on a fresh port.
func newBootstrapLeader(t *testing.T, dir string) *chaosLeader {
	t.Helper()
	srv, st, ldr := newLeader(t, dir, store.Config{SegmentBytes: 1 << 10}, 0)
	return &chaosLeader{t: t, dir: dir, addr: ldr.Addr().String(), srv: srv, st: st, ldr: ldr}
}

// TestBootstrapFreshStore: state 1 — bootstrap checkpoint only, the whole
// history rides the tail stream.
func TestBootstrapFreshStore(t *testing.T) {
	cl := newBootstrapLeader(t, t.TempDir())
	appendObjects(t, cl, 0, 12)
	bootstrapAndCheck(t, cl, 0) // bootstrap checkpoint covers LSN 0
}

// TestBootstrapRetainFallback: state 2 — the newest checkpoint file is
// corrupt; reopening the store falls back to the retained predecessor and
// followers bootstrap from it with the longer replay.
func TestBootstrapRetainFallback(t *testing.T) {
	dir := t.TempDir()
	cl := newBootstrapLeader(t, dir)
	appendObjects(t, cl, 0, 10)
	ck1, err := cl.st.Checkpoint(cl.srv)
	if err != nil {
		t.Fatal(err)
	}
	appendObjects(t, cl, 10, 10)
	ck2, err := cl.st.Checkpoint(cl.srv)
	if err != nil {
		t.Fatal(err)
	}
	if ck2 <= ck1 {
		t.Fatalf("checkpoints did not advance: %d then %d", ck1, ck2)
	}
	appendObjects(t, cl, 20, 5)

	// Crash the leader, corrupt the newest checkpoint on disk, restart.
	cl.kill()
	corruptCheckpoint(t, dir, ck2)
	cl.restart()
	t.Cleanup(func() { cl.ldr.Close(); cl.st.Close() })

	bootstrapAndCheck(t, cl, ck1)
}

// TestBootstrapPartialTail: state 3 — healthy checkpoint plus events past
// it; the follower enters at the checkpoint and streams the partial tail.
func TestBootstrapPartialTail(t *testing.T) {
	cl := newBootstrapLeader(t, t.TempDir())
	appendObjects(t, cl, 0, 8)
	ck, err := cl.st.Checkpoint(cl.srv)
	if err != nil {
		t.Fatal(err)
	}
	appendObjects(t, cl, 8, 7)
	durable, _ := cl.st.Durable()
	if durable <= ck {
		t.Fatalf("no tail past the checkpoint (durable %d, ckpt %d)", durable, ck)
	}
	bootstrapAndCheck(t, cl, ck)
}

// corruptCheckpoint flips a byte in the payload of the checkpoint file
// covering lsn.
func corruptCheckpoint(t *testing.T, dir string, lsn uint64) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "ckpt-") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		gotLSN, _, _, _, err := store.DecodeCheckpointData(data)
		if err != nil || gotLSN != lsn {
			continue
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("no checkpoint covering LSN %d in %s", lsn, dir)
}
