package repl

// The chaos harness: followers tail a leader through a seeded hostile
// network (drops, stalls, mid-record truncation, duplicated bytes) while
// the leader runs scaling operations, checkpoints prune the journal under
// the stream, and — halfway through — the leader process "dies" and
// restarts from disk. The run asserts:
//
//   - every follower converges byte-identical to the leader
//     (metadata encoding, integrity, full-locator agreement)
//   - every successful follower read matches an oracle of the leader's
//     state at the read's claimed applied LSN — which also proves no read
//     ever straddled an unapplied scaling epoch
//   - the fault schedule actually fired (a clean run proves nothing)
//
// Staleness bounding is enforced inside Locate (over-budget reads fail
// with cm.ErrStaleRead) and pinned deterministically by
// TestStalenessBudget; here over-budget reads simply never enter the
// oracle check.

import (
	"net"
	"sync"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/store"
)

// probeSet is the fixed block set followers read throughout the run.
var probeSet = [][2]int{
	{0, 0}, {0, 2}, {1, 0}, {1, 3}, {2, 1}, {2, 2},
	{3, 0}, {3, 3}, {4, 1}, {5, 0}, {5, 3}, {6, 2},
}

// oracle maps journal LSN -> expected disk per probe (-1: probe errored,
// e.g. object unknown or block degraded at that LSN).
type oracle map[uint64][]int

// capture records the leader's probe answers at its current LSN.
func (o oracle) capture(t *testing.T, srv *cm.Server, st *store.Store) {
	t.Helper()
	sn, err := srv.BuildSnapshot(testFactory)
	if err != nil {
		t.Fatal(err)
	}
	locs := make([]int, len(probeSet))
	for i, p := range probeSet {
		d, err := sn.Locate(p[0], p[1])
		if err != nil {
			d = -1
		}
		locs[i] = d
	}
	o[st.LSN()] = locs
	// Pace the workload: a CPU-bound burst would finish before followers
	// stream anything live, and an idle wire draws no faults.
	time.Sleep(time.Millisecond)
}

// probeRead is one successful follower read: which probe, the answer, and
// the applied LSN the follower claimed it was valid at.
type probeRead struct {
	probe int
	disk  int
	lsn   uint64
}

// prober hammers a follower with the probe set until stopped.
type prober struct {
	f     *Follower
	mu    sync.Mutex
	reads []probeRead
	stop  chan struct{}
	done  chan struct{}
}

func startProber(f *Follower) *prober {
	p := &prober{f: f, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.stop:
				return
			default:
			}
			for i, pr := range probeSet {
				disk, lsn, err := p.f.Locate(pr[0], pr[1])
				if err != nil {
					continue // fenced, stale, unknown, degraded: not served
				}
				p.mu.Lock()
				p.reads = append(p.reads, probeRead{probe: i, disk: disk, lsn: lsn})
				p.mu.Unlock()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return p
}

func (p *prober) halt() []probeRead {
	close(p.stop)
	<-p.done
	return p.reads
}

// chaosLeader bundles what the workload needs to drive and restart the
// leader.
type chaosLeader struct {
	t    *testing.T
	dir  string
	addr string
	srv  *cm.Server
	st   *store.Store
	ldr  *Leader
}

func (c *chaosLeader) mutate(f func() error) {
	c.t.Helper()
	if err := f(); err != nil {
		c.t.Fatal(err)
	}
}

// drainReorg ticks the migration to completion, capturing the oracle at
// every event the ticks journal.
func (c *chaosLeader) drainReorg(o oracle) {
	c.t.Helper()
	for i := 0; c.srv.Reorganizing(); i++ {
		if i > 10000 {
			c.t.Fatal("migration did not drain")
		}
		c.mutate(c.srv.Tick)
		o.capture(c.t, c.srv, c.st)
	}
	c.mutate(c.srv.FinishReorganization)
	o.capture(c.t, c.srv, c.st)
}

// kill closes the leader and its store — the crash. restart recovers from
// disk and rebinds the same address.
func (c *chaosLeader) kill() {
	c.t.Helper()
	c.ldr.Close()
	if err := c.st.Close(); err != nil {
		c.t.Fatal(err)
	}
}

func (c *chaosLeader) restart() {
	c.t.Helper()
	st, err := store.Open(store.Config{Dir: c.dir, SegmentBytes: 2 << 10})
	if err != nil {
		c.t.Fatal(err)
	}
	srv, _, err := st.Recover(testX0())
	if err != nil {
		c.t.Fatal(err)
	}
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		c.t.Fatal(err)
	}
	ldr, err := NewLeader(LeaderConfig{Store: st, Heartbeat: 50 * time.Millisecond})
	if err != nil {
		c.t.Fatal(err)
	}
	ldr.Serve(ln)
	c.st, c.srv, c.ldr = st, srv, ldr
}

// TestChaosConvergence is the headline harness. Deterministic fault
// schedule (fixed seeds), two followers behind the injector, scaling
// workload with checkpoint pruning, one leader kill/restart.
func TestChaosConvergence(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testConfig(), 4)
	st, err := store.Open(store.Config{Dir: dir, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Bootstrap(srv); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ldr, err := NewLeader(LeaderConfig{Store: st, Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ldr.Serve(ln)
	cl := &chaosLeader{t: t, dir: dir, addr: ln.Addr().String(), srv: srv, st: st, ldr: ldr}
	defer func() {
		cl.ldr.Close()
		cl.st.Close()
	}()

	fi, err := StartFaultInjector(FaultConfig{
		Target:        cl.addr,
		Seed:          42,
		DropRate:      0.02,
		StallRate:     0.004,
		StallFor:      700 * time.Millisecond,
		TruncateRate:  0.02,
		DuplicateRate: 0.08,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fi.Close()

	var followers []*Follower
	var probers []*prober
	for i := 0; i < 2; i++ {
		f := startTestFollower(t, fi.Addr(), func(c *FollowerConfig) {
			c.ReadTimeout = 500 * time.Millisecond
			c.MaxLagEvents = 256
			c.Seed = uint64(i + 1)
			c.Logf = nil // the fault schedule makes this too chatty
		})
		followers = append(followers, f)
		probers = append(probers, startProber(f))
	}

	// Let both followers bootstrap before the workload so the stream runs
	// live (and through the fault schedule) rather than as one bulk replay.
	durable0, _ := cl.st.Durable()
	for _, f := range followers {
		waitApplied(t, f, durable0, 10*time.Second)
	}

	o := oracle{}
	o.capture(t, cl.srv, cl.st)

	// Workload: six scaling cycles with object churn; checkpoint (and
	// prune) every other cycle; leader crash after cycle three.
	nextID := 0
	runCycle := func(cycle int) {
		for i := 0; i < 4; i++ {
			cl.mutate(func() error { return cl.srv.AddObject(testObject(nextID, 4)) })
			nextID++
			o.capture(t, cl.srv, cl.st)
		}
		switch cycle % 3 {
		case 0:
			cl.mutate(func() error { _, err := cl.srv.ScaleUp(2); return err })
		case 1:
			n := cl.srv.N()
			cl.mutate(func() error { _, err := cl.srv.ScaleDown(n - 1); return err })
		case 2:
			cl.mutate(func() error { _, err := cl.srv.FullRedistribute(); return err })
		}
		o.capture(t, cl.srv, cl.st)
		cl.drainReorg(o)
		if cycle%2 == 1 {
			cl.mutate(func() error { _, err := cl.st.Checkpoint(cl.srv); return err })
		}
	}

	for cycle := 0; cycle < 3; cycle++ {
		runCycle(cycle)
	}
	cl.kill()
	cl.restart()
	// Post-restart the oracle keeps accumulating against the recovered
	// server; followers reconnect through the injector on their own.
	for cycle := 3; cycle < 6; cycle++ {
		runCycle(cycle)
	}
	if err := cl.st.Sync(); err != nil {
		t.Fatal(err)
	}

	durable, epoch := cl.st.Durable()
	for i, f := range followers {
		v := waitApplied(t, f, durable, 30*time.Second)
		if v.Epoch != epoch {
			t.Fatalf("follower %d at epoch %d, leader durable epoch %d", i, v.Epoch, epoch)
		}
	}

	if fi.Faults() == 0 {
		t.Fatal("fault injector fired zero faults; the run proved nothing")
	}
	t.Logf("chaos run: %d faults, leader at LSN %d epoch %d", fi.Faults(), durable, epoch)

	for i, f := range followers {
		reads := probers[i].halt()
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		assertConverged(t, cl.srv, f.Server())

		checked, skipped := 0, 0
		for _, r := range reads {
			want, ok := o[r.lsn]
			if !ok {
				skipped++ // LSN between captures (multi-event mutation)
				continue
			}
			checked++
			if want[r.probe] != r.disk {
				t.Fatalf("follower %d read probe %v at LSN %d from disk %d; leader had it on %d",
					i, probeSet[r.probe], r.lsn, r.disk, want[r.probe])
			}
		}
		if checked == 0 {
			t.Fatalf("follower %d: no reads were checkable (%d skipped)", i, skipped)
		}
		t.Logf("follower %d: %d reads checked against the oracle (%d at uncaptured LSNs), %d reconnects, %d snapshots",
			i, checked, skipped, f.Status().Reconnects, f.Status().Snapshots)
	}
}
