package repl

// Follower side: one connection at a time to the leader, applied by a
// single goroutine that owns the replica's cm.Server. The goroutine
// publishes an immutable view — locator snapshot plus LSN/epoch markers —
// through one atomic pointer, so concurrent readers pay a single load and
// no lock, the same discipline the gateway's read path uses.
//
// The client is built for a hostile network: every dial and every frame
// read carries a deadline, reconnects back off exponentially with seeded
// jitter (capped), and the resume handshake carries the applied LSN so a
// reconnect re-streams nothing already applied — records at or below the
// applied LSN are skipped, which also makes duplicated segments from a
// faulty path harmless.

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/obs"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/scaddar"
	"scaddar/internal/store"
)

// FollowerConfig configures a journal-tailing replica.
type FollowerConfig struct {
	// Addr is the leader's replication listener address. Required.
	Addr string
	// X0 rebuilds the placement X0 generator; it must match the leader's
	// generator family, exactly as in crash recovery. Required.
	X0 placement.X0Func
	// Factory builds per-object generators for locator snapshots. Required.
	Factory scaddar.SourceFactory
	// DialTimeout bounds each connection attempt; 0 means 2s.
	DialTimeout time.Duration
	// ReadTimeout bounds each frame read; 0 means 2s. Size it to at least
	// three leader heartbeat intervals or healthy idle connections churn.
	ReadTimeout time.Duration
	// BackoffBase is the first reconnect delay; 0 means 50ms. Each failed
	// attempt doubles it (with jitter) up to BackoffCap, 0 meaning 2s.
	BackoffBase time.Duration
	// BackoffCap caps the reconnect delay.
	BackoffCap time.Duration
	// MaxLagEvents is the staleness budget: reads fail with cm.ErrStaleRead
	// while the replica trails the leader's durable frontier by more than
	// this many events. 0 disables the budget (reads fence only on epochs).
	MaxLagEvents uint64
	// Seed drives the reconnect jitter; 0 picks a fixed default. Chaos
	// tests pin it for reproducible schedules.
	Seed uint64
	// Registry, when non-nil, receives the follower's metrics.
	Registry *obs.Registry
	// Logf, when non-nil, receives connection-lifecycle log lines.
	Logf func(format string, args ...any)
}

// View is the follower's published read state: an immutable locator
// snapshot plus the positions that decide fencing and staleness. Readers
// load it once and work off the copy.
type View struct {
	// Snap is the locator snapshot at AppliedLSN.
	Snap *cm.LocatorSnapshot
	// AppliedLSN is the last journal record reflected in Snap.
	AppliedLSN uint64
	// Epoch is the replica's applied replication epoch.
	Epoch uint64
	// LeaderLSN is the leader's durable frontier as last advertised.
	LeaderLSN uint64
	// LeaderEpoch is the leader's epoch at LeaderLSN.
	LeaderEpoch uint64
}

// Lag returns how many durable leader events the view has not applied.
func (v *View) Lag() uint64 {
	if v.LeaderLSN <= v.AppliedLSN {
		return 0
	}
	return v.LeaderLSN - v.AppliedLSN
}

// FollowerStatus reports the replica's position for /v1/replication.
type FollowerStatus struct {
	// Leader is the configured leader address.
	Leader string `json:"leader"`
	// Connected reports whether a session is live right now.
	Connected bool `json:"connected"`
	// Bootstrapped reports whether the replica has state to serve.
	Bootstrapped bool `json:"bootstrapped"`
	// JournalID identifies the journal the replica's state was applied
	// from, empty before the first bootstrap. A reconnect only resumes when
	// it matches the leader's; otherwise the leader re-bootstraps us.
	JournalID string `json:"journalId"`
	// AppliedLSN is the last applied journal record.
	AppliedLSN uint64 `json:"appliedLsn"`
	// Epoch is the applied replication epoch.
	Epoch uint64 `json:"epoch"`
	// LeaderLSN is the leader's last advertised durable frontier.
	LeaderLSN uint64 `json:"leaderLsn"`
	// LeaderEpoch is the leader's epoch at that frontier.
	LeaderEpoch uint64 `json:"leaderEpoch"`
	// LagEvents is LeaderLSN - AppliedLSN (0 when caught up).
	LagEvents uint64 `json:"lagEvents"`
	// Reconnects counts completed (failed or dropped) sessions.
	Reconnects uint64 `json:"reconnects"`
	// Snapshots counts full-state bootstraps applied.
	Snapshots uint64 `json:"snapshots"`
}

// followerMetrics holds the follower's registry cells.
type followerMetrics struct {
	applied     *obs.Gauge
	lag         *obs.Gauge
	records     *obs.Counter
	reconnects  *obs.Counter
	snapshots   *obs.Counter
	fencedReads *obs.Counter
	staleReads  *obs.Counter
}

func newFollowerMetrics(reg *obs.Registry) *followerMetrics {
	if reg == nil {
		return nil
	}
	return &followerMetrics{
		applied:     reg.NewGauge("repl_follower_applied_lsn", "Last journal record applied by the replica."),
		lag:         reg.NewGauge("repl_follower_lag_events", "Durable leader events not yet applied."),
		records:     reg.NewCounter("repl_follower_records_applied_total", "Journal records applied."),
		reconnects:  reg.NewCounter("repl_follower_reconnects_total", "Replication sessions that ended and were retried."),
		snapshots:   reg.NewCounter("repl_follower_snapshots_total", "Full checkpoint bootstraps applied."),
		fencedReads: reg.NewCounter("repl_follower_fenced_reads_total", "Reads refused across an unapplied scaling epoch."),
		staleReads:  reg.NewCounter("repl_follower_stale_reads_total", "Reads refused over the staleness budget."),
	}
}

// Follower tails a leader's journal and serves epoch-fenced block lookups
// from its own locator snapshot. Create with StartFollower; stop with
// Close.
type Follower struct {
	cfg  FollowerConfig
	view atomic.Pointer[View]
	done chan struct{}
	wg   sync.WaitGroup

	mu         sync.Mutex
	srv        *cm.Server // owned by the run goroutine while running
	journal    journalID  // identity of the journal srv's state came from
	connected  bool
	reconnects uint64
	snapshots  uint64

	metrics *followerMetrics
}

// StartFollower validates the config and starts the tailing loop. The
// follower serves fenced errors until its first bootstrap completes.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("repl: FollowerConfig.Addr is required")
	}
	if cfg.X0 == nil || cfg.Factory == nil {
		return nil, fmt.Errorf("repl: FollowerConfig.X0 and Factory are required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5cadda4
	}
	f := &Follower{
		cfg:     cfg,
		done:    make(chan struct{}),
		metrics: newFollowerMetrics(cfg.Registry),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// Close stops the tailing loop and waits for it to exit. The replica's
// last published view keeps serving reads (a dead follower is stale, not
// gone), still subject to fencing and the staleness budget.
func (f *Follower) Close() error {
	f.mu.Lock()
	select {
	case <-f.done:
		f.mu.Unlock()
		return nil
	default:
	}
	close(f.done)
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}

// Server exposes the replica's underlying server for inspection. The run
// goroutine mutates it while the follower is live — call only after Close,
// or from tests that know the stream is quiescent.
func (f *Follower) Server() *cm.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.srv
}

// View returns the current published read state, nil before the first
// bootstrap.
func (f *Follower) View() *View { return f.view.Load() }

// Status reports the replica's position.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{Leader: f.cfg.Addr}
	if v := f.view.Load(); v != nil {
		st.Bootstrapped = true
		st.AppliedLSN = v.AppliedLSN
		st.Epoch = v.Epoch
		st.LeaderLSN = v.LeaderLSN
		st.LeaderEpoch = v.LeaderEpoch
		st.LagEvents = v.Lag()
	}
	f.mu.Lock()
	if f.journal != (journalID{}) {
		st.JournalID = hex.EncodeToString(f.journal[:])
	}
	st.Connected = f.connected
	st.Reconnects = f.reconnects
	st.Snapshots = f.snapshots
	f.mu.Unlock()
	return st
}

// Locate answers a block lookup from the replica, returning the logical
// disk and the applied LSN the answer is valid at. Fails with
// cm.ErrEpochFenced while a known scaling operation is unapplied, and with
// cm.ErrStaleRead before bootstrap or over the staleness budget.
func (f *Follower) Locate(object, index int) (disk int, lsn uint64, err error) {
	v := f.view.Load()
	if v == nil {
		if f.metrics != nil {
			f.metrics.staleReads.Inc()
		}
		return 0, 0, fmt.Errorf("%w: replica not bootstrapped", cm.ErrStaleRead)
	}
	if v.LeaderEpoch > v.Epoch {
		if f.metrics != nil {
			f.metrics.fencedReads.Inc()
		}
		return 0, 0, fmt.Errorf("%w: applied epoch %d, leader epoch %d",
			cm.ErrEpochFenced, v.Epoch, v.LeaderEpoch)
	}
	if f.cfg.MaxLagEvents > 0 && v.Lag() > f.cfg.MaxLagEvents {
		if f.metrics != nil {
			f.metrics.staleReads.Inc()
		}
		return 0, 0, fmt.Errorf("%w: %d events behind (budget %d)",
			cm.ErrStaleRead, v.Lag(), f.cfg.MaxLagEvents)
	}
	disk, err = v.Snap.Locate(object, index)
	return disk, v.AppliedLSN, err
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// run is the follower's lifetime: connect, stream, back off, repeat.
func (f *Follower) run() {
	defer f.wg.Done()
	rng := prng.NewSplitMix64(f.cfg.Seed)
	delay := f.cfg.BackoffBase
	for {
		select {
		case <-f.done:
			return
		default:
		}
		progressed, err := f.session()
		if err != nil {
			f.logf("repl follower: session: %v", err)
		}
		f.mu.Lock()
		f.reconnects++
		f.mu.Unlock()
		if f.metrics != nil {
			f.metrics.reconnects.Inc()
		}
		if progressed {
			delay = f.cfg.BackoffBase
		}
		// Full jitter: sleep uniformly in [base/2, delay] so a fleet of
		// followers does not reconnect in lockstep.
		sleep := delay/2 + time.Duration(rng.Next()%uint64(delay/2+1))
		select {
		case <-f.done:
			return
		case <-time.After(sleep):
		}
		if delay *= 2; delay > f.cfg.BackoffCap {
			delay = f.cfg.BackoffCap
		}
	}
}

// session runs one connection to completion. It reports whether the
// session made progress (hello accepted or records applied) — progress
// resets the reconnect backoff.
func (f *Follower) session() (progressed bool, err error) {
	var fromLSN uint64
	if v := f.view.Load(); v != nil {
		fromLSN = v.AppliedLSN + 1
	}
	f.mu.Lock()
	journal := f.journal
	f.mu.Unlock()
	conn, err := net.DialTimeout("tcp", f.cfg.Addr, f.cfg.DialTimeout)
	if err != nil {
		return false, err
	}
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(f.cfg.DialTimeout))
	if _, err := conn.Write(encodeHandshake(fromLSN, journal)); err != nil {
		return false, err
	}
	f.mu.Lock()
	f.connected = true
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.connected = false
		f.mu.Unlock()
	}()

	r := bufio.NewReader(conn)
	for {
		select {
		case <-f.done:
			return progressed, nil
		default:
		}
		conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout))
		payload, err := readFrame(r)
		if err != nil {
			return progressed, err
		}
		switch payload[0] {
		case frameHelloSnapshot:
			h, err := decodeHelloSnapshot(payload)
			if err != nil {
				return progressed, err
			}
			if err := f.applySnapshot(h); err != nil {
				return progressed, err
			}
		case frameHelloResume:
			h, err := decodeHelloResume(payload)
			if err != nil {
				return progressed, err
			}
			if err := f.applyResume(h, fromLSN); err != nil {
				return progressed, err
			}
		case frameRecord:
			lsn, event, err := decodeRecord(payload)
			if err != nil {
				return progressed, err
			}
			if err := f.applyRecord(lsn, event); err != nil {
				return progressed, err
			}
		case frameHeartbeat:
			h, err := decodeHeartbeat(payload)
			if err != nil {
				return progressed, err
			}
			f.applyHeartbeat(h)
		default:
			return progressed, fmt.Errorf("%w: unknown frame type %d", errBadFrame, payload[0])
		}
		progressed = true
	}
}

// applySnapshot replaces the replica's entire state with a shipped
// checkpoint — the bootstrap path, and the recovery path when checkpoint
// pruning overtook this replica.
func (f *Follower) applySnapshot(h helloSnapshot) error {
	lsn, epoch, cfg, md, err := store.DecodeCheckpointData(h.ckptData)
	if err != nil {
		return err
	}
	if lsn != h.ckptLSN || epoch != h.ckptEpoch {
		return fmt.Errorf("%w: hello advertises LSN %d epoch %d, checkpoint holds %d/%d",
			errBadFrame, h.ckptLSN, h.ckptEpoch, lsn, epoch)
	}
	srv, err := cm.RestoreServer(cfg, md, f.cfg.X0)
	if err != nil {
		return err
	}
	if err := srv.VerifyIntegrity(); err != nil {
		return fmt.Errorf("repl: shipped checkpoint failed verification: %w", err)
	}
	f.mu.Lock()
	f.srv = srv
	f.journal = h.journal
	f.snapshots++
	f.mu.Unlock()
	if f.metrics != nil {
		f.metrics.snapshots.Inc()
	}
	f.logf("repl follower: bootstrapped at LSN %d (epoch %d)", lsn, epoch)
	return f.publish(&View{
		AppliedLSN:  lsn,
		Epoch:       epoch,
		LeaderLSN:   h.durableLSN,
		LeaderEpoch: h.leaderEpoch,
	}, true)
}

// applyResume validates the leader's resume offer against our position —
// and against the journal our state was applied from. A leader offering to
// resume a different journal's LSNs is a protocol violation (the leader
// itself should have forced a bootstrap); dropping the connection is safe,
// because the reconnect re-advertises our identity and gets a snapshot.
func (f *Follower) applyResume(h helloResume, fromLSN uint64) error {
	v := f.view.Load()
	if v == nil || h.resumeLSN != fromLSN {
		return fmt.Errorf("%w: resume at LSN %d, asked for %d", errBadFrame, h.resumeLSN, fromLSN)
	}
	f.mu.Lock()
	journal := f.journal
	f.mu.Unlock()
	if h.journal != journal {
		return fmt.Errorf("%w: resume offers journal %x, state applied from %x",
			errBadFrame, h.journal, journal)
	}
	return f.publish(&View{
		Snap:        v.Snap,
		AppliedLSN:  v.AppliedLSN,
		Epoch:       v.Epoch,
		LeaderLSN:   maxU64(v.LeaderLSN, h.durableLSN),
		LeaderEpoch: maxU64(v.LeaderEpoch, h.leaderEpoch),
	}, false)
}

// applyRecord applies one streamed journal record through the same replay
// dispatch crash recovery uses. Duplicates (at or below the applied LSN)
// are skipped; gaps are protocol errors.
func (f *Follower) applyRecord(lsn uint64, event []byte) error {
	v := f.view.Load()
	if v == nil || v.Snap == nil {
		return fmt.Errorf("repl: record at LSN %d before any snapshot", lsn)
	}
	if lsn <= v.AppliedLSN {
		return nil // duplicate delivery (reconnect overlap, hostile path)
	}
	if lsn != v.AppliedLSN+1 {
		return fmt.Errorf("repl: record gap: got LSN %d after %d", lsn, v.AppliedLSN)
	}
	ev, err := store.DecodeEvent(event)
	if err != nil {
		return err
	}
	f.mu.Lock()
	srv := f.srv
	f.mu.Unlock()
	if err := store.ApplyEvent(srv, ev); err != nil {
		return fmt.Errorf("repl: applying %s at LSN %d: %w", ev.Kind, lsn, err)
	}
	epoch := v.Epoch
	if cm.IsEpochEvent(ev.Kind) {
		epoch++
	}
	if f.metrics != nil {
		f.metrics.records.Inc()
	}
	return f.publish(&View{
		AppliedLSN:  lsn,
		Epoch:       epoch,
		LeaderLSN:   maxU64(v.LeaderLSN, lsn),
		LeaderEpoch: maxU64(v.LeaderEpoch, epoch),
	}, true)
}

// applyHeartbeat refreshes the leader's frontier markers; the snapshot is
// untouched, so this is just a pointer swap.
func (f *Follower) applyHeartbeat(h heartbeat) {
	v := f.view.Load()
	if v == nil {
		return
	}
	f.publish(&View{
		Snap:        v.Snap,
		AppliedLSN:  v.AppliedLSN,
		Epoch:       v.Epoch,
		LeaderLSN:   maxU64(v.LeaderLSN, h.durableLSN),
		LeaderEpoch: maxU64(v.LeaderEpoch, h.durableEpoch),
	}, false)
}

// publish installs a new view, rebuilding the locator snapshot from the
// replica's server when the applied state changed.
func (f *Follower) publish(v *View, rebuild bool) error {
	if rebuild {
		f.mu.Lock()
		srv := f.srv
		f.mu.Unlock()
		sn, err := srv.BuildSnapshot(f.cfg.Factory)
		if err != nil {
			return err
		}
		v.Snap = sn
	}
	f.view.Store(v)
	if f.metrics != nil {
		f.metrics.applied.Set(float64(v.AppliedLSN))
		f.metrics.lag.Set(float64(v.Lag()))
	}
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
