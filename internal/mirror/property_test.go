package mirror

import (
	"testing"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// These property tests drive random scaling walks and assert the scheme's
// core invariant at every step: a block's two copies never co-locate, so
// one disk failure can never take both. The walk is seeded, so a failure
// reproduces exactly.

func newWalkStrategy(t *testing.T, n0 int) *placement.Scaddar {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

func walkUniverse(objects, blocksPer int) []placement.BlockRef {
	var out []placement.BlockRef
	for o := 1; o <= objects; o++ {
		for i := 0; i < blocksPer; i++ {
			out = append(out, placement.BlockRef{Seed: uint64(o), Index: uint64(i)})
		}
	}
	return out
}

// randomScaleStep applies one random add or remove to the strategy, keeping
// at least 2 disks (mirroring's floor). It returns a description for
// failure messages.
func randomScaleStep(t *testing.T, strat *placement.Scaddar, rng *prng.SplitMix64) string {
	t.Helper()
	n := strat.N()
	if n > 2 && rng.Next()%2 == 0 {
		victim := int(rng.Next() % uint64(n))
		if err := strat.RemoveDisks(victim); err != nil {
			t.Fatal(err)
		}
		return "remove"
	}
	count := 1 + int(rng.Next()%3)
	if err := strat.AddDisks(count); err != nil {
		t.Fatal(err)
	}
	return "add"
}

func TestPropertyCopiesNeverCoLocate(t *testing.T) {
	for _, offset := range []struct {
		name string
		fn   OffsetFunc
	}{{"half", HalfOffset}, {"next", NextOffset}} {
		t.Run(offset.name, func(t *testing.T) {
			strat := newWalkStrategy(t, 4)
			m, err := New(strat, offset.fn)
			if err != nil {
				t.Fatal(err)
			}
			blocks := walkUniverse(6, 120)
			rng := prng.NewSplitMix64(31)
			for step := 0; step < 25; step++ {
				op := randomScaleStep(t, strat, rng)
				for _, b := range blocks {
					p, mir, err := m.Locate(b)
					if err != nil {
						t.Fatalf("step %d (%s, N=%d): %v", step, op, strat.N(), err)
					}
					if p == mir {
						t.Fatalf("step %d (%s, N=%d): block %+v co-locates both copies on disk %d",
							step, op, strat.N(), b, p)
					}
					if p < 0 || p >= strat.N() || mir < 0 || mir >= strat.N() {
						t.Fatalf("step %d: copies (%d,%d) outside [0,%d)", step, p, mir, strat.N())
					}
				}
			}
		})
	}
}

func TestPropertySingleFailureAlwaysReadable(t *testing.T) {
	strat := newWalkStrategy(t, 5)
	m, err := New(strat, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks := walkUniverse(4, 100)
	rng := prng.NewSplitMix64(77)
	for step := 0; step < 15; step++ {
		randomScaleStep(t, strat, rng)
		for f := 0; f < strat.N(); f++ {
			rep, err := m.Survive(blocks, map[int]bool{f: true})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if rep.Lost != 0 {
				t.Fatalf("step %d (N=%d): failing disk %d loses %d blocks under mirroring",
					step, strat.N(), f, rep.Lost)
			}
			if rep.Readable != len(blocks) {
				t.Fatalf("step %d: %d of %d blocks readable", step, rep.Readable, len(blocks))
			}
		}
	}
}
