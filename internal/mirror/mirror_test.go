package mirror

import (
	"testing"
	"testing/quick"

	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func newScaddar(t *testing.T, n0 int) *placement.Scaddar {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	s, err := placement.NewScaddar(n0, x0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func blocks(nobj, per int) []placement.BlockRef {
	out := make([]placement.BlockRef, 0, nobj*per)
	for o := 0; o < nobj; o++ {
		for i := 0; i < per; i++ {
			out = append(out, placement.BlockRef{Seed: uint64(o + 1), Index: uint64(i)})
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil strategy accepted")
	}
	m, err := New(newScaddar(t, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 4 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Strategy().Name() != "scaddar" {
		t.Fatal("strategy accessor broken")
	}
}

func TestHalfOffset(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 6: 3, 10: 5}
	for n, want := range cases {
		if got := HalfOffset(n); got != want {
			t.Errorf("HalfOffset(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCopiesNeverColocate(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 10, 16} {
		m, err := New(newScaddar(t, n), HalfOffset)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks(5, 100) {
			p, mir, err := m.Locate(b)
			if err != nil {
				t.Fatal(err)
			}
			if p == mir {
				t.Fatalf("n=%d: copies co-located on disk %d", n, p)
			}
			if p < 0 || p >= n || mir < 0 || mir >= n {
				t.Fatalf("n=%d: copy out of range %d/%d", n, p, mir)
			}
		}
	}
}

func TestSingleDiskMirroringRejected(t *testing.T) {
	m, err := New(newScaddar(t, 1), HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mirror(placement.BlockRef{Seed: 1}); err == nil {
		t.Fatal("mirroring on one disk accepted")
	}
}

func TestZeroOffsetRejected(t *testing.T) {
	m, err := New(newScaddar(t, 4), func(int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mirror(placement.BlockRef{Seed: 1}); err == nil {
		t.Fatal("zero offset accepted")
	}
	// Offset equal to N reduces to zero and must also be rejected.
	m2, _ := New(newScaddar(t, 4), func(n int) int { return n })
	if _, err := m2.Mirror(placement.BlockRef{Seed: 1}); err == nil {
		t.Fatal("offset == N accepted")
	}
}

func TestNegativeOffsetNormalized(t *testing.T) {
	m, err := New(newScaddar(t, 5), func(int) int { return -2 })
	if err != nil {
		t.Fatal(err)
	}
	b := placement.BlockRef{Seed: 3, Index: 7}
	p, mir, err := m.Locate(b)
	if err != nil {
		t.Fatal(err)
	}
	if mir != (p+3)%5 {
		t.Fatalf("mirror = %d, want %d", mir, (p+3)%5)
	}
}

func TestSingleFailureAlwaysSurvivable(t *testing.T) {
	m, err := New(newScaddar(t, 6), HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	bs := blocks(10, 200)
	for failedDisk := 0; failedDisk < 6; failedDisk++ {
		rep, err := m.Survive(bs, map[int]bool{failedDisk: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != 0 {
			t.Fatalf("disk %d failure lost %d blocks", failedDisk, rep.Lost)
		}
		if rep.Readable != rep.Blocks {
			t.Fatalf("disk %d failure: %d/%d readable", failedDisk, rep.Readable, rep.Blocks)
		}
		// Roughly 1/6 of blocks should be in degraded-read mode.
		frac := float64(rep.DegradedReads) / float64(rep.Blocks)
		if frac < 0.1 || frac > 0.25 {
			t.Fatalf("disk %d failure: degraded fraction %.3f, want ~1/6", failedDisk, frac)
		}
	}
}

func TestOffsetPairFailureLosesBlocks(t *testing.T) {
	m, err := New(newScaddar(t, 6), HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	bs := blocks(10, 200)
	// Disks 0 and 3 are offset partners (offset = 3): blocks with primary
	// on 0 mirror to 3 and vice versa, so the pair failure loses blocks.
	rep, err := m.Survive(bs, map[int]bool{0: true, 3: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost == 0 {
		t.Fatal("offset-pair double failure lost nothing; mirroring layout is wrong")
	}
	// Non-partner double failure (0 and 1) loses nothing.
	rep, err = m.Survive(bs, map[int]bool{0: true, 1: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != 0 {
		t.Fatalf("non-partner double failure lost %d blocks", rep.Lost)
	}
}

func TestAvailable(t *testing.T) {
	m, err := New(newScaddar(t, 4), HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	b := placement.BlockRef{Seed: 2, Index: 9}
	p, mir, _ := m.Locate(b)
	ok, err := m.Available(b, map[int]bool{p: true})
	if err != nil || !ok {
		t.Fatalf("available with primary failed = %v, %v", ok, err)
	}
	ok, err = m.Available(b, map[int]bool{p: true, mir: true})
	if err != nil || ok {
		t.Fatalf("available with both failed = %v, %v", ok, err)
	}
}

func TestReadFrom(t *testing.T) {
	m, err := New(newScaddar(t, 4), HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	b := placement.BlockRef{Seed: 5, Index: 1}
	p, mir, _ := m.Locate(b)
	depths := make([]int, 4)
	depths[p] = 10
	got, err := m.ReadFrom(b, depths)
	if err != nil || got != mir {
		t.Fatalf("busy primary: read from %d, want mirror %d", got, mir)
	}
	depths[p] = 0
	got, err = m.ReadFrom(b, depths)
	if err != nil || got != p {
		t.Fatalf("tie: read from %d, want primary %d", got, p)
	}
	if _, err := m.ReadFrom(b, []int{1}); err == nil {
		t.Fatal("short queue vector accepted")
	}
}

func TestSurvivalAfterScaling(t *testing.T) {
	s := newScaddar(t, 4)
	m, err := New(s, HalfOffset)
	if err != nil {
		t.Fatal(err)
	}
	bs := blocks(8, 150)
	if err := s.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveDisks(1); err != nil {
		t.Fatal(err)
	}
	// Mirrors recompute against the new N automatically.
	for d := 0; d < m.N(); d++ {
		rep, err := m.Survive(bs, map[int]bool{d: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost != 0 {
			t.Fatalf("after scaling, disk %d failure lost %d blocks", d, rep.Lost)
		}
	}
}

func TestStorageOverhead(t *testing.T) {
	m, _ := New(newScaddar(t, 4), nil)
	if m.StorageOverhead() != 2 {
		t.Fatal("mirroring overhead must be 2x")
	}
}

// TestQuickMirrorDistinct property-tests that for any valid offset function
// the two copies are always distinct.
func TestQuickMirrorDistinct(t *testing.T) {
	s := newScaddar(t, 9)
	f := func(offRaw uint8, seed uint64, idx uint16) bool {
		off := int(offRaw%8) + 1 // 1..8, never 0 mod 9
		m, err := New(s, func(int) int { return off })
		if err != nil {
			return false
		}
		p, mir, err := m.Locate(placement.BlockRef{Seed: seed, Index: uint64(idx)})
		return err == nil && p != mir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
