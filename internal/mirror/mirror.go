// Package mirror implements the fault-tolerance extension sketched in the
// paper's Section 6: "data mirroring may be a simple solution with SCADDAR.
// Mirrored blocks could be placed at a fixed offset determined by a function
// f(N_j). For example, f(N_j) could return N_j/2 as an offset."
//
// A Mirrored placement wraps any placement.Strategy: the primary copy lives
// where the strategy says, the mirror copy at a fixed offset modulo the
// current disk count. Because the offset is a pure function of N_j, mirrors
// need no directory either — both copies are computable from the operation
// log — and the offset placement guarantees the two copies are always on
// different disks, so any single-disk failure leaves every block readable.
package mirror

import (
	"fmt"

	"scaddar/internal/placement"
)

// OffsetFunc returns the mirror offset for an array of n disks. The result
// is reduced modulo n; an effective offset of 0 (which would co-locate the
// copies) is rejected at lookup time.
type OffsetFunc func(n int) int

// HalfOffset is the paper's example f(N_j) = N_j/2, rounded up so it never
// degenerates to 0 for n >= 2.
func HalfOffset(n int) int {
	return (n + 1) / 2
}

// NextOffset places the mirror on the next disk — the classic chained
// declustering layout, usable as an alternative OffsetFunc.
func NextOffset(int) int { return 1 }

// Mirrored derives primary and mirror locations for blocks placed by an
// underlying strategy.
type Mirrored struct {
	strat  placement.Strategy
	offset OffsetFunc
}

// New wraps a strategy with offset mirroring. offset defaults to HalfOffset
// when nil.
func New(strat placement.Strategy, offset OffsetFunc) (*Mirrored, error) {
	if strat == nil {
		return nil, fmt.Errorf("mirror: nil strategy")
	}
	if offset == nil {
		offset = HalfOffset
	}
	return &Mirrored{strat: strat, offset: offset}, nil
}

// Strategy returns the underlying placement strategy.
func (m *Mirrored) Strategy() placement.Strategy { return m.strat }

// N returns the current disk count.
func (m *Mirrored) N() int { return m.strat.N() }

// effectiveOffset validates and reduces the configured offset for n disks.
func (m *Mirrored) effectiveOffset() (int, error) {
	n := m.strat.N()
	if n < 2 {
		return 0, fmt.Errorf("mirror: mirroring needs at least 2 disks, have %d", n)
	}
	off := m.offset(n) % n
	if off < 0 {
		off += n
	}
	if off == 0 {
		return 0, fmt.Errorf("mirror: offset function yields 0 for %d disks; copies would co-locate", n)
	}
	return off, nil
}

// Primary returns the block's primary disk.
func (m *Mirrored) Primary(b placement.BlockRef) int { return m.strat.Disk(b) }

// Mirror returns the block's mirror disk: (primary + f(N)) mod N.
func (m *Mirrored) Mirror(b placement.BlockRef) (int, error) {
	off, err := m.effectiveOffset()
	if err != nil {
		return 0, err
	}
	return (m.strat.Disk(b) + off) % m.strat.N(), nil
}

// Locate returns both copies of a block.
func (m *Mirrored) Locate(b placement.BlockRef) (primary, mirror int, err error) {
	mirror, err = m.Mirror(b)
	if err != nil {
		return 0, 0, err
	}
	return m.strat.Disk(b), mirror, nil
}

// ReadFrom picks the copy to serve a read given per-disk queue depths,
// choosing the shorter queue (ties go to the primary) — the load-smoothing
// benefit mirroring brings alongside fault tolerance.
func (m *Mirrored) ReadFrom(b placement.BlockRef, queueDepth []int) (int, error) {
	p, mir, err := m.Locate(b)
	if err != nil {
		return 0, err
	}
	if p >= len(queueDepth) || mir >= len(queueDepth) {
		return 0, fmt.Errorf("mirror: queue depths cover %d disks, need %d", len(queueDepth), m.N())
	}
	if queueDepth[mir] < queueDepth[p] {
		return mir, nil
	}
	return p, nil
}

// Available reports whether the block is readable when the given disks have
// failed.
func (m *Mirrored) Available(b placement.BlockRef, failed map[int]bool) (bool, error) {
	p, mir, err := m.Locate(b)
	if err != nil {
		return false, err
	}
	return !failed[p] || !failed[mir], nil
}

// SurvivalReport summarizes block availability under a failure set.
type SurvivalReport struct {
	// Blocks is the number of blocks examined.
	Blocks int
	// Readable is the number with at least one live copy.
	Readable int
	// DegradedReads is the number whose primary failed but whose mirror
	// survives (reads re-route).
	DegradedReads int
	// Lost is the number with both copies failed.
	Lost int
}

// Survive evaluates availability of a block universe under the given failed
// disk set.
func (m *Mirrored) Survive(blocks []placement.BlockRef, failed map[int]bool) (SurvivalReport, error) {
	var r SurvivalReport
	for _, b := range blocks {
		p, mir, err := m.Locate(b)
		if err != nil {
			return r, err
		}
		r.Blocks++
		switch {
		case !failed[p]:
			r.Readable++
		case !failed[mir]:
			r.Readable++
			r.DegradedReads++
		default:
			r.Lost++
		}
	}
	return r, nil
}

// StorageOverhead returns the space multiplier of this scheme (always 2 for
// mirroring; the method exists so reports can compare against parity
// schemes the paper leaves to future work).
func (m *Mirrored) StorageOverhead() float64 { return 2 }
