// Package hetero implements the heterogeneous-disk extension of the paper's
// Section 6: "By applying previous work of mapping homogeneous logical disks
// to heterogeneous physical disks [Zimmermann & Ghandeharizadeh 1997],
// SCADDAR may naturally evolve to allow block redistribution on
// heterogeneous physical disks."
//
// The idea: carve every physical disk into some number of identical logical
// disks sized to the weakest disk's bandwidth and capacity. SCADDAR (or any
// placement strategy) runs over the logical disks, blind to heterogeneity;
// this package supplies the logical→physical mapping and checks that the
// resulting physical load is proportional to each disk's share of logical
// disks.
package hetero

import (
	"fmt"

	"scaddar/internal/disk"
)

// Physical describes one heterogeneous physical disk.
type Physical struct {
	// ID is the disk's stable identity.
	ID int
	// Profile is the disk's performance/capacity profile.
	Profile disk.Profile
}

// Mapping assigns contiguous ranges of logical disk indices to physical
// disks, in proportion to each disk's resources.
type Mapping struct {
	physicals []Physical
	counts    []int // logical disks carved from each physical
	physOf    []int // logical index -> position in physicals
	firstOf   []int // position in physicals -> first logical index
}

// unitsFor returns how many logical disks a profile supports given the unit
// (weakest-disk) bandwidth and capacity: the binding constraint is the
// smaller of the bandwidth and capacity ratios.
func unitsFor(p disk.Profile, unitBW, unitCap int64) int {
	if unitBW <= 0 || unitCap <= 0 {
		return 0
	}
	byBW := p.TransferBytesPerSec / unitBW
	byCap := p.CapacityBytes / unitCap
	n := byBW
	if byCap < n {
		n = byCap
	}
	return int(n)
}

// NewMapping builds a logical→physical mapping over the given disks. The
// logical-disk unit is the weakest disk's bandwidth and capacity, so the
// weakest disk hosts exactly one logical disk and a disk with twice its
// bandwidth and capacity hosts two.
func NewMapping(physicals []Physical) (*Mapping, error) {
	if len(physicals) == 0 {
		return nil, fmt.Errorf("hetero: mapping needs at least one physical disk")
	}
	unitBW := physicals[0].Profile.TransferBytesPerSec
	unitCap := physicals[0].Profile.CapacityBytes
	for _, p := range physicals {
		if p.Profile.TransferBytesPerSec <= 0 || p.Profile.CapacityBytes <= 0 {
			return nil, fmt.Errorf("hetero: disk %d has non-positive resources", p.ID)
		}
		if p.Profile.TransferBytesPerSec < unitBW {
			unitBW = p.Profile.TransferBytesPerSec
		}
		if p.Profile.CapacityBytes < unitCap {
			unitCap = p.Profile.CapacityBytes
		}
	}
	m := &Mapping{physicals: append([]Physical(nil), physicals...)}
	for i, p := range m.physicals {
		n := unitsFor(p.Profile, unitBW, unitCap)
		if n < 1 {
			return nil, fmt.Errorf("hetero: disk %d cannot host a single logical disk", p.ID)
		}
		m.counts = append(m.counts, n)
		m.firstOf = append(m.firstOf, len(m.physOf))
		for k := 0; k < n; k++ {
			m.physOf = append(m.physOf, i)
		}
	}
	return m, nil
}

// Logicals returns the total number of logical disks — the N the placement
// strategy should be constructed with.
func (m *Mapping) Logicals() int { return len(m.physOf) }

// Physicals returns the number of physical disks.
func (m *Mapping) Physicals() int { return len(m.physicals) }

// Physical resolves a logical disk index to its physical disk.
func (m *Mapping) Physical(logical int) (Physical, error) {
	if logical < 0 || logical >= len(m.physOf) {
		return Physical{}, fmt.Errorf("hetero: logical disk %d outside [0,%d)", logical, len(m.physOf))
	}
	return m.physicals[m.physOf[logical]], nil
}

// LogicalsOf returns the logical disk indices carved from the physical disk
// at the given position.
func (m *Mapping) LogicalsOf(position int) ([]int, error) {
	if position < 0 || position >= len(m.physicals) {
		return nil, fmt.Errorf("hetero: physical position %d outside [0,%d)", position, len(m.physicals))
	}
	first := m.firstOf[position]
	out := make([]int, m.counts[position])
	for k := range out {
		out[k] = first + k
	}
	return out, nil
}

// Share returns the fraction of all logical disks hosted by the physical
// disk at the given position — the expected fraction of blocks (and of
// retrieval load) it carries under a balanced logical placement.
func (m *Mapping) Share(position int) (float64, error) {
	if position < 0 || position >= len(m.physicals) {
		return 0, fmt.Errorf("hetero: physical position %d outside [0,%d)", position, len(m.physicals))
	}
	return float64(m.counts[position]) / float64(len(m.physOf)), nil
}

// PhysicalLoads folds a per-logical-disk load vector into per-physical
// loads. The vector length must equal Logicals().
func (m *Mapping) PhysicalLoads(logicalLoads []int) ([]int, error) {
	if len(logicalLoads) != len(m.physOf) {
		return nil, fmt.Errorf("hetero: load vector has %d entries, mapping has %d logical disks",
			len(logicalLoads), len(m.physOf))
	}
	out := make([]int, len(m.physicals))
	for logical, load := range logicalLoads {
		out[m.physOf[logical]] += load
	}
	return out, nil
}

// ProportionalityError measures how far the physical load distribution is
// from each disk's resource share: the maximum over disks of
// |observedShare - expectedShare| / expectedShare. Zero means perfectly
// proportional.
func (m *Mapping) ProportionalityError(logicalLoads []int) (float64, error) {
	phys, err := m.PhysicalLoads(logicalLoads)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, l := range phys {
		total += l
	}
	if total == 0 {
		return 0, fmt.Errorf("hetero: empty load vector")
	}
	worst := 0.0
	for i, l := range phys {
		expected := float64(m.counts[i]) / float64(len(m.physOf))
		observed := float64(l) / float64(total)
		err := observed/expected - 1
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
	}
	return worst, nil
}
