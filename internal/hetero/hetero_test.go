package hetero

import (
	"testing"

	"scaddar/internal/disk"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

// profiles with clean 1:2:4 resource ratios for exact expectations.
func unitProfile(mult int64) disk.Profile {
	return disk.Profile{
		Name:                "synthetic",
		CapacityBytes:       mult * (10 << 30),
		AvgSeek:             5000000,
		RPM:                 10000,
		TransferBytesPerSec: mult * (20 << 20),
	}
}

func TestNewMappingValidation(t *testing.T) {
	if _, err := NewMapping(nil); err == nil {
		t.Error("empty mapping accepted")
	}
	bad := []Physical{{ID: 0, Profile: disk.Profile{}}}
	if _, err := NewMapping(bad); err == nil {
		t.Error("zero-resource disk accepted")
	}
}

func TestMappingCounts(t *testing.T) {
	phys := []Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(2)},
		{ID: 2, Profile: unitProfile(4)},
	}
	m, err := NewMapping(phys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Logicals() != 7 {
		t.Fatalf("logicals = %d, want 7 (1+2+4)", m.Logicals())
	}
	if m.Physicals() != 3 {
		t.Fatalf("physicals = %d, want 3", m.Physicals())
	}
	// Logical 0 -> disk 0; logicals 1,2 -> disk 1; logicals 3..6 -> disk 2.
	wantPhys := []int{0, 1, 1, 2, 2, 2, 2}
	for l, want := range wantPhys {
		p, err := m.Physical(l)
		if err != nil {
			t.Fatal(err)
		}
		if p.ID != want {
			t.Fatalf("logical %d -> disk %d, want %d", l, p.ID, want)
		}
	}
	if _, err := m.Physical(7); err == nil {
		t.Error("out-of-range logical accepted")
	}
	if _, err := m.Physical(-1); err == nil {
		t.Error("negative logical accepted")
	}
}

func TestLogicalsOf(t *testing.T) {
	m, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(2)},
		{ID: 1, Profile: unitProfile(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := m.LogicalsOf(0)
	if err != nil || len(ls) != 2 || ls[0] != 0 || ls[1] != 1 {
		t.Fatalf("LogicalsOf(0) = %v, %v", ls, err)
	}
	ls, err = m.LogicalsOf(1)
	if err != nil || len(ls) != 1 || ls[0] != 2 {
		t.Fatalf("LogicalsOf(1) = %v, %v", ls, err)
	}
	if _, err := m.LogicalsOf(2); err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestShare(t *testing.T) {
	m, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := m.Share(0)
	if err != nil || s0 != 0.25 {
		t.Fatalf("Share(0) = %g, want 0.25", s0)
	}
	s1, err := m.Share(1)
	if err != nil || s1 != 0.75 {
		t.Fatalf("Share(1) = %g, want 0.75", s1)
	}
	if _, err := m.Share(5); err == nil {
		t.Error("out-of-range share accepted")
	}
}

func TestPhysicalLoads(t *testing.T) {
	m, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	loads, err := m.PhysicalLoads([]int{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if loads[0] != 10 || loads[1] != 50 {
		t.Fatalf("physical loads = %v, want [10 50]", loads)
	}
	if _, err := m.PhysicalLoads([]int{1, 2}); err == nil {
		t.Error("short load vector accepted")
	}
}

func TestProportionalityError(t *testing.T) {
	m, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := m.ProportionalityError([]int{100, 100})
	if err != nil || perfect != 0 {
		t.Fatalf("perfect proportionality error = %g, %v", perfect, err)
	}
	skewed, err := m.ProportionalityError([]int{150, 50})
	if err != nil || skewed != 0.5 {
		t.Fatalf("skewed proportionality error = %g, want 0.5", skewed)
	}
	if _, err := m.ProportionalityError([]int{0, 0}); err == nil {
		t.Error("empty load vector accepted")
	}
}

// TestScaddarOverHeterogeneousArray is the end-to-end Section 6 scenario:
// SCADDAR places blocks over the logical disks; the physical load lands
// proportional to each heterogeneous disk's resources.
func TestScaddarOverHeterogeneousArray(t *testing.T) {
	m, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(2)},
		{ID: 2, Profile: unitProfile(4)},
		{ID: 3, Profile: unitProfile(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(m.Logicals(), x0)
	if err != nil {
		t.Fatal(err)
	}
	// Scale the logical array too: add a disk group (e.g. a new physical
	// disk worth 2 logical units would mean AddDisks(2)).
	if err := strat.AddDisks(2); err != nil {
		t.Fatal(err)
	}
	m2, err := NewMapping([]Physical{
		{ID: 0, Profile: unitProfile(1)},
		{ID: 1, Profile: unitProfile(2)},
		{ID: 2, Profile: unitProfile(4)},
		{ID: 3, Profile: unitProfile(1)},
		{ID: 4, Profile: unitProfile(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Logicals() != strat.N() {
		t.Fatalf("mapping has %d logicals, strategy %d", m2.Logicals(), strat.N())
	}
	logical := make([]int, strat.N())
	for o := 0; o < 20; o++ {
		for i := 0; i < 500; i++ {
			logical[strat.Disk(placement.BlockRef{Seed: uint64(o + 1), Index: uint64(i)})]++
		}
	}
	worst, err := m2.ProportionalityError(logical)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.1 {
		t.Fatalf("physical load deviates %.3f from resource shares", worst)
	}
}
