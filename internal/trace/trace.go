// Package trace defines a compact, replayable event format for driving the
// continuous-media server: admissions, viewer actions, scaling operations,
// and round ticks. A recorded trace replays deterministically — same
// placements, same hiccups, same migration lengths — which is how the
// experiments in this repository stay reproducible and how a bug report
// against the simulator can be reduced to a file.
//
// Traces are flat event lists (no timestamps; the Tick events ARE the
// clock) with JSON and binary codecs mirroring the operation-log codecs of
// the core package.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"scaddar/internal/cm"
)

// Kind tags an event.
type Kind uint8

// Event kinds.
const (
	// KindTick advances one scheduling round.
	KindTick Kind = iota + 1
	// KindAdmit starts a stream: A = object ID, B = initial position.
	KindAdmit
	// KindSeek repositions a stream: A = stream ID, B = new position.
	KindSeek
	// KindStop terminates a stream: A = stream ID.
	KindStop
	// KindScaleUp attaches disks: A = count.
	KindScaleUp
	// KindScaleDown starts draining: A = first logical index, B = count
	// (contiguous groups keep the format compact; arbitrary groups use
	// repeated events of count 1 on shifting indices).
	KindScaleDown
	// KindCompleteScaleDown detaches the drained disks.
	KindCompleteScaleDown
	// KindFinish clears a completed scale-up migration.
	KindFinish
	// KindRedistribute performs a full redistribution.
	KindRedistribute
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTick:
		return "tick"
	case KindAdmit:
		return "admit"
	case KindSeek:
		return "seek"
	case KindStop:
		return "stop"
	case KindScaleUp:
		return "scale-up"
	case KindScaleDown:
		return "scale-down"
	case KindCompleteScaleDown:
		return "complete-scale-down"
	case KindFinish:
		return "finish"
	case KindRedistribute:
		return "redistribute"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one step of a session.
type Event struct {
	Kind Kind  `json:"kind"`
	A    int64 `json:"a,omitempty"`
	B    int64 `json:"b,omitempty"`
}

// Trace is a replayable session.
type Trace struct {
	// Events in execution order.
	Events []Event `json:"events"`
}

// Result summarizes a replay.
type Result struct {
	// Metrics is the server's cumulative metrics after the replay.
	Metrics cm.Metrics
	// Streams is the number of streams admitted by the trace.
	Streams int
	// StreamIDs maps trace admission order to server stream IDs, for
	// follow-up inspection.
	StreamIDs []int
}

// Apply replays the trace against a server. The server should be freshly
// loaded (objects in place, no streams); stream IDs referenced by Seek and
// Stop events are the trace's admission indices, translated to the server's
// IDs at replay time. Replay stops at the first failing event.
func Apply(srv *cm.Server, tr *Trace) (*Result, error) {
	if srv == nil || tr == nil {
		return nil, fmt.Errorf("trace: nil server or trace")
	}
	res := &Result{}
	for i, ev := range tr.Events {
		if err := applyOne(srv, ev, res); err != nil {
			return res, fmt.Errorf("trace: event %d (%s): %w", i, ev.Kind, err)
		}
	}
	res.Metrics = srv.Metrics()
	return res, nil
}

// applyOne executes a single event.
func applyOne(srv *cm.Server, ev Event, res *Result) error {
	switch ev.Kind {
	case KindTick:
		return srv.Tick()
	case KindAdmit:
		st, err := srv.StartStream(int(ev.A))
		if err != nil {
			return err
		}
		if ev.B > 0 {
			if err := srv.SeekStream(st.ID, int(ev.B)); err != nil {
				return err
			}
		}
		res.StreamIDs = append(res.StreamIDs, st.ID)
		res.Streams++
		return nil
	case KindSeek:
		id, err := traceStream(res, ev.A)
		if err != nil {
			return err
		}
		return srv.SeekStream(id, int(ev.B))
	case KindStop:
		id, err := traceStream(res, ev.A)
		if err != nil {
			return err
		}
		return srv.StopStream(id)
	case KindScaleUp:
		_, err := srv.ScaleUp(int(ev.A))
		return err
	case KindScaleDown:
		indices := make([]int, ev.B)
		for i := range indices {
			indices[i] = int(ev.A) + i
		}
		_, err := srv.ScaleDown(indices...)
		return err
	case KindCompleteScaleDown:
		return srv.CompleteScaleDown()
	case KindFinish:
		return srv.FinishReorganization()
	case KindRedistribute:
		_, err := srv.FullRedistribute()
		return err
	default:
		return fmt.Errorf("unknown event kind %d", uint8(ev.Kind))
	}
}

// traceStream resolves a trace admission index to a server stream ID.
func traceStream(res *Result, idx int64) (int, error) {
	if idx < 0 || idx >= int64(len(res.StreamIDs)) {
		return 0, fmt.Errorf("stream index %d outside the %d admissions so far", idx, len(res.StreamIDs))
	}
	return res.StreamIDs[idx], nil
}

// ---- Codecs ----

// traceMagic guards the binary encoding ("SCTR" + version 1).
var traceMagic = [4]byte{'S', 'C', 'T', 'R'}

const traceVersion = 1

// AppendBinary encodes the trace compactly: magic, version, count, then
// per event kind + zigzag-varint A and B.
func (t *Trace) AppendBinary(dst []byte) []byte {
	dst = append(dst, traceMagic[:]...)
	dst = binary.AppendUvarint(dst, traceVersion)
	dst = binary.AppendUvarint(dst, uint64(len(t.Events)))
	for _, ev := range t.Events {
		dst = append(dst, byte(ev.Kind))
		dst = binary.AppendVarint(dst, ev.A)
		dst = binary.AppendVarint(dst, ev.B)
	}
	return dst
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (t *Trace) MarshalBinary() ([]byte, error) { return t.AppendBinary(nil), nil }

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Trace) UnmarshalBinary(data []byte) error {
	rd := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if magic != traceMagic {
		return fmt.Errorf("trace: bad magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if version != traceVersion {
		return fmt.Errorf("trace: unsupported version %d", version)
	}
	count, err := binary.ReadUvarint(rd)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	const maxEvents = 100 << 20 // refuse absurd declared sizes
	if count > maxEvents {
		return fmt.Errorf("trace: declared %d events", count)
	}
	events := make([]Event, 0, min64(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		kind, err := rd.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		a, err := binary.ReadVarint(rd)
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		b, err := binary.ReadVarint(rd)
		if err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if Kind(kind) < KindTick || Kind(kind) > KindRedistribute {
			return fmt.Errorf("trace: event %d: unknown kind %d", i, kind)
		}
		events = append(events, Event{Kind: Kind(kind), A: a, B: b})
	}
	if rd.Len() != 0 {
		return fmt.Errorf("trace: %d trailing bytes", rd.Len())
	}
	t.Events = events
	return nil
}

// min64 avoids importing a whole package for one clamp.
func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
