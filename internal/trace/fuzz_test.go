package trace

import "testing"

// FuzzTraceBinary feeds arbitrary bytes to the trace decoder: it must never
// panic, and anything it accepts must round-trip stably.
func FuzzTraceBinary(f *testing.F) {
	tr, err := GenerateSession(DefaultSession())
	if err != nil {
		f.Fatal(err)
	}
	seed, _ := tr.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("SCTR"))
	f.Add([]byte("SCTR\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var back Trace
		if err := back.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		var again Trace
		if err := again.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if len(again.Events) != len(back.Events) {
			t.Fatal("round trip changed event count")
		}
		for i := range back.Events {
			if again.Events[i] != back.Events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
