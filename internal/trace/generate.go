package trace

import (
	"fmt"

	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// SessionConfig parameterizes synthetic session generation.
type SessionConfig struct {
	// Objects is the library size; admissions draw objects Zipf(S)-skewed.
	Objects int
	// BlocksPer is each object's block count (for seek positions).
	BlocksPer int
	// ZipfS is the popularity exponent.
	ZipfS float64
	// Streams is the number of admissions.
	Streams int
	// Rounds is the number of ticks after the admissions.
	Rounds int
	// VCRJumpPerMille and VCRStopPerMille inject viewer actions before
	// random ticks.
	VCRJumpPerMille, VCRStopPerMille int
	// ScaleUpAt, if positive, inserts a scale-up of ScaleUpCount disks
	// before that round, with a Finish once drained (the generator inserts
	// generous ticks after it).
	ScaleUpAt, ScaleUpCount int
	// Seed fixes the generator.
	Seed uint64
}

// DefaultSession is a moderate Zipf session with a mid-run scale-out.
func DefaultSession() SessionConfig {
	return SessionConfig{
		Objects:         10,
		BlocksPer:       400,
		ZipfS:           0.729,
		Streams:         60,
		Rounds:          80,
		VCRJumpPerMille: 50,
		VCRStopPerMille: 10,
		ScaleUpAt:       20,
		ScaleUpCount:    2,
		Seed:            7,
	}
}

// GenerateSession builds a reproducible synthetic session trace.
func GenerateSession(cfg SessionConfig) (*Trace, error) {
	if cfg.Objects < 1 || cfg.BlocksPer < 1 {
		return nil, fmt.Errorf("trace: degenerate library %dx%d", cfg.Objects, cfg.BlocksPer)
	}
	if cfg.Streams < 0 || cfg.Rounds < 1 {
		return nil, fmt.Errorf("trace: degenerate session %d streams %d rounds", cfg.Streams, cfg.Rounds)
	}
	zipf, err := workload.NewZipf(prng.NewSplitMix64(cfg.Seed), cfg.Objects, cfg.ZipfS)
	if err != nil {
		return nil, err
	}
	vcr, err := workload.NewVCR(prng.NewSplitMix64(cfg.Seed+1), cfg.VCRJumpPerMille, cfg.VCRStopPerMille)
	if err != nil {
		return nil, err
	}
	pos := prng.NewSplitMix64(cfg.Seed + 2)

	tr := &Trace{}
	for i := 0; i < cfg.Streams; i++ {
		tr.Events = append(tr.Events, Event{
			Kind: KindAdmit,
			A:    int64(zipf.Draw()),
			B:    int64(pos.Next() % uint64(cfg.BlocksPer)),
		})
	}
	stopped := make(map[int64]bool)
	scaled := false
	for r := 0; r < cfg.Rounds; r++ {
		if cfg.ScaleUpAt > 0 && r == cfg.ScaleUpAt {
			tr.Events = append(tr.Events, Event{Kind: KindScaleUp, A: int64(cfg.ScaleUpCount)})
			scaled = true
		}
		// Viewer actions against a random live stream.
		if cfg.Streams > 0 {
			target := int64(pos.Next() % uint64(cfg.Streams))
			if !stopped[target] {
				action, jumpTo := vcr.Next(cfg.BlocksPer)
				switch action {
				case workload.VCRJump:
					tr.Events = append(tr.Events, Event{Kind: KindSeek, A: target, B: int64(jumpTo)})
				case workload.VCRStop:
					tr.Events = append(tr.Events, Event{Kind: KindStop, A: target})
					stopped[target] = true
				}
			}
		}
		tr.Events = append(tr.Events, Event{Kind: KindTick})
	}
	if scaled {
		// Generous drain allowance, then clear the migration.
		for i := 0; i < cfg.Rounds; i++ {
			tr.Events = append(tr.Events, Event{Kind: KindTick})
		}
		tr.Events = append(tr.Events, Event{Kind: KindFinish})
	}
	return tr, nil
}
