package trace

import (
	"encoding/json"
	"testing"

	"scaddar/internal/cm"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// newLoadedServer builds a server matching the DefaultSession library.
func newLoadedServer(t *testing.T, cfg SessionConfig) *cm.Server {
	t.Helper()
	x0 := placement.NewX0Func(func(seed uint64) prng.Source { return prng.NewSplitMix64(seed) })
	strat, err := placement.NewScaddar(6, x0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := workload.Library(workload.LibraryConfig{
		Objects: cfg.Objects, MinBlocks: cfg.BlocksPer, MaxBlocks: cfg.BlocksPer,
		BlockBytes: srv.Config().BlockBytes, BitrateBitsPerSec: 4 << 20, SeedBase: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range lib {
		if err := srv.AddObject(obj); err != nil {
			t.Fatal(err)
		}
	}
	return srv
}

func TestGenerateSessionValidation(t *testing.T) {
	bad := DefaultSession()
	bad.Objects = 0
	if _, err := GenerateSession(bad); err == nil {
		t.Error("zero objects accepted")
	}
	bad = DefaultSession()
	bad.Rounds = 0
	if _, err := GenerateSession(bad); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultSession()
	a, err := GenerateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestReplayDeterministic is the core guarantee: applying the same trace to
// identically built servers yields identical metrics.
func TestReplayDeterministic(t *testing.T) {
	cfg := DefaultSession()
	tr, err := GenerateSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Apply(newLoadedServer(t, cfg), tr)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Apply(newLoadedServer(t, cfg), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics != r2.Metrics {
		t.Fatalf("metrics differ:\n%+v\n%+v", r1.Metrics, r2.Metrics)
	}
	if r1.Streams != cfg.Streams {
		t.Fatalf("admitted %d streams, want %d", r1.Streams, cfg.Streams)
	}
	if r1.Metrics.BlocksServed == 0 {
		t.Fatal("replay served nothing")
	}
	if r1.Metrics.BlocksMigrated == 0 {
		t.Fatal("replay migrated nothing despite the scale-up")
	}
	if r1.Metrics.Hiccups != 0 {
		t.Fatalf("replay hiccuped %d times", r1.Metrics.Hiccups)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr, err := GenerateSession(DefaultSession())
	if err != nil {
		t.Fatal(err)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// ~3 bytes per event: the format stays compact.
	if len(data) > len(tr.Events)*4+16 {
		t.Fatalf("encoding is %d bytes for %d events", len(data), len(tr.Events))
	}
	var back Trace
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatal("lengths differ")
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	tr, _ := GenerateSession(DefaultSession())
	good, _ := tr.MarshalBinary()
	var back Trace
	if err := back.UnmarshalBinary(nil); err == nil {
		t.Error("empty accepted")
	}
	if err := back.UnmarshalBinary([]byte("XXXX\x01\x00")); err == nil {
		t.Error("bad magic accepted")
	}
	if err := back.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncation accepted")
	}
	trailing := append(append([]byte{}, good...), 0)
	if err := back.UnmarshalBinary(trailing); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Corrupt an event kind byte.
	bad := append([]byte{}, good...)
	bad[7] = 0xFF
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr, _ := GenerateSession(DefaultSession())
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatal("JSON round trip lost events")
	}
}

func TestApplyStreamIndexTranslation(t *testing.T) {
	cfg := DefaultSession()
	cfg.Streams = 2
	cfg.Rounds = 1
	cfg.ScaleUpAt = 0
	cfg.VCRJumpPerMille = 0
	cfg.VCRStopPerMille = 0
	srv := newLoadedServer(t, cfg)
	tr := &Trace{Events: []Event{
		{Kind: KindAdmit, A: 0, B: 10},
		{Kind: KindAdmit, A: 1, B: 20},
		{Kind: KindSeek, A: 1, B: 300}, // second admission
		{Kind: KindTick},
		{Kind: KindStop, A: 0},
		{Kind: KindTick},
	}}
	res, err := Apply(srv, tr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Stream(res.StreamIDs[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.Position != 302 {
		t.Fatalf("second stream at %d, want 302 (seek 300 + 2 ticks)", st.Position)
	}
	first, err := srv.Stream(res.StreamIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	if first.State != cm.StreamStopped {
		t.Fatal("first stream not stopped")
	}
}

func TestApplyErrors(t *testing.T) {
	if _, err := Apply(nil, &Trace{}); err == nil {
		t.Error("nil server accepted")
	}
	cfg := DefaultSession()
	srv := newLoadedServer(t, cfg)
	if _, err := Apply(srv, nil); err == nil {
		t.Error("nil trace accepted")
	}
	// Seek of an unknown trace-stream index fails cleanly.
	if _, err := Apply(srv, &Trace{Events: []Event{{Kind: KindSeek, A: 5}}}); err == nil {
		t.Error("out-of-range stream index accepted")
	}
	if _, err := Apply(srv, &Trace{Events: []Event{{Kind: Kind(99)}}}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	for k := KindTick; k <= KindRedistribute; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}
