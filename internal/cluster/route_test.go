package cluster

import (
	"math"
	"testing"
)

// TestJumpHashRange checks the bucket is always within [0, buckets).
func TestJumpHashRange(t *testing.T) {
	for buckets := 1; buckets <= 16; buckets++ {
		for id := 0; id < 2000; id++ {
			b := RouteSlot(id, buckets)
			if b < 0 || b >= buckets {
				t.Fatalf("RouteSlot(%d, %d) = %d outside [0,%d)", id, buckets, b, buckets)
			}
		}
	}
}

// TestJumpHashSingleBucket pins the trivial case.
func TestJumpHashSingleBucket(t *testing.T) {
	for id := 0; id < 100; id++ {
		if got := RouteSlot(id, 1); got != 0 {
			t.Fatalf("RouteSlot(%d, 1) = %d", id, got)
		}
	}
}

// TestJumpHashMonotoneRelocation is the property the whole scaling design
// rests on: growing K→K+1 relocates ~1/(K+1) of the keys, and every
// relocated key lands on the NEW bucket — never shuffled between the old
// ones. This mirrors SCADDAR's RO1 at the shard layer.
func TestJumpHashMonotoneRelocation(t *testing.T) {
	const n = 20000
	for k := 1; k <= 12; k++ {
		moved := 0
		for id := 0; id < n; id++ {
			oldSlot := RouteSlot(id, k)
			newSlot := RouteSlot(id, k+1)
			if oldSlot == newSlot {
				continue
			}
			moved++
			if newSlot != k {
				t.Fatalf("K=%d: object %d relocated %d→%d, not to the new bucket %d",
					k, id, oldSlot, newSlot, k)
			}
		}
		ideal := 1 / float64(k+1)
		frac := float64(moved) / n
		if math.Abs(frac-ideal) > 0.1*ideal {
			t.Errorf("K=%d→%d: moved fraction %.4f not within 10%% of ideal %.4f",
				k, k+1, frac, ideal)
		}
	}
}

// TestJumpHashTailRemoval is the drain-side property: shrinking K→K-1
// relocates exactly the keys of the removed tail bucket, and nothing else.
func TestJumpHashTailRemoval(t *testing.T) {
	const n = 20000
	for k := 2; k <= 12; k++ {
		for id := 0; id < n; id++ {
			oldSlot := RouteSlot(id, k)
			newSlot := RouteSlot(id, k-1)
			if oldSlot != k-1 && newSlot != oldSlot {
				t.Fatalf("K=%d→%d: object %d moved %d→%d though its bucket survives",
					k, k-1, id, oldSlot, newSlot)
			}
			if oldSlot == k-1 && newSlot == k-1 {
				t.Fatalf("K=%d→%d: object %d still routed to the removed tail", k, k-1, id)
			}
		}
	}
}

// TestRouteKeyWhitening checks the SplitMix64 finalizer spreads the small
// dense ID space: consecutive IDs must not clump on one bucket.
func TestRouteKeyWhitening(t *testing.T) {
	const n, buckets = 400, 4
	counts := make([]int, buckets)
	for id := 0; id < n; id++ {
		counts[RouteSlot(id, buckets)]++
	}
	for b, c := range counts {
		if c < n/buckets/2 || c > n/buckets*2 {
			t.Errorf("bucket %d holds %d of %d consecutive IDs (want near %d)", b, c, n, n/buckets)
		}
	}
}

// TestRouteKeyDistinct spot-checks the finalizer is injective-looking on a
// small range (it is a bijection on uint64; collisions here would mean a
// transcription bug).
func TestRouteKeyDistinct(t *testing.T) {
	seen := make(map[uint64]int, 10000)
	for id := 0; id < 10000; id++ {
		k := RouteKey(id)
		if prev, dup := seen[k]; dup {
			t.Fatalf("RouteKey collision: ids %d and %d both map to %#x", prev, id, k)
		}
		seen[k] = id
	}
}

// TestSessionIDRoundTrip checks the cluster session encoding.
func TestSessionIDRoundTrip(t *testing.T) {
	for _, shard := range []int{0, 1, 7, MaxShardID - 1} {
		for _, local := range []int{0, 1, 42, 99999} {
			cid := sessionID(shard, local)
			gotShard, gotLocal := splitSessionID(cid)
			if gotShard != shard || gotLocal != local {
				t.Fatalf("sessionID(%d,%d)=%d split to (%d,%d)", shard, local, cid, gotShard, gotLocal)
			}
		}
	}
}
