package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// maxBodyBytes bounds control-request bodies at the router edge.
const maxBodyBytes = 1 << 20

// ShardHeader is the response header the router stamps on every routed
// request with the owning shard's ID — how clients (and loadgen's cluster
// mode) attribute latency and skew per shard without a second lookup.
const ShardHeader = "X-Scaddar-Shard"

// routes installs the cluster API on the router's mux: the shards' /v1
// surface served transparently, plus the /v1/cluster topology operations.
func (r *Router) routes() {
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("GET /v1/healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /v1/metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /v1/status", r.handleStatus)
	r.mux.HandleFunc("GET /v1/trace", r.handleTrace)
	r.mux.HandleFunc("GET /v1/objects", r.handleObjects)
	r.mux.HandleFunc("GET /v1/objects/{id}/blocks/{idx}", r.handleRead)
	r.mux.HandleFunc("POST /v1/sessions", r.handleOpenSession)
	r.mux.HandleFunc("GET /v1/sessions/{id}", r.handleSession)
	r.mux.HandleFunc("POST /v1/sessions/{id}/seek", r.handleSession)
	r.mux.HandleFunc("DELETE /v1/sessions/{id}", r.handleSession)
	r.mux.HandleFunc("POST /v1/scale", r.handleScale)
	r.mux.HandleFunc("GET /v1/admin/objects", r.handleAdminObjects)
	r.mux.HandleFunc("POST /v1/admin/objects", r.handleAdminAddObject)
	r.mux.HandleFunc("DELETE /v1/admin/objects/{id}", r.handleAdminRemoveObject)
	r.mux.HandleFunc("GET /v1/cluster/shards", r.handleShards)
	r.mux.HandleFunc("POST /v1/cluster/shards", r.handleShardOp)
	r.mux.HandleFunc("POST /v1/cluster/objects/{id}/move", r.handleMoveObject)
}

// Handler returns the router's HTTP handler with the per-request deadline
// applied to data-path requests. Topology and object-move operations (POST
// under /v1/cluster/) run under the separate, longer OpTimeout — they
// migrate keys.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		timeout := r.cfg.RequestTimeout
		if req.Method == http.MethodPost && strings.HasPrefix(req.URL.Path, "/v1/cluster/") {
			timeout = r.cfg.OpTimeout
		}
		ctx, cancel := context.WithTimeout(req.Context(), timeout)
		defer cancel()
		r.mux.ServeHTTP(w, req.WithContext(ctx))
	})
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeUnavailable answers 503 with a Retry-After hint — the router's
// backpressure shape for a down or draining shard: the cluster stays up,
// the affected keys come back when the shard (or their migration) does.
func (r *Router) writeUnavailable(w http.ResponseWriter, err error) {
	r.m.unavailable.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
}

// writeError maps router errors to protocol outcomes.
func (r *Router) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoShards), errors.Is(err, ErrShardDown), errors.Is(err, ErrShardDraining):
		r.writeUnavailable(w, err)
	case errors.Is(err, ErrOpInFlight):
		writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrBadShardOp):
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	case errors.Is(err, ErrUnknownObject):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// pathInt parses an integer path segment.
func pathInt(req *http.Request, name string) (int, error) {
	v, err := strconv.Atoi(req.PathValue(name))
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, req.PathValue(name))
	}
	return v, nil
}

// readBody slurps a bounded request body.
func readBody(w http.ResponseWriter, req *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, req.Body, maxBodyBytes))
}

// routableShard resolves the owning shard for an object and gates on its
// availability: nil shard means an empty cluster, an unhealthy shard is
// down, and a draining/drained shard refuses new sessions when
// forSession is set.
func (r *Router) routableShard(object int, forSession bool) (*shard, error) {
	sh := r.topo.Load().shardFor(object)
	if sh == nil {
		return nil, ErrNoShards
	}
	if !sh.healthy.Load() {
		return nil, fmt.Errorf("%w: shard %d at %s", ErrShardDown, sh.id, sh.url)
	}
	if forSession && sh.State() != ShardActive {
		return nil, fmt.Errorf("%w: shard %d", ErrShardDraining, sh.id)
	}
	return sh, nil
}

// proxyResp is a buffered shard response awaiting delivery to the client —
// buffered so a routed request can be retried against a different shard
// before anything is written.
type proxyResp struct {
	status      int
	body        []byte
	contentType string
	retryAfter  string
}

// forward performs one request against a shard under the per-shard timeout.
// A returned error is transport-level (connect/timeout/short body); it has
// already marked the shard unhealthy and bumped its error counter.
func (r *Router) forward(ctx context.Context, sh *shard, method, path string, body []byte) (proxyResp, error) {
	start := time.Now()
	cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	preq, err := http.NewRequestWithContext(cctx, method, sh.url+path, rd)
	if err != nil {
		return proxyResp{}, err
	}
	if body != nil {
		preq.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(preq)
	if err != nil {
		sh.routedErrs.Inc()
		sh.setHealthy(false)
		return proxyResp{}, fmt.Errorf("%w: shard %d: %v", ErrShardDown, sh.id, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		sh.routedErrs.Inc()
		return proxyResp{}, fmt.Errorf("%w: shard %d: %v", ErrShardDown, sh.id, err)
	}
	sh.routed.Inc()
	sh.setHealthy(true)
	r.m.proxySeconds.ObserveDuration(time.Since(start))
	return proxyResp{
		status:      resp.StatusCode,
		body:        data,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}, nil
}

// writeForwarded delivers a buffered shard response, stamping ShardHeader.
// rewrite, when non-nil, may transform the body (session ID rewriting).
func writeForwarded(w http.ResponseWriter, sh *shard, pr proxyResp,
	rewrite func(status int, body []byte) []byte) {
	data := pr.body
	if rewrite != nil {
		data = rewrite(pr.status, data)
	}
	h := w.Header()
	h.Set(ShardHeader, shardLabel(sh.id))
	if pr.contentType != "" {
		h.Set("Content-Type", pr.contentType)
	}
	if pr.retryAfter != "" {
		h.Set("Retry-After", pr.retryAfter)
	}
	w.WriteHeader(pr.status)
	_, _ = w.Write(data)
}

// proxy forwards one request to a fixed shard and copies the response
// through — the single-shot path for requests addressed by shard, not by
// object (sessions, scale, admin deletes).
func (r *Router) proxy(w http.ResponseWriter, req *http.Request, sh *shard, path string,
	body []byte, rewrite func(status int, body []byte) []byte) {
	pr, err := r.forward(req.Context(), sh, req.Method, path, body)
	if err != nil {
		r.writeUnavailable(w, err)
		return
	}
	writeForwarded(w, sh, pr, rewrite)
}

// proxyRouted forwards an object-addressed request to the object's owning
// shard, re-resolving and retrying when the answer is a 404 and the
// topology meanwhile routes the object elsewhere. That closes the
// inherent time-of-check race with a concurrent migration: the owner
// resolved before the hop can have handed the object off by the time the
// request lands.
func (r *Router) proxyRouted(w http.ResponseWriter, req *http.Request, object int,
	forSession bool, path string, body []byte,
	rewrite func(sh *shard) func(status int, body []byte) []byte) {
	for attempt := 0; ; attempt++ {
		sh, err := r.routableShard(object, forSession)
		if err != nil {
			r.writeError(w, err)
			return
		}
		pr, err := r.forward(req.Context(), sh, req.Method, path, body)
		if err != nil {
			r.writeUnavailable(w, err)
			return
		}
		if pr.status == http.StatusNotFound && attempt < 2 {
			if cur := r.topo.Load().shardFor(object); cur != nil && cur != sh {
				continue // the object moved mid-flight; chase it
			}
		}
		var rw func(int, []byte) []byte
		if rewrite != nil {
			rw = rewrite(sh)
		}
		writeForwarded(w, sh, pr, rw)
		return
	}
}

// handleRead routes the hot-path block lookup to the owning shard.
func (r *Router) handleRead(w http.ResponseWriter, req *http.Request) {
	id, err := pathInt(req, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	r.proxyRouted(w, req, id, false, req.URL.Path, nil, nil)
}

// rewriteSessionID swaps a shard-local "session" field in a 2xx response
// for the cluster-wide encoding.
func rewriteSessionID(shardID int) func(int, []byte) []byte {
	return func(status int, body []byte) []byte {
		if status < 200 || status >= 300 {
			return body
		}
		var m map[string]any
		if json.Unmarshal(body, &m) != nil {
			return body
		}
		local, ok := m["session"].(float64)
		if !ok {
			return body
		}
		m["session"] = sessionID(shardID, int(local))
		out, err := json.Marshal(m)
		if err != nil {
			return body
		}
		return append(out, '\n')
	}
}

// handleOpenSession routes a session open to the object's home shard and
// rewrites the returned session ID into the cluster-wide encoding.
func (r *Router) handleOpenSession(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var open struct {
		Object int `json:"object"`
	}
	if err := json.Unmarshal(body, &open); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	r.proxyRouted(w, req, open.Object, true, "/v1/sessions", body,
		func(sh *shard) func(int, []byte) []byte { return rewriteSessionID(sh.id) })
}

// handleSession routes get/seek/close of an existing session by the shard
// embedded in its cluster-wide ID.
func (r *Router) handleSession(w http.ResponseWriter, req *http.Request) {
	cid, err := pathInt(req, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	shardID, local := splitSessionID(cid)
	sh := r.topo.Load().shardByID(shardID)
	if sh == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("cluster: session %d names unknown shard %d", cid, shardID)})
		return
	}
	if !sh.healthy.Load() {
		r.writeUnavailable(w, fmt.Errorf("%w: shard %d", ErrShardDown, sh.id))
		return
	}
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if len(body) == 0 {
		body = nil
	}
	path := fmt.Sprintf("/v1/sessions/%d", local)
	if req.URL.Path == fmt.Sprintf("/v1/sessions/%d/seek", cid) {
		path += "/seek"
	}
	r.proxy(w, req, sh, path, body, rewriteSessionID(sh.id))
}

// handleScale forwards a disk-scaling operation to one shard, named by the
// "shard" field the cluster surface adds to the body.
func (r *Router) handleScale(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var target struct {
		Shard *int `json:"shard"`
	}
	if err := json.Unmarshal(body, &target); err != nil || target.Shard == nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": `cluster: scale needs a "shard" field naming the shard to scale`})
		return
	}
	sh := r.topo.Load().shardByID(*target.Shard)
	if sh == nil {
		writeJSON(w, http.StatusNotFound,
			map[string]string{"error": fmt.Sprintf("cluster: no shard %d", *target.Shard)})
		return
	}
	if !sh.healthy.Load() {
		r.writeUnavailable(w, fmt.Errorf("%w: shard %d", ErrShardDown, sh.id))
		return
	}
	r.proxy(w, req, sh, "/v1/scale", body, nil)
}

// handleAdminAddObject routes an object load to its home shard — the
// cluster's ingestion path: clients need not know the placement function.
func (r *Router) handleAdminAddObject(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var obj struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(body, &obj); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	sh, err := r.routableShard(obj.ID, true)
	if err != nil {
		r.writeError(w, err)
		return
	}
	r.proxy(w, req, sh, "/v1/admin/objects", body, nil)
}

// handleAdminRemoveObject routes an object deletion to its home shard.
func (r *Router) handleAdminRemoveObject(w http.ResponseWriter, req *http.Request) {
	id, err := pathInt(req, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	sh, err := r.routableShard(id, false)
	if err != nil {
		r.writeError(w, err)
		return
	}
	path := req.URL.Path
	if req.URL.RawQuery != "" {
		path += "?" + req.URL.RawQuery
	}
	r.proxy(w, req, sh, path, nil, nil)
}

// shardOpRequest is the body of POST /v1/cluster/shards.
type shardOpRequest struct {
	// Op is "add", "drain", or "remove".
	Op string `json:"op"`
	// URL is the joining shard's base URL (add only).
	URL string `json:"url,omitempty"`
	// ID names the shard to drain or remove.
	ID *int `json:"id,omitempty"`
}

// shardOpResponse reports a topology operation's outcome.
type shardOpResponse struct {
	// Op echoes the operation.
	Op string `json:"op"`
	// Shard is the affected shard.
	Shard ShardInfo `json:"shard"`
	// Migration summarizes the key movement (add and drain).
	Migration *MigrationStats `json:"migration,omitempty"`
}

// handleShardOp executes a topology change: add a shard (migrating the
// jump-hash-moved key fraction onto it), drain the tail shard, or remove
// a drained one. Runs under OpTimeout, not the data-path deadline.
func (r *Router) handleShardOp(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var op shardOpRequest
	if err := json.Unmarshal(body, &op); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	switch op.Op {
	case "add":
		if op.URL == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `cluster: add needs a "url"`})
			return
		}
		info, stats, err := r.AddShard(req.Context(), op.URL)
		if err != nil {
			r.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, shardOpResponse{Op: "add", Shard: info, Migration: &stats})
	case "drain":
		if op.ID == nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `cluster: drain needs an "id"`})
			return
		}
		stats, err := r.DrainShard(req.Context(), *op.ID)
		if err != nil {
			r.writeError(w, err)
			return
		}
		sh := r.topo.Load().shardByID(*op.ID)
		writeJSON(w, http.StatusOK, shardOpResponse{Op: "drain", Shard: sh.info(), Migration: &stats})
	case "remove":
		if op.ID == nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": `cluster: remove needs an "id"`})
			return
		}
		sh := r.topo.Load().shardByID(*op.ID)
		if sh == nil {
			writeJSON(w, http.StatusNotFound,
				map[string]string{"error": fmt.Sprintf("cluster: no shard %d", *op.ID)})
			return
		}
		if err := r.RemoveShard(*op.ID); err != nil {
			r.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, shardOpResponse{Op: "remove", Shard: sh.info()})
	default:
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("cluster: unknown op %q (want add, drain, remove)", op.Op)})
	}
}

// handleMoveObject executes a cross-shard object move: copy the object to
// the requested shard, flip routing by persisting a pin in the cluster
// manifest, then clear the source copy. Runs under OpTimeout.
func (r *Router) handleMoveObject(w http.ResponseWriter, req *http.Request) {
	id, err := pathInt(req, "id")
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	body, err := readBody(w, req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var mv struct {
		Shard *int `json:"shard"`
	}
	if err := json.Unmarshal(body, &mv); err != nil || mv.Shard == nil {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": `cluster: move needs a "shard" field naming the destination shard`})
		return
	}
	res, err := r.MoveObject(req.Context(), id, *mv.Shard)
	if err != nil {
		r.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// ShardView is one shard's entry in GET /v1/cluster/shards: topology
// position plus live health and routing counters.
type ShardView struct {
	// ID is the stable shard identity.
	ID int `json:"id"`
	// URL is the shard gateway's base URL.
	URL string `json:"url"`
	// State is the lifecycle state.
	State string `json:"state"`
	// Healthy reports the last probe/request outcome.
	Healthy bool `json:"healthy"`
	// Routed counts requests the router sent this shard.
	Routed int64 `json:"routed"`
	// RoutedErrors counts transport failures toward this shard.
	RoutedErrors int64 `json:"routedErrors"`
}

// TopologyView is the payload of GET /v1/cluster/shards.
type TopologyView struct {
	// Version is the manifest topology version.
	Version int `json:"version"`
	// Buckets is the number of key-owning routing slots.
	Buckets int `json:"buckets"`
	// Pending is the in-flight topology operation, if any.
	Pending *PendingOp `json:"pending,omitempty"`
	// Pins maps explicitly placed object IDs to their shard.
	Pins map[int]int `json:"pins,omitempty"`
	// Shards lists every shard in routing order.
	Shards []ShardView `json:"shards"`
}

// topologyView renders the current topology with live counters.
func (r *Router) topologyView() TopologyView {
	t := r.topo.Load()
	out := TopologyView{
		Version: t.version, Buckets: t.buckets,
		Pins: copyPins(t.pins), Shards: make([]ShardView, len(t.slots)),
	}
	if p := t.pending; p != nil {
		out.Pending = &PendingOp{Kind: p.kind, ShardID: p.target.id,
			OldBuckets: p.oldBuckets, NewBuckets: p.newBuckets}
	}
	for i, s := range t.slots {
		out.Shards[i] = ShardView{
			ID: s.id, URL: s.url, State: s.State().String(), Healthy: s.healthy.Load(),
			Routed: int64(s.routed.Value()), RoutedErrors: int64(s.routedErrs.Value()),
		}
	}
	return out
}

// handleShards serves the live topology view.
func (r *Router) handleShards(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.topologyView())
}

// handleHealthz summarizes cluster health: 200 while at least one shard
// routes, 503 with Retry-After when none do.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	t := r.topo.Load()
	healthy := 0
	for _, s := range t.slots {
		if s.healthy.Load() {
			healthy++
		}
	}
	body := map[string]any{
		"status":  "ok",
		"shards":  len(t.slots),
		"healthy": healthy,
		"buckets": t.buckets,
		"pending": t.pending != nil,
	}
	if t.buckets == 0 && t.pending == nil {
		body["status"] = "no-shards"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}
