package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"scaddar/internal/obs"
)

// RouterConfig tunes the cluster router.
type RouterConfig struct {
	// ManifestPath is the cluster manifest file; topology changes are
	// persisted there atomically so a router restart recovers (and, if a
	// migration was cut short, completes) the topology. Empty means an
	// ephemeral in-memory topology (tests, examples).
	ManifestPath string
	// ShardTimeout bounds every routed or fanned-out sub-request to one
	// shard. Zero means 2s.
	ShardTimeout time.Duration
	// OpTimeout bounds a whole topology operation (shard add/drain),
	// including its key migration. Zero means 2 minutes.
	OpTimeout time.Duration
	// ProbeInterval is the health-probe period. Zero means 1s; negative
	// disables active probing (passive marking from routed requests still
	// applies).
	ProbeInterval time.Duration
	// RequestTimeout is the per-request deadline applied by Handler to
	// data-path requests. Zero means 10s.
	RequestTimeout time.Duration
	// Registry, when non-nil, receives the router's metrics (and is served
	// at GET /v1/metrics alongside the per-shard scrape). Nil means a
	// fresh registry owned by the router.
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// shard is the router's runtime handle on one shard gateway.
type shard struct {
	id  int
	url string

	state   atomic.Int32 // ShardState
	healthy atomic.Bool

	routed     *obs.Counter
	routedErrs *obs.Counter
	fanoutErrs *obs.Counter
	healthyG   *obs.Gauge
}

// State returns the shard's lifecycle state.
func (s *shard) State() ShardState { return ShardState(s.state.Load()) }

// setState transitions the lifecycle state.
func (s *shard) setState(st ShardState) { s.state.Store(int32(st)) }

// setHealthy records a probe or routed-request outcome.
func (s *shard) setHealthy(ok bool) {
	s.healthy.Store(ok)
	if ok {
		s.healthyG.Set(1)
	} else {
		s.healthyG.Set(0)
	}
}

// info renders the shard as its manifest entry.
func (s *shard) info() ShardInfo {
	return ShardInfo{ID: s.id, URL: s.url, State: s.State().String()}
}

// pendingOp is the in-memory view of a topology change whose key migration
// is still running: the old and new routing widths, and the set of moved
// objects already landed on their new home. Reads consult it lock-free —
// an object routes to its old home until the instant its migration
// completes, then to the new one.
type pendingOp struct {
	kind       string // "add" | "drain"
	oldBuckets int
	newBuckets int
	target     *shard
	moved      sync.Map // object ID → struct{}
}

// topology is the atomically-published routing state: the ordered shard
// slots, how many of them own keys, any in-flight operation, and the
// pinned-object overrides. The pins map is immutable once published — a
// move installs a fresh topology with a fresh map.
type topology struct {
	version int
	slots   []*shard
	buckets int
	pending *pendingOp
	pins    map[int]int // object ID → shard ID, overriding jump hash
}

// shardFor routes an object to its owning shard: a pin wins outright,
// otherwise jump hashing decides, honoring a pending operation's
// per-object migration progress. Returns nil when the cluster has no
// routable shards.
func (t *topology) shardFor(object int) *shard {
	if t == nil {
		return nil
	}
	if id, ok := t.pins[object]; ok {
		if sh := t.shardByID(id); sh != nil {
			return sh
		}
	}
	if p := t.pending; p != nil {
		key := RouteKey(object)
		if p.oldBuckets == 0 {
			return t.slots[JumpHash(key, p.newBuckets)]
		}
		oldSlot := JumpHash(key, p.oldBuckets)
		newSlot := JumpHash(key, p.newBuckets)
		if oldSlot == newSlot {
			return t.slots[oldSlot]
		}
		if _, ok := p.moved.Load(object); ok {
			return t.slots[newSlot]
		}
		return t.slots[oldSlot]
	}
	if t.buckets == 0 {
		return nil
	}
	return t.slots[JumpHash(RouteKey(object), t.buckets)]
}

// shardByID finds a shard handle by stable ID.
func (t *topology) shardByID(id int) *shard {
	if t == nil {
		return nil
	}
	for _, s := range t.slots {
		if s.id == id {
			return s
		}
	}
	return nil
}

// Router is the cluster front door: one HTTP surface over K shard
// gateways, with jump-consistent-hash placement, health probing, fan-out
// aggregation, and manifest-journaled topology operations.
type Router struct {
	cfg    RouterConfig
	client *http.Client
	mux    *http.ServeMux
	reg    *obs.Registry
	m      *routerMetrics

	topo atomic.Pointer[topology]

	// opMu serializes topology operations and manifest writes; nextID is
	// the shard ID allocator, guarded by it.
	opMu   sync.Mutex
	nextID int

	stop      chan struct{}
	proberEnd chan struct{}
	stopOnce  sync.Once
}

// NewRouter creates a router, recovering topology from the manifest when
// one exists. If the manifest records a pending operation, the router
// resumes serving immediately — routing reads around the half-finished
// migration — and completes the migration in the background (Reconcile
// runs it synchronously if preferred).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.ShardTimeout == 0 {
		cfg.ShardTimeout = 2 * time.Second
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = 2 * time.Minute
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:       cfg,
		client:    &http.Client{},
		reg:       reg,
		m:         newRouterMetrics(reg),
		stop:      make(chan struct{}),
		proberEnd: make(chan struct{}),
	}
	man, err := LoadManifest(cfg.ManifestPath)
	if err != nil {
		return nil, err
	}
	if man == nil {
		r.publish(&topology{})
	} else {
		if err := r.restore(man); err != nil {
			return nil, err
		}
	}
	r.routes()
	if cfg.ProbeInterval > 0 {
		go r.probeLoop()
	} else {
		close(r.proberEnd)
	}
	if r.topo.Load().pending != nil {
		go r.reconcileLoop()
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// newShard builds a runtime handle with its metric children resolved.
func (r *Router) newShard(id int, url string, st ShardState) *shard {
	s := &shard{
		id:         id,
		url:        url,
		routed:     r.m.routed.With(shardLabel(id)),
		routedErrs: r.m.routedErrs.With(shardLabel(id)),
		fanoutErrs: r.m.fanoutErrs.With(shardLabel(id)),
		healthyG:   r.m.healthy.With(shardLabel(id)),
	}
	s.setState(st)
	// Optimistic until the first probe or routed request says otherwise.
	s.setHealthy(true)
	return s
}

// restore rebuilds the runtime topology from a loaded manifest.
func (r *Router) restore(man *Manifest) error {
	slots := make([]*shard, len(man.Shards))
	for i, info := range man.Shards {
		st, err := parseShardState(info.State)
		if err != nil {
			return err
		}
		slots[i] = r.newShard(info.ID, info.URL, st)
	}
	t := &topology{version: man.Version, slots: slots, buckets: man.Buckets, pins: copyPins(man.Pins)}
	if p := man.Pending; p != nil {
		target := t.shardByID(p.ShardID)
		if target == nil {
			return fmt.Errorf("cluster: pending op names unknown shard %d", p.ShardID)
		}
		t.pending = &pendingOp{
			kind: p.Kind, oldBuckets: p.OldBuckets, newBuckets: p.NewBuckets, target: target,
		}
	}
	r.nextID = man.NextID
	r.publish(t)
	r.logf("cluster: restored topology v%d: %d shards, %d routing slots, pending=%v",
		man.Version, len(man.Shards), man.Buckets, man.Pending != nil)
	return nil
}

// publish installs a topology and refreshes the summary gauges.
func (r *Router) publish(t *topology) {
	r.topo.Store(t)
	r.m.shards.Set(float64(len(t.slots)))
	r.m.buckets.Set(float64(t.buckets))
	r.m.version.Set(float64(t.version))
	r.m.pins.Set(float64(len(t.pins)))
}

// copyPins clones a pin map; nil and empty both come back nil so empty
// topologies stay allocation-free and manifests omit the field.
func copyPins(pins map[int]int) map[int]int {
	if len(pins) == 0 {
		return nil
	}
	out := make(map[int]int, len(pins))
	for obj, id := range pins {
		out[obj] = id
	}
	return out
}

// manifestLocked renders the current topology as a manifest. opMu held.
func (r *Router) manifestLocked() *Manifest {
	t := r.topo.Load()
	man := &Manifest{
		Version: t.version,
		NextID:  r.nextID,
		Buckets: t.buckets,
		Shards:  make([]ShardInfo, len(t.slots)),
	}
	for i, s := range t.slots {
		man.Shards[i] = s.info()
	}
	man.Pins = copyPins(t.pins)
	if p := t.pending; p != nil {
		man.Pending = &PendingOp{
			Kind: p.kind, ShardID: p.target.id,
			OldBuckets: p.oldBuckets, NewBuckets: p.newBuckets,
		}
	}
	return man
}

// saveLocked persists the current topology. opMu held.
func (r *Router) saveLocked() error {
	return r.manifestLocked().Save(r.cfg.ManifestPath)
}

// Registry returns the registry the router publishes into.
func (r *Router) Registry() *obs.Registry { return r.reg }

// Topology returns the current manifest-shaped view of the topology.
func (r *Router) Topology() Manifest {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	return *r.manifestLocked()
}

// Close stops the prober and background reconciliation. It does not touch
// the shards — they are independent processes with their own lifecycles.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.proberEnd
}

// probeLoop marks shard health from periodic /v1/healthz probes.
func (r *Router) probeLoop() {
	defer close(r.proberEnd)
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			for _, s := range r.topo.Load().slots {
				s.setHealthy(r.probe(s) == nil)
			}
		}
	}
}

// probe checks one shard's health endpoint.
func (r *Router) probe(s *shard) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: shard %d healthz status %d", s.id, resp.StatusCode)
	}
	return nil
}

// reconcileLoop finishes a pending topology operation found in the
// manifest at startup, retrying until it succeeds or the router closes.
func (r *Router) reconcileLoop() {
	backoff := 100 * time.Millisecond
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.OpTimeout)
		err := r.Reconcile(ctx)
		cancel()
		if err == nil {
			return
		}
		r.logf("cluster: reconcile: %v (retrying in %s)", err, backoff)
		select {
		case <-r.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

// sessionID encodes a shard-local session as a cluster-wide one.
func sessionID(shardID, local int) int { return local*MaxShardID + shardID }

// splitSessionID inverts sessionID.
func splitSessionID(cluster int) (shardID, local int) {
	return cluster % MaxShardID, cluster / MaxShardID
}
