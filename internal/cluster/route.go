package cluster

// Key routing: object ID → shard slot, via jump consistent hashing over a
// mixed 64-bit key. This is the cluster-level analogue of SCADDAR's access
// function — arithmetic only, no directory, minimal movement on growth.

// RouteKey maps an object ID to the 64-bit key jump hashing consumes. The
// SplitMix64 finalizer whitens the small dense ID space so the jump-hash
// LCG sees uniformly distributed keys; without it, consecutive IDs would
// correlate through the multiplier and skew small clusters.
func RouteKey(object int) uint64 {
	z := uint64(object) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// JumpHash is the Lamping-Veach loop: the key doubles as LCG state and the
// candidate bucket jumps forward with geometrically increasing strides.
// It returns a bucket in [0, buckets); buckets must be positive. Growing
// buckets by one relocates each key with probability 1/(buckets+1), and
// every relocated key moves to the new bucket — the property the shard
// scaling operations and their tests rely on.
func JumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// RouteSlot returns the routing slot of an object among `buckets` shards.
func RouteSlot(object, buckets int) int {
	return JumpHash(RouteKey(object), buckets)
}
