package cluster

import (
	"fmt"
	"net/http"
	"testing"
)

// BenchmarkClusterRoute measures the pure routing decision: SplitMix64
// whitening plus the jump-hash loop. This is the arithmetic the router
// adds to every request before any network hop.
func BenchmarkClusterRoute(b *testing.B) {
	for _, buckets := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", buckets), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += RouteSlot(i, buckets)
			}
			if sink < 0 {
				b.Fatal("impossible")
			}
		})
	}
}

// BenchmarkClusterGatewayRead measures the full routed read path: router
// handler → owner resolution → HTTP hop to the shard gateway → snapshot
// lookup → response copy. Compare against the gateway package's
// BenchmarkGatewayRead to see the router's added cost.
func BenchmarkClusterGatewayRead(b *testing.B) {
	c := newTestCluster(b, 3, nil)
	const n = 32
	c.seedObjects(b, n, 8)
	h := c.router.Handler()
	paths := make([]string, n)
	for id := 0; id < n; id++ {
		paths[id] = fmt.Sprintf("/v1/objects/%d/blocks/0", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := rawReq(h, http.MethodGet, paths[i%n])
		if rec.Code != http.StatusOK {
			b.Fatalf("read: status %d: %s", rec.Code, rec.Body)
		}
	}
}
