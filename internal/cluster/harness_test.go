package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scaddar/internal/prng"
	"scaddar/internal/workload"
)

// TestClusterScaleUnderLoad is the seeded integration harness: a 3-shard
// cluster serving Zipf read traffic while a 4th shard joins and is then
// drained back out. Invariants checked:
//
//   - zero lost blocks: after both operations the catalog union equals the
//     seeded object set exactly (no loss, no duplication);
//   - every routed read is oracle-checked against the answering shard's
//     own state, during the churn and after it;
//   - the moved-key fraction of each operation is within 10% of the
//     jump-hash ideal;
//   - clients only ever observe 200 or retryable 503/409 — never a 404 or
//     500 for an object that exists.
//
// Everything is seeded (object IDs, placement seeds, Zipf draws), so a
// failure reproduces deterministically.
func TestClusterScaleUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration harness")
	}
	c := newTestCluster(t, 3, nil)
	const (
		objects = 360
		blocks  = 4
		readers = 4
	)
	c.seedObjects(t, objects, blocks)

	// Boot the joining shard before the readers start: c.shards must not be
	// appended to while reader goroutines range over it.
	extra := newTestShard(t)
	c.shards = append(c.shards, extra)

	var (
		stop     atomic.Bool
		reads    atomic.Int64
		retries  atomic.Int64
		harnessE = make(chan error, readers)
		wg       sync.WaitGroup
	)
	reader := func(seed uint64) {
		defer wg.Done()
		zipf, err := workload.NewZipf(prng.NewSplitMix64(seed), objects, 1.0)
		if err != nil {
			harnessE <- err
			return
		}
		for !stop.Load() {
			id := zipf.Draw()
			idx := int(seed+uint64(reads.Load())) % blocks
			if err := c.oracleRead(id, idx, &retries); err != nil {
				harnessE <- fmt.Errorf("reader %d: %w", seed, err)
				return
			}
			reads.Add(1)
		}
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go reader(uint64(i + 1))
	}

	// Let traffic establish, then churn the topology under it.
	time.Sleep(20 * time.Millisecond)
	_, addStats, err := c.router.AddShard(context.Background(), extra.srv.URL)
	if err != nil {
		t.Fatalf("add under load: %v", err)
	}
	if addStats.Objects != objects {
		t.Errorf("add saw %d objects, want %d", addStats.Objects, objects)
	}
	if math.Abs(addStats.Fraction-addStats.Ideal) > 0.1*addStats.Ideal {
		t.Errorf("add moved fraction %.4f not within 10%% of ideal %.4f",
			addStats.Fraction, addStats.Ideal)
	}
	time.Sleep(20 * time.Millisecond)
	drainStats, err := c.router.DrainShard(context.Background(), 3)
	if err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	if math.Abs(drainStats.Fraction-drainStats.Ideal) > 0.1*drainStats.Ideal {
		t.Errorf("drain moved fraction %.4f not within 10%% of ideal %.4f",
			drainStats.Fraction, drainStats.Ideal)
	}
	if err := c.router.RemoveShard(3); err != nil {
		t.Fatalf("remove drained shard: %v", err)
	}
	time.Sleep(20 * time.Millisecond)

	stop.Store(true)
	wg.Wait()
	close(harnessE)
	for err := range harnessE {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("harness vacuous: no reads completed")
	}
	t.Logf("harness: %d oracle-checked reads, %d retries, add moved %d/%d, drain moved %d/%d",
		reads.Load(), retries.Load(), addStats.Moved, addStats.Objects,
		drainStats.Moved, drainStats.Objects)

	// Zero lost blocks: the catalog union is exactly the seeded set.
	union := make(map[int]int)
	for _, sh := range c.shards[:3] {
		for _, id := range catalogOf(t, sh) {
			union[id]++
		}
	}
	if extra := catalogOf(t, c.shards[3]); len(extra) != 0 {
		t.Errorf("removed shard still holds %d objects", len(extra))
	}
	if len(union) != objects {
		missing := []int{}
		for id := 0; id < objects; id++ {
			if union[id] == 0 {
				missing = append(missing, id)
			}
		}
		sort.Ints(missing)
		t.Fatalf("catalog union holds %d/%d objects; missing %v", len(union), objects, missing)
	}
	for id, copies := range union {
		if copies != 1 {
			t.Errorf("object %d has %d copies", id, copies)
		}
	}
	// Final placement is the 3-wide jump hash again, and every block of
	// every object reads correctly against its owner.
	for id := 0; id < objects; id++ {
		slot := RouteSlot(id, 3)
		for idx := 0; idx < blocks; idx++ {
			routed := c.readVia(t, id, idx)
			direct, code := readDirect(t, c.shards[slot], id, idx)
			if code != http.StatusOK {
				t.Fatalf("object %d not on its home shard %d (status %d)", id, slot, code)
			}
			if routed["disk"] != direct["disk"] || routed["block"] != direct["block"] {
				t.Fatalf("object %d block %d: routed %v != direct %v", id, idx, routed, direct)
			}
		}
	}
}

// oracleRead performs one routed read and verifies the answer against the
// answering shard directly. 503 (backpressure) and transient mismatches
// caused by an object moving between the two requests are retried; real
// errors are returned.
func (c *testCluster) oracleRead(id, idx int, retries *atomic.Int64) error {
	path := fmt.Sprintf("/v1/objects/%d/blocks/%d", id, idx)
	for attempt := 0; attempt < 100; attempt++ {
		rec := rawReq(c.router.Handler(), http.MethodGet, path)
		switch rec.Code {
		case http.StatusOK:
			var routed map[string]any
			if err := jsonDecode(rec, &routed); err != nil {
				return err
			}
			if int(routed["object"].(float64)) != id || int(routed["block"].(float64)) != idx {
				return fmt.Errorf("read %s answered for %v/%v", path, routed["object"], routed["block"])
			}
			shardID := rec.Header().Get(ShardHeader)
			sh := c.shardByLabel(shardID)
			if sh == nil {
				return fmt.Errorf("read %s: unknown shard header %q", path, shardID)
			}
			drec := rawReq(sh.g.Handler(), http.MethodGet, path)
			if drec.Code == http.StatusNotFound {
				// The object moved off that shard between the two requests
				// (migration in flight); try again.
				retries.Add(1)
				continue
			}
			if drec.Code != http.StatusOK {
				return fmt.Errorf("oracle read %s on shard %s: status %d", path, shardID, drec.Code)
			}
			var direct map[string]any
			if err := jsonDecode(drec, &direct); err != nil {
				return err
			}
			if routed["disk"] != direct["disk"] {
				return fmt.Errorf("read %s: routed disk %v != direct disk %v", path, routed["disk"], direct["disk"])
			}
			return nil
		case http.StatusServiceUnavailable, http.StatusConflict:
			retries.Add(1)
			time.Sleep(2 * time.Millisecond)
		default:
			return fmt.Errorf("read %s: status %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	return fmt.Errorf("read %s: no success in 100 attempts", path)
}

// shardByLabel finds a test shard by its router-assigned ID label.
func (c *testCluster) shardByLabel(label string) *testShard {
	for i, sh := range c.shards {
		if shardLabel(i) == label {
			return sh
		}
	}
	return nil
}

// rawReq runs one request against a handler without a testing.TB (used on
// reader goroutines, where t.Fatal is off-limits).
func rawReq(h http.Handler, method, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// jsonDecode unmarshals a recorder body, again TB-free.
func jsonDecode(rec *httptest.ResponseRecorder, v any) error {
	return json.Unmarshal(rec.Body.Bytes(), v)
}
