package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"scaddar/internal/cm"
	"scaddar/internal/gateway"
	"scaddar/internal/obs"
	"scaddar/internal/placement"
	"scaddar/internal/prng"
)

func testFactory(seed uint64) prng.Source { return prng.NewSplitMix64(seed) }

// testShard is one in-process shard: a real gateway served over HTTP.
type testShard struct {
	g   *gateway.Gateway
	srv *httptest.Server
}

// newTestShard boots an empty shard gateway on a loopback HTTP server.
func newTestShard(t testing.TB) *testShard { return newTestShardWith(t, nil) }

// newTestShardWith boots a shard whose HTTP handler is optionally wrapped
// (fault injection for the fan-out tests).
func newTestShardWith(t testing.TB, wrap func(http.Handler) http.Handler) *testShard {
	t.Helper()
	strat, err := placement.NewScaddar(4, placement.NewX0Func(testFactory))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cm.NewServer(cm.DefaultConfig(), strat)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gateway.New(srv, gateway.Config{
		Factory:  testFactory,
		Round:    2 * time.Millisecond,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var h http.Handler = g.Handler()
	if wrap != nil {
		h = wrap(h)
	}
	hs := httptest.NewServer(h)
	t.Cleanup(func() {
		hs.Close()
		g.Close()
	})
	return &testShard{g: g, srv: hs}
}

// testCluster is a router fronting k in-process shards.
type testCluster struct {
	router *Router
	shards []*testShard
}

// newTestCluster boots k shards and a router with them joined, using fast
// timeouts and no active prober (health is probed at join and marked
// passively afterwards).
func newTestCluster(t testing.TB, k int, mutate func(*RouterConfig)) *testCluster {
	t.Helper()
	cfg := RouterConfig{
		ShardTimeout:   time.Second,
		OpTimeout:      30 * time.Second,
		ProbeInterval:  -1,
		RequestTimeout: 30 * time.Second,
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	c := &testCluster{router: r}
	for i := 0; i < k; i++ {
		c.addShard(t)
	}
	return c
}

// addShard boots one more shard and joins it to the router.
func (c *testCluster) addShard(t testing.TB) (ShardInfo, MigrationStats) {
	t.Helper()
	sh := newTestShard(t)
	c.shards = append(c.shards, sh)
	info, stats, err := c.router.AddShard(context.Background(), sh.srv.URL)
	if err != nil {
		t.Fatalf("AddShard: %v", err)
	}
	return info, stats
}

// seedObject loads one object through the router's admin surface.
func (c *testCluster) seedObject(t testing.TB, id, blocks int) {
	t.Helper()
	rec := c.do(t, http.MethodPost, "/v1/admin/objects", map[string]any{
		"id": id, "seed": uint64(1000 + id), "blocks": blocks,
		"bitrateBitsPerSec": 4 << 20,
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("seed object %d: status %d: %s", id, rec.Code, rec.Body)
	}
}

// seedObjects loads objects 0..n-1 with the given block count.
func (c *testCluster) seedObjects(t testing.TB, n, blocks int) {
	t.Helper()
	for id := 0; id < n; id++ {
		c.seedObject(t, id, blocks)
	}
}

// do runs one request against the router handler.
func (c *testCluster) do(t testing.TB, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	return doReq(t, c.router.Handler(), method, path, body)
}

// doReq runs one request against any handler.
func doReq(t testing.TB, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// decode unmarshals a recorded JSON body.
func decode(t testing.TB, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body, err)
	}
}

// readVia reads object id block idx through the router and returns the
// response map; fails the test on a non-200 unless allow503 retries are
// left (it retries 503s, the router's backpressure shape).
func (c *testCluster) readVia(t testing.TB, id, idx int) map[string]any {
	t.Helper()
	path := fmt.Sprintf("/v1/objects/%d/blocks/%d", id, idx)
	for attempt := 0; ; attempt++ {
		rec := c.do(t, http.MethodGet, path, nil)
		if rec.Code == http.StatusOK {
			var out map[string]any
			decode(t, rec, &out)
			return out
		}
		if rec.Code == http.StatusServiceUnavailable && attempt < 50 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("read %d/%d: status %d: %s", id, idx, rec.Code, rec.Body)
	}
}

// readDirect reads object id block idx straight from one shard gateway,
// bypassing the router — the oracle the routed answer is checked against.
func readDirect(t testing.TB, sh *testShard, id, idx int) (map[string]any, int) {
	t.Helper()
	rec := doReq(t, sh.g.Handler(), http.MethodGet,
		fmt.Sprintf("/v1/objects/%d/blocks/%d", id, idx), nil)
	if rec.Code != http.StatusOK {
		return nil, rec.Code
	}
	var out map[string]any
	decode(t, rec, &out)
	return out, rec.Code
}

// catalogOf lists a shard's object IDs via its admin surface.
func catalogOf(t testing.TB, sh *testShard) []int {
	t.Helper()
	rec := doReq(t, sh.g.Handler(), http.MethodGet, "/v1/admin/objects", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("catalog: status %d: %s", rec.Code, rec.Body)
	}
	var items []struct {
		ID int `json:"id"`
	}
	decode(t, rec, &items)
	ids := make([]int, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	return ids
}
