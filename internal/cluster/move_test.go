package cluster

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
)

// moveVia drives POST /v1/cluster/objects/{id}/move through the router's
// HTTP surface and decodes the result.
func (c *testCluster) moveVia(t testing.TB, object, shard int) (MoveResult, *int) {
	t.Helper()
	rec := c.do(t, http.MethodPost, pathMove(object), map[string]any{"shard": shard})
	if rec.Code != http.StatusOK {
		code := rec.Code
		return MoveResult{}, &code
	}
	var res MoveResult
	decode(t, rec, &res)
	return res, nil
}

func pathMove(object int) string {
	return "/v1/cluster/objects/" + itoa(object) + "/move"
}

func itoa(v int) string { return shardLabel(v) }

// holders returns which of the cluster's shards list the object.
func (c *testCluster) holders(t testing.TB, object int) []int {
	t.Helper()
	var out []int
	for i, sh := range c.shards {
		for _, id := range catalogOf(t, sh) {
			if id == object {
				out = append(out, i)
			}
		}
	}
	return out
}

// offHomeObject returns an object in [0, n) whose natural home among
// `buckets` shards is NOT `slot` — a candidate for pinning onto slot.
func offHomeObject(t testing.TB, n, buckets, slot int) int {
	t.Helper()
	for id := 0; id < n; id++ {
		if RouteSlot(id, buckets) != slot {
			return id
		}
	}
	t.Fatalf("no object in [0,%d) routes away from slot %d", n, slot)
	return -1
}

// TestMoveObjectPinsAndUnpins moves an object off its natural home and
// back: the pin must appear in the topology view, reads must route to the
// pinned shard, exactly one copy must exist throughout, and moving the
// object home again must erase the pin.
func TestMoveObjectPinsAndUnpins(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	const objects = 12
	c.seedObjects(t, objects, 2)

	id := offHomeObject(t, objects, 2, 1)
	home := RouteSlot(id, 2)

	res, code := c.moveVia(t, id, 1)
	if code != nil {
		t.Fatalf("move: status %d", *code)
	}
	if !res.Moved || !res.Pinned {
		t.Fatalf("move result %+v: want Moved and Pinned", res)
	}
	if res.From.ID != home || res.To.ID != 1 {
		t.Errorf("move result %+v: want from shard %d to shard 1", res, home)
	}
	if got := c.holders(t, id); len(got) != 1 || got[0] != 1 {
		t.Fatalf("object %d held by shards %v, want exactly [1]", id, got)
	}
	var view TopologyView
	decode(t, c.do(t, http.MethodGet, "/v1/cluster/shards", nil), &view)
	if view.Pins[id] != 1 {
		t.Errorf("topology pins %v missing object %d → shard 1", view.Pins, id)
	}

	// Routed reads now land on the pinned shard, and agree with it.
	routed := c.readVia(t, id, 0)
	direct, status := readDirect(t, c.shards[1], id, 0)
	if status != http.StatusOK {
		t.Fatalf("pinned shard does not serve object %d: status %d", id, status)
	}
	if routed["disk"] != direct["disk"] || routed["block"] != direct["block"] {
		t.Errorf("routed read %v != pinned shard's answer %v", routed, direct)
	}

	// Moving the object back to its natural home erases the pin.
	res, code = c.moveVia(t, id, home)
	if code != nil {
		t.Fatalf("move home: status %d", *code)
	}
	if !res.Moved || res.Pinned {
		t.Fatalf("move home result %+v: want Moved and not Pinned", res)
	}
	if got := c.holders(t, id); len(got) != 1 || got[0] != home {
		t.Fatalf("object %d held by shards %v, want exactly [%d]", id, got, home)
	}
	var after TopologyView
	decode(t, c.do(t, http.MethodGet, "/v1/cluster/shards", nil), &after)
	if len(after.Pins) != 0 {
		t.Errorf("pins %v not erased after moving home", after.Pins)
	}
}

// TestMoveObjectIdempotent re-runs a move: the second pass must be a
// harmless no-op reporting Moved=false, with still exactly one copy.
func TestMoveObjectIdempotent(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.seedObjects(t, 8, 2)
	id := offHomeObject(t, 8, 2, 1)

	if res, code := c.moveVia(t, id, 1); code != nil || !res.Moved {
		t.Fatalf("first move: code=%v res=%+v", code, res)
	}
	res, code := c.moveVia(t, id, 1)
	if code != nil {
		t.Fatalf("second move: status %d", *code)
	}
	if res.Moved || !res.Pinned {
		t.Errorf("second move %+v: want not Moved, still Pinned", res)
	}
	if got := c.holders(t, id); len(got) != 1 || got[0] != 1 {
		t.Fatalf("object %d held by shards %v, want exactly [1]", id, got)
	}
}

// TestMoveObjectErrors checks the operator-input failure modes: unknown
// object (404), unknown destination shard (400), missing body field (400).
func TestMoveObjectErrors(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.seedObjects(t, 4, 2)

	if _, code := c.moveVia(t, 999, 1); code == nil || *code != http.StatusNotFound {
		t.Errorf("unknown object: code %v, want 404", code)
	}
	if _, code := c.moveVia(t, 0, 7); code == nil || *code != http.StatusBadRequest {
		t.Errorf("unknown shard: code %v, want 400", code)
	}
	rec := c.do(t, http.MethodPost, pathMove(0), map[string]any{})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing shard field: status %d, want 400", rec.Code)
	}
	if _, err := c.router.MoveObject(context.Background(), 999, 1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("MoveObject(999): %v, want ErrUnknownObject", err)
	}
}

// TestPinnedObjectSitsOutTopologyChanges pins an object that jump hashing
// would relocate on the next shard add, then adds a shard: the pinned
// object must stay put, routed reads must keep hitting its pin, and the
// migration stats must exclude it from the movable population.
func TestPinnedObjectSitsOutTopologyChanges(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	const objects = 24
	c.seedObjects(t, objects, 2)

	// Find an object that WOULD move when the cluster grows 2→3 shards,
	// and pin it where it already lives.
	mover := -1
	for id := 0; id < objects; id++ {
		if RouteSlot(id, 2) != RouteSlot(id, 3) {
			mover = id
			break
		}
	}
	if mover < 0 {
		t.Fatal("no object relocates on 2→3 growth")
	}
	homeSlot := RouteSlot(mover, 2)
	if res, code := c.moveVia(t, mover, homeSlot); code != nil || res.Pinned {
		t.Fatalf("pin-in-place setup: code=%v res=%+v", code, res)
	}
	// Moving home doesn't pin; move it to the OTHER original shard so the
	// pin exists and survives the growth.
	other := 1 - homeSlot
	if res, code := c.moveVia(t, mover, other); code != nil || !res.Pinned {
		t.Fatalf("pin setup: code=%v res=%+v", code, res)
	}

	_, stats := c.addShard(t)
	if stats.Objects != objects-1 {
		t.Errorf("migration saw %d movable objects, want %d (pinned object excluded)",
			stats.Objects, objects-1)
	}
	if got := c.holders(t, mover); len(got) != 1 || got[0] != other {
		t.Fatalf("pinned object %d held by shards %v after growth, want [%d]", mover, got, other)
	}
	routed := c.readVia(t, mover, 0)
	direct, status := readDirect(t, c.shards[other], mover, 0)
	if status != http.StatusOK {
		t.Fatalf("pinned shard lost object %d: status %d", mover, status)
	}
	if routed["disk"] != direct["disk"] {
		t.Errorf("routed read %v != pinned shard's answer %v", routed, direct)
	}
}

// TestDrainRefusedWhilePinned pins an object to the tail shard and asserts
// the drain is refused until the object is moved off it.
func TestDrainRefusedWhilePinned(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	const objects = 16
	c.seedObjects(t, objects, 2)

	id := offHomeObject(t, objects, 3, 2)
	if res, code := c.moveVia(t, id, 2); code != nil || !res.Pinned {
		t.Fatalf("pin to tail: code=%v res=%+v", code, res)
	}
	if _, err := c.router.DrainShard(context.Background(), 2); !errors.Is(err, ErrBadShardOp) {
		t.Fatalf("drain with pinned object: %v, want ErrBadShardOp", err)
	}
	// Move the object back home; the drain must then proceed.
	if _, code := c.moveVia(t, id, RouteSlot(id, 3)); code != nil {
		t.Fatalf("unpin: status %d", *code)
	}
	if _, err := c.router.DrainShard(context.Background(), 2); err != nil {
		t.Fatalf("drain after unpin: %v", err)
	}
}

// TestPinPersistsAcrossRestart moves an object, restarts the router from
// its manifest, and checks the pin still routes the object.
func TestPinPersistsAcrossRestart(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	c := newTestCluster(t, 2, func(cfg *RouterConfig) { cfg.ManifestPath = manifest })
	const objects = 8
	c.seedObjects(t, objects, 2)
	id := offHomeObject(t, objects, 2, 1)
	if res, code := c.moveVia(t, id, 1); code != nil || !res.Pinned {
		t.Fatalf("move: code=%v res=%+v", code, res)
	}

	c.router.Close()
	r2, err := NewRouter(RouterConfig{ManifestPath: manifest, ProbeInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r2.Close)
	topo := r2.Topology()
	if topo.Pins[id] != 1 {
		t.Fatalf("restored manifest pins %v, want object %d → shard 1", topo.Pins, id)
	}
	rec := doReq(t, r2.Handler(), http.MethodGet, pathBlocks(id, 0), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("routed read after restart: status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(ShardHeader); got != shardLabel(1) {
		t.Errorf("read routed to shard %q, want pinned shard 1", got)
	}
}

func pathBlocks(id, idx int) string {
	return "/v1/objects/" + itoa(id) + "/blocks/" + itoa(idx)
}

// TestManifestRejectsBadPins exercises the manifest validation of the pins
// table: unknown and drained pin targets are refused.
func TestManifestRejectsBadPins(t *testing.T) {
	base := Manifest{
		Version: 1, NextID: 2, Buckets: 1,
		Shards: []ShardInfo{
			{ID: 0, URL: "http://a", State: "active"},
			{ID: 1, URL: "http://b", State: "drained"},
		},
	}
	ok := base
	ok.Pins = map[int]int{7: 0}
	if err := ok.validate(); err != nil {
		t.Errorf("valid pin rejected: %v", err)
	}
	unknown := base
	unknown.Pins = map[int]int{7: 9}
	if err := unknown.validate(); err == nil {
		t.Error("pin to unknown shard accepted")
	}
	drained := base
	drained.Pins = map[int]int{7: 1}
	if err := drained.validate(); err == nil {
		t.Error("pin to drained shard accepted")
	}
}
