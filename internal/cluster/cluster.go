// Package cluster scales the system horizontally: K independent shard
// servers — each a full gateway.Gateway with its own cm.Server, SCADDAR
// history, durable journal, and round driver — fronted by one Router that
// maps object IDs to shards with jump consistent hashing (Lamping & Veach).
//
// The layering mirrors SCADDAR's own guarantee one level up. Within a
// shard, SCADDAR's RO1 moves the minimal block fraction when a *disk* is
// added or removed; across shards, jump hashing moves the minimal key
// fraction when a *shard* is added or removed, and the relocations are
// monotone — when the cluster grows from K to K+1 shards, every moved
// object lands on the new shard, never between survivors. The router
// therefore needs no per-object directory for placement: an object's home
// shard is pure arithmetic over its ID, exactly as a block's disk is pure
// arithmetic over its seed and the operation log.
//
// The Router serves the shards' /v1 API transparently: object, session,
// and read operations route directly to the owning shard, while
// /v1/metrics, /v1/status, and /v1/trace fan out to every shard with a
// per-shard deadline and aggregate partial results — one slow or dead
// shard degrades its own entry, never the whole scrape. Topology changes
// go through POST /v1/cluster/shards (add, drain, remove), migrating only
// the jump-hash-moved key fraction and journaling progress in a cluster
// manifest so a router restart recovers — and completes — the topology.
// Individual objects can be placed by hand with POST
// /v1/cluster/objects/{id}/move, which relocates one object with the same
// copy→flip-routing→delete sequence and records the override as a pin in
// the manifest; pinned objects route to their pinned shard ahead of the
// hash and sit out topology migrations until moved back home.
// A shard that is down or draining answers 503 with Retry-After at the
// router, the same backpressure contract the gateway itself uses; the
// rest of the cluster keeps serving (the DxHash failed-node stance:
// route around unavailability, do not remap the world for it).
package cluster

import (
	"errors"
	"fmt"
)

// Typed router errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrNoShards is returned while the cluster has no routable shards.
	ErrNoShards = errors.New("cluster: no shards attached")
	// ErrShardDown is returned when the owning shard is unreachable or
	// failing its health probe; the request is retryable (503+Retry-After).
	ErrShardDown = errors.New("cluster: shard down")
	// ErrShardDraining is returned for new work routed at a draining
	// shard; the condition clears when the drain completes (503+Retry-After).
	ErrShardDraining = errors.New("cluster: shard draining")
	// ErrOpInFlight is returned when a topology change is requested while
	// another one is still migrating keys.
	ErrOpInFlight = errors.New("cluster: topology operation in flight")
	// ErrBadShardOp marks a topology request the cluster's rules reject —
	// draining a non-tail shard, removing an undrained or unknown one,
	// re-adding a URL already in the topology. These are operator input
	// errors (4xx), not router failures (5xx).
	ErrBadShardOp = errors.New("invalid shard operation")
)

// ShardState is a shard's place in the topology lifecycle.
type ShardState int

const (
	// ShardActive: the shard owns a routing slot and serves its keys.
	ShardActive ShardState = iota
	// ShardDraining: the shard's keys are being migrated off; new sessions
	// for its objects are refused with 503+Retry-After, reads keep serving
	// from wherever each object currently lives.
	ShardDraining
	// ShardDrained: the drain completed; the shard owns no keys and only
	// awaits removal from the topology.
	ShardDrained
)

// String returns the manifest spelling of the state.
func (s ShardState) String() string {
	switch s {
	case ShardActive:
		return "active"
	case ShardDraining:
		return "draining"
	case ShardDrained:
		return "drained"
	default:
		return fmt.Sprintf("ShardState(%d)", int(s))
	}
}

// parseShardState inverts String for manifest loading.
func parseShardState(s string) (ShardState, error) {
	switch s {
	case "active":
		return ShardActive, nil
	case "draining":
		return ShardDraining, nil
	case "drained":
		return ShardDrained, nil
	default:
		return 0, fmt.Errorf("cluster: unknown shard state %q", s)
	}
}

// ShardInfo is one shard's topology entry: a stable ID (assigned once,
// never reused), the base URL of its gateway, and its lifecycle state.
// The order of ShardInfo entries in the manifest IS the routing order —
// jump hashing maps keys to positions in that sequence.
type ShardInfo struct {
	// ID is the stable shard identity; session IDs embed it, so it must
	// stay below MaxShardID.
	ID int `json:"id"`
	// URL is the shard gateway's base URL, e.g. "http://127.0.0.1:8081".
	URL string `json:"url"`
	// State is the lifecycle state ("active", "draining", "drained").
	State string `json:"state"`
}

// MaxShardID bounds shard IDs so cluster-wide session IDs can embed the
// owning shard reversibly: cluster session = shard-local session ID *
// MaxShardID + shard ID.
const MaxShardID = 1 << 10
