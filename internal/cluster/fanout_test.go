package cluster

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scaddar/internal/obs"
)

// slowHandler wraps a shard handler with a togglable delay, simulating a
// shard that stops answering without closing its socket — the case the
// fan-out deadlines exist for.
type slowHandler struct {
	h     http.Handler
	delay atomic.Int64 // nanoseconds; 0 = passthrough
}

func (s *slowHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(s.delay.Load()); d > 0 {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(d):
		}
	}
	s.h.ServeHTTP(w, r)
}

// newSlowCluster boots a 3-shard cluster whose last shard can be made
// arbitrarily slow, with a tight fan-out deadline.
func newSlowCluster(t *testing.T) (*testCluster, *slowHandler) {
	t.Helper()
	cfg := RouterConfig{
		ShardTimeout:   100 * time.Millisecond,
		OpTimeout:      30 * time.Second,
		ProbeInterval:  -1,
		RequestTimeout: 30 * time.Second,
		Logf:           t.Logf,
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	c := &testCluster{router: r}
	var slow *slowHandler
	for i := 0; i < 3; i++ {
		var sh *testShard
		if i == 2 {
			slow = &slowHandler{}
			sh = newTestShardWith(t, func(h http.Handler) http.Handler {
				slow.h = h
				return slow
			})
		} else {
			sh = newTestShard(t)
		}
		c.shards = append(c.shards, sh)
		if _, _, err := r.AddShard(context.Background(), sh.srv.URL); err != nil {
			t.Fatalf("AddShard: %v", err)
		}
	}
	c.seedObjects(t, 24, 4)
	return c, slow
}

// TestStatusPartialOnSlowShard checks the aggregated status returns within
// the fan-out deadline with the slow shard reported as an error entry and
// the healthy shards' documents intact — no hang, no 500.
func TestStatusPartialOnSlowShard(t *testing.T) {
	c, slow := newSlowCluster(t)
	slow.delay.Store(int64(2 * time.Second))
	start := time.Now()
	rec := c.do(t, http.MethodGet, "/v1/status", nil)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status: code %d: %s", rec.Code, rec.Body)
	}
	if elapsed > time.Second {
		t.Fatalf("aggregation took %s; per-shard deadline is 100ms", elapsed)
	}
	var out ClusterStatus
	decode(t, rec, &out)
	if len(out.Shards) != 3 {
		t.Fatalf("status lists %d shards, want 3", len(out.Shards))
	}
	if out.Shards[2].Error == "" {
		t.Error("slow shard has no error field")
	}
	if out.Shards[2].Status != nil {
		t.Error("slow shard produced a status document")
	}
	for i := 0; i < 2; i++ {
		if out.Shards[i].Error != "" || len(out.Shards[i].Status) == 0 {
			t.Errorf("healthy shard %d: error=%q status len %d",
				i, out.Shards[i].Error, len(out.Shards[i].Status))
		}
	}
	if out.Cluster.Buckets != 3 {
		t.Errorf("cluster view buckets %d, want 3", out.Cluster.Buckets)
	}
}

// TestMetricsPartialOnSlowShard checks the aggregated Prometheus page
// stays parseable and partial when one shard cannot be scraped.
func TestMetricsPartialOnSlowShard(t *testing.T) {
	c, slow := newSlowCluster(t)
	// Generate some routed traffic first so shard samples exist.
	for id := 0; id < 6; id++ {
		c.readVia(t, id, 0)
	}
	slow.delay.Store(int64(2 * time.Second))
	start := time.Now()
	rec := c.do(t, http.MethodGet, "/v1/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: code %d", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("metrics aggregation took %s", elapsed)
	}
	page := rec.Body.String()
	if !strings.Contains(page, "# shard 2 scrape failed") {
		t.Error("no scrape-failure comment for the slow shard")
	}
	samples, err := obs.ParseText(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("aggregated page does not parse: %v", err)
	}
	ms := obs.NewMetricSet(samples)
	if _, ok := ms.Value("cluster_routed_total"); !ok {
		t.Error("router's own cluster_routed_total missing")
	}
	// Healthy shards' samples carry the spliced shard label.
	foundShard0 := false
	for _, s := range samples {
		if s.Label("shard") == "0" && strings.HasPrefix(s.Name, "gateway_") {
			foundShard0 = true
			break
		}
	}
	if !foundShard0 {
		t.Error("no relabeled gateway_* samples for shard 0")
	}
	for _, s := range samples {
		if s.Label("shard") == "2" && strings.HasPrefix(s.Name, "gateway_") {
			t.Error("slow shard contributed samples; expected none")
			break
		}
	}
}

// TestTracePartialOnSlowShard checks the merged trace dump degrades the
// same way.
func TestTracePartialOnSlowShard(t *testing.T) {
	c, slow := newSlowCluster(t)
	slow.delay.Store(int64(2 * time.Second))
	rec := c.do(t, http.MethodGet, "/v1/trace", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace: code %d", rec.Code)
	}
	var out struct {
		Shards []shardTrace `json:"shards"`
	}
	decode(t, rec, &out)
	if len(out.Shards) != 3 {
		t.Fatalf("trace lists %d shards", len(out.Shards))
	}
	if out.Shards[2].Error == "" {
		t.Error("slow shard trace has no error")
	}
	if out.Shards[0].Error != "" || len(out.Shards[0].Trace) == 0 {
		t.Error("healthy shard trace missing")
	}
}

// TestObjectsMergePartial checks the merged object listing serves the
// reachable shards' objects with the failed shard in the errors map, and
// serves the transparent flat-array shape when every shard answers.
func TestObjectsMergePartial(t *testing.T) {
	c, slow := newSlowCluster(t)

	rec := c.do(t, http.MethodGet, "/v1/objects", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("objects: code %d", rec.Code)
	}
	var flat []struct {
		ID int `json:"id"`
	}
	decode(t, rec, &flat)
	if len(flat) != 24 {
		t.Fatalf("merged listing holds %d objects, want 24", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if flat[i].ID <= flat[i-1].ID {
			t.Fatalf("merged listing not sorted at %d: %d after %d", i, flat[i].ID, flat[i-1].ID)
		}
	}

	slow.delay.Store(int64(2 * time.Second))
	rec = c.do(t, http.MethodGet, "/v1/objects", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial objects: code %d", rec.Code)
	}
	var partial struct {
		Objects []struct {
			ID int `json:"id"`
		} `json:"objects"`
		Errors map[string]string `json:"errors"`
	}
	decode(t, rec, &partial)
	if partial.Errors["2"] == "" {
		t.Fatalf("no error entry for the slow shard: %s", rec.Body)
	}
	wantLive := 0
	for id := 0; id < 24; id++ {
		if RouteSlot(id, 3) != 2 {
			wantLive++
		}
	}
	if len(partial.Objects) != wantLive {
		t.Errorf("partial listing holds %d objects, want %d", len(partial.Objects), wantLive)
	}
}

// TestFanoutDeadlineIndependent checks each shard gets its own deadline:
// a slow shard does not consume the budget of the others (they are probed
// concurrently, so total time ≈ one ShardTimeout, not three).
func TestFanoutDeadlineIndependent(t *testing.T) {
	c, slow := newSlowCluster(t)
	slow.delay.Store(int64(2 * time.Second))
	start := time.Now()
	for i := 0; i < 3; i++ {
		rec := c.do(t, http.MethodGet, "/v1/status", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("three aggregations took %s; deadlines are not independent", elapsed)
	}
}
