package cluster

import (
	"context"
	"errors"
	"fmt"
)

// Cross-shard object move: relocate one object to an operator-chosen shard,
// overriding jump-hash placement with a pin. The move reuses the topology
// migration's copy→flip-routing→delete sequence and inherits its crash
// contract: the destination is written first, the pin (the routing flip) is
// persisted in the manifest second, and the source copy is cleared last,
// so every crash window leaves either the old routing with the old copy
// intact or the new routing with the new copy intact — re-running the same
// move finishes whichever half remains.

// ErrUnknownObject is returned when a move names an object no shard's
// catalog holds.
var ErrUnknownObject = errors.New("cluster: unknown object")

// MoveResult reports one cross-shard object move.
type MoveResult struct {
	// Object is the moved object's ID.
	Object int `json:"object"`
	// From is the shard that held the object before the move.
	From ShardInfo `json:"from"`
	// To is the shard holding the object after the move.
	To ShardInfo `json:"to"`
	// Moved reports whether the object actually changed shards (false when
	// it already lived on the destination).
	Moved bool `json:"moved"`
	// Pinned reports whether the object is now pinned: true unless the
	// destination is the object's natural jump-hash home, in which case the
	// move erases any previous pin and hash routing takes back over.
	Pinned bool `json:"pinned"`
}

// MoveObject relocates an object onto the named shard and records the
// placement override as a pin in the cluster manifest. Moving an object to
// its natural jump-hash home erases its pin instead — that is also how an
// earlier override is undone. Pinned objects are skipped by topology
// migrations and block a drain of their shard until moved off it.
//
// The operation is idempotent: re-running a move that crashed between any
// two of its steps (copy, pin flip, source delete) completes it, because
// the destination add tolerates "already there", the delete sweep tolerates
// "already gone", and the pin write is an atomic manifest rewrite.
func (r *Router) MoveObject(ctx context.Context, object, shardID int) (MoveResult, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	var res MoveResult
	t := r.topo.Load()
	if t.pending != nil {
		return res, ErrOpInFlight
	}
	if t.buckets == 0 {
		return res, ErrNoShards
	}
	dst := t.shardByID(shardID)
	if dst == nil {
		return res, fmt.Errorf("cluster: no shard %d: %w", shardID, ErrBadShardOp)
	}
	if dst.State() != ShardActive {
		return res, fmt.Errorf("cluster: shard %d is %s: %w", shardID, dst.State(), ErrBadShardOp)
	}
	src := t.shardFor(object)
	res.Object, res.From, res.To = object, src.info(), dst.info()

	// The routed home holds the object in every reachable state: an
	// untouched object sits at its hash (or previously pinned) home, a move
	// that crashed before the pin flip left it there too, and one that
	// crashed after the flip routes — via the new pin — to the destination
	// where the copy already landed.
	cat, err := r.fetchCatalog(ctx, src)
	if err != nil {
		return res, fmt.Errorf("cluster: catalog of shard %d: %w", src.id, err)
	}
	var meta catalogObject
	found := false
	for _, obj := range cat {
		if obj.ID == object {
			meta, found = obj, true
			break
		}
	}
	if !found {
		return res, fmt.Errorf("cluster: object %d is not in shard %d's catalog: %w",
			object, src.id, ErrUnknownObject)
	}

	// Copy: land the object on the destination ("already there" is success,
	// covering both a same-shard move and a resumed crashed one).
	if err := r.addObject(ctx, dst, meta); err != nil {
		return res, fmt.Errorf("cluster: add object %d to shard %d: %w", object, dst.id, err)
	}

	// Flip routing: persist the pin before any source copy is cleared. A
	// move onto the natural hash home erases the pin — the override is no
	// longer carrying information the hash doesn't.
	pins := copyPins(t.pins)
	natural := t.slots[RouteSlot(object, t.buckets)]
	if dst == natural {
		delete(pins, object)
	} else {
		if pins == nil {
			pins = make(map[int]int, 1)
		}
		pins[object] = dst.id
	}
	res.Pinned = dst != natural
	r.publish(&topology{version: t.version + 1, slots: t.slots, buckets: t.buckets, pins: pins})
	if err := r.saveLocked(); err != nil {
		return res, err
	}

	// Delete: sweep the stale copy wherever it sits. The common case is one
	// targeted delete from the old home, but sweeping every other shard in
	// the same pass also clears duplicates an earlier crashed move left
	// behind — shard counts are small and "already gone" is free.
	for _, s := range t.slots {
		if s == dst {
			continue
		}
		if err := r.deleteObject(ctx, s, object); err != nil {
			return res, fmt.Errorf("cluster: remove object %d from shard %d: %w", object, s.id, err)
		}
	}
	res.Moved = src != dst
	if res.Moved {
		r.m.objectMoves.Inc()
		r.logf("cluster: object %d moved from shard %d to shard %d (pinned=%v)",
			object, src.id, dst.id, res.Pinned)
	}
	return res, nil
}
