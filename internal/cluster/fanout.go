package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"scaddar/internal/obs"
)

// fanResult is one shard's answer to a fanned-out aggregation request.
type fanResult struct {
	shard  *shard
	status int
	body   []byte
	err    error
}

// fanout issues GET path to every shard concurrently, each sub-request
// under its own ShardTimeout deadline. It always returns one result per
// slot — a slow or dead shard yields an error entry after its deadline,
// never a hang: the aggregate's latency is bounded by the slowest shard or
// ShardTimeout, whichever is smaller.
func (r *Router) fanout(ctx context.Context, path string) []fanResult {
	t := r.topo.Load()
	results := make([]fanResult, len(t.slots))
	var wg sync.WaitGroup
	for i, s := range t.slots {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			results[i] = r.fanOne(ctx, s, path)
		}(i, s)
	}
	wg.Wait()
	return results
}

// fanOne performs a single fan-out sub-request. Errors are recorded per
// shard (metrics + result) but never fail the aggregate.
func (r *Router) fanOne(ctx context.Context, s *shard, path string) fanResult {
	cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, s.url+path, nil)
	if err != nil {
		s.fanoutErrs.Inc()
		return fanResult{shard: s, err: err}
	}
	resp, err := r.client.Do(req)
	if err != nil {
		s.fanoutErrs.Inc()
		return fanResult{shard: s, err: fmt.Errorf("shard %d: %w", s.id, err)}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		s.fanoutErrs.Inc()
		return fanResult{shard: s, err: fmt.Errorf("shard %d: %w", s.id, err)}
	}
	if resp.StatusCode != http.StatusOK {
		s.fanoutErrs.Inc()
		return fanResult{shard: s, status: resp.StatusCode,
			err: fmt.Errorf("shard %d: status %d", s.id, resp.StatusCode)}
	}
	return fanResult{shard: s, status: resp.StatusCode, body: body}
}

// handleMetrics serves the cluster-wide Prometheus page: the router's own
// registry first, then every shard's samples re-emitted with a shard label
// spliced in. A shard that fails to scrape contributes a comment line and
// a cluster_fanout_errors_total increment — partial results, never a 500.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), "/v1/metrics")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	_ = r.reg.WritePrometheus(&buf)
	for _, res := range results {
		if res.err != nil {
			fmt.Fprintf(&buf, "# shard %d scrape failed: %s\n", res.shard.id, res.err)
			continue
		}
		samples, err := obs.ParseText(bytes.NewReader(res.body))
		if err != nil {
			res.shard.fanoutErrs.Inc()
			fmt.Fprintf(&buf, "# shard %d scrape unparseable: %s\n", res.shard.id, err)
			continue
		}
		writeShardSamples(&buf, res.shard.id, samples)
	}
	_, _ = w.Write(buf.Bytes())
}

// writeShardSamples re-emits parsed shard samples with shard=<id> added as
// the first label, preserving the original labels (sorted for stability).
func writeShardSamples(w io.Writer, shardID int, samples []obs.Sample) {
	for _, s := range samples {
		fmt.Fprintf(w, "%s{shard=%q", s.Name, shardLabel(shardID))
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, ",%s=%q", k, escapeLabelValue(s.Labels[k]))
		}
		fmt.Fprintf(w, "} %s\n", formatSampleValue(s.Value))
	}
}

// escapeLabelValue escapes a label value for re-emission. %q handles \\ and
// \" already, so only literal newlines need help — but guard anyway.
func escapeLabelValue(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatSampleValue renders a re-emitted sample value, keeping the
// Prometheus spellings for infinities and NaN.
func formatSampleValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ShardStatus is one shard's slice of the aggregated GET /v1/status
// response: identity and health always, the shard's own status document
// when the scrape succeeded, an error string when it did not.
type ShardStatus struct {
	// ID is the shard's stable identity.
	ID int `json:"id"`
	// URL is the shard gateway's base URL.
	URL string `json:"url"`
	// State is the shard lifecycle state.
	State string `json:"state"`
	// Healthy mirrors the router's live health view.
	Healthy bool `json:"healthy"`
	// Status is the shard's own /v1/status document, when reachable.
	Status json.RawMessage `json:"status,omitempty"`
	// Error explains a failed scrape; the rest of the response is still
	// served (partial aggregation).
	Error string `json:"error,omitempty"`
}

// ClusterStatus is the aggregated GET /v1/status payload.
type ClusterStatus struct {
	// Cluster is the router's topology view.
	Cluster TopologyView `json:"cluster"`
	// Shards holds each shard's status or scrape error, in routing order.
	Shards []ShardStatus `json:"shards"`
}

// handleStatus aggregates every shard's status document under per-shard
// deadlines, reporting unreachable shards inline instead of failing.
func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), "/v1/status")
	out := ClusterStatus{Cluster: r.topologyView(), Shards: make([]ShardStatus, len(results))}
	for i, res := range results {
		ss := ShardStatus{ID: res.shard.id, URL: res.shard.url,
			State: res.shard.State().String(), Healthy: res.shard.healthy.Load()}
		if res.err != nil {
			ss.Error = res.err.Error()
		} else {
			ss.Status = json.RawMessage(res.body)
		}
		out.Shards[i] = ss
	}
	writeJSON(w, http.StatusOK, out)
}

// shardTrace is one shard's slice of the aggregated trace dump.
type shardTrace struct {
	ID    int             `json:"id"`
	Trace json.RawMessage `json:"trace,omitempty"`
	Error string          `json:"error,omitempty"`
}

// handleTrace aggregates the per-shard span rings.
func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), "/v1/trace")
	out := make([]shardTrace, len(results))
	for i, res := range results {
		st := shardTrace{ID: res.shard.id}
		if res.err != nil {
			st.Error = res.err.Error()
		} else {
			st.Trace = json.RawMessage(res.body)
		}
		out[i] = st
	}
	writeJSON(w, http.StatusOK, map[string]any{"shards": out})
}

// mergedObject carries one /v1/objects entry through the merge with enough
// structure to sort by ID while preserving the shard's own encoding.
type mergedObject struct {
	id  int
	raw json.RawMessage
}

// handleObjects merges the shards' object listings into one cluster-wide
// catalog, sorted by object ID. Shards that fail to answer are reported in
// an errors side-channel while the reachable shards' objects still serve.
func (r *Router) handleObjects(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), "/v1/objects")
	var merged []mergedObject
	errs := map[string]string{}
	for _, res := range results {
		if res.err != nil {
			errs[shardLabel(res.shard.id)] = res.err.Error()
			continue
		}
		var items []json.RawMessage
		if err := json.Unmarshal(res.body, &items); err != nil {
			errs[shardLabel(res.shard.id)] = "unparseable listing: " + err.Error()
			continue
		}
		for _, it := range items {
			var idOnly struct {
				ID int `json:"id"`
			}
			_ = json.Unmarshal(it, &idOnly)
			merged = append(merged, mergedObject{id: idOnly.ID, raw: it})
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].id < merged[j].id })
	objects := make([]json.RawMessage, len(merged))
	for i, m := range merged {
		objects[i] = m.raw
	}
	if len(errs) == 0 {
		// Transparent shape: exactly what one gateway would serve.
		writeJSON(w, http.StatusOK, objects)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"objects": objects, "errors": errs})
}

// handleAdminObjects merges the shards' full admin catalogs (the listing
// migration itself uses, shard by shard) into one cluster catalog.
func (r *Router) handleAdminObjects(w http.ResponseWriter, req *http.Request) {
	results := r.fanout(req.Context(), "/v1/admin/objects")
	var merged []catalogObject
	errs := map[string]string{}
	for _, res := range results {
		if res.err != nil {
			errs[shardLabel(res.shard.id)] = res.err.Error()
			continue
		}
		var items []catalogObject
		if err := json.Unmarshal(res.body, &items); err != nil {
			errs[shardLabel(res.shard.id)] = "unparseable catalog: " + err.Error()
			continue
		}
		merged = append(merged, items...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	if len(errs) == 0 {
		writeJSON(w, http.StatusOK, merged)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"objects": merged, "errors": errs})
}
