package cluster

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"testing"
)

// TestClusterRoutesReads seeds objects through the router and checks every
// routed read against the owning shard's own answer (the oracle), plus the
// shard attribution header.
func TestClusterRoutesReads(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	const n = 48
	c.seedObjects(t, n, 6)
	for id := 0; id < n; id++ {
		slot := RouteSlot(id, 3)
		rec := c.do(t, http.MethodGet, fmt.Sprintf("/v1/objects/%d/blocks/0", id), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", id, rec.Code, rec.Body)
		}
		if got := rec.Header().Get(ShardHeader); got != strconv.Itoa(slot) {
			t.Errorf("read %d: %s=%q, want %q", id, ShardHeader, got, strconv.Itoa(slot))
		}
		var routed map[string]any
		decode(t, rec, &routed)
		direct, code := readDirect(t, c.shards[slot], id, 0)
		if code != http.StatusOK {
			t.Fatalf("oracle read %d on shard %d: status %d", id, slot, code)
		}
		if routed["disk"] != direct["disk"] || routed["block"] != direct["block"] {
			t.Errorf("read %d: routed %v != direct %v", id, routed, direct)
		}
	}
	// Placement respected: every shard holds exactly its jump-hash keys.
	for slot, sh := range c.shards {
		want := 0
		for id := 0; id < n; id++ {
			if RouteSlot(id, 3) == slot {
				want++
			}
		}
		if got := len(catalogOf(t, sh)); got != want {
			t.Errorf("shard %d holds %d objects, want %d", slot, got, want)
		}
	}
}

// TestClusterSessionLifecycle opens, reads, seeks, and closes a session
// through the router, checking the cluster session ID encodes the shard.
func TestClusterSessionLifecycle(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	c.seedObjects(t, 12, 8)
	const obj = 5
	rec := c.do(t, http.MethodPost, "/v1/sessions", map[string]any{"object": obj})
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("open session: status %d: %s", rec.Code, rec.Body)
	}
	var open map[string]any
	decode(t, rec, &open)
	cid := int(open["session"].(float64))
	shardID, _ := splitSessionID(cid)
	if want := RouteSlot(obj, 3); shardID != want {
		t.Fatalf("session %d encodes shard %d, want %d", cid, shardID, want)
	}
	rec = c.do(t, http.MethodGet, fmt.Sprintf("/v1/sessions/%d", cid), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get session: status %d: %s", rec.Code, rec.Body)
	}
	var got map[string]any
	decode(t, rec, &got)
	if int(got["session"].(float64)) != cid {
		t.Fatalf("get session returned ID %v, want %d", got["session"], cid)
	}
	rec = c.do(t, http.MethodPost, fmt.Sprintf("/v1/sessions/%d/seek", cid), map[string]any{"position": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("seek: status %d: %s", rec.Code, rec.Body)
	}
	rec = c.do(t, http.MethodDelete, fmt.Sprintf("/v1/sessions/%d", cid), nil)
	if rec.Code != http.StatusOK && rec.Code != http.StatusNoContent {
		t.Fatalf("close: status %d: %s", rec.Code, rec.Body)
	}
	// A session naming an unknown shard is a clean 404, not a panic.
	rec = c.do(t, http.MethodGet, fmt.Sprintf("/v1/sessions/%d", sessionID(999, 1)), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown-shard session: status %d, want 404", rec.Code)
	}
}

// TestAddShardMigratesMinimally grows 3→4 shards under a seeded catalog
// and checks the moved set is exactly the jump-hash prediction: the moved
// fraction is within 10% of the 1/4 ideal, every moved object landed on
// the new shard, and no object was lost or duplicated.
func TestAddShardMigratesMinimally(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	const n = 360
	c.seedObjects(t, n, 4)
	_, stats := c.addShard(t)
	if stats.Objects != n {
		t.Fatalf("migration saw %d objects, want %d", stats.Objects, n)
	}
	wantMoved := 0
	for id := 0; id < n; id++ {
		if RouteSlot(id, 3) != RouteSlot(id, 4) {
			wantMoved++
		}
	}
	if stats.Moved != wantMoved {
		t.Errorf("moved %d objects, jump hash predicts %d", stats.Moved, wantMoved)
	}
	if math.Abs(stats.Fraction-stats.Ideal) > 0.1*stats.Ideal {
		t.Errorf("moved fraction %.4f not within 10%% of ideal %.4f", stats.Fraction, stats.Ideal)
	}
	seen := make(map[int]int)
	for slot, sh := range c.shards {
		for _, id := range catalogOf(t, sh) {
			seen[id]++
			if want := RouteSlot(id, 4); slot != want {
				t.Errorf("object %d on shard %d, want %d", id, slot, want)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("catalog union holds %d objects, want %d", len(seen), n)
	}
	for id, copies := range seen {
		if copies != 1 {
			t.Errorf("object %d has %d copies", id, copies)
		}
	}
	// Every object still readable through the router.
	for id := 0; id < n; id++ {
		c.readVia(t, id, 0)
	}
}

// TestDrainShard drains the tail shard and checks tail-only enforcement,
// catalog emptiness, and removal.
func TestDrainShard(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	const n = 90
	c.seedObjects(t, n, 4)
	ctx := context.Background()

	// Only the tail routing slot may drain.
	if _, err := c.router.DrainShard(ctx, 0); err == nil {
		t.Fatal("draining a non-tail shard succeeded")
	}
	stats, err := c.router.DrainShard(ctx, 2)
	if err != nil {
		t.Fatalf("drain tail: %v", err)
	}
	wantMoved := 0
	for id := 0; id < n; id++ {
		if RouteSlot(id, 3) == 2 {
			wantMoved++
		}
	}
	if stats.Moved != wantMoved {
		t.Errorf("drain moved %d, want the tail's %d keys", stats.Moved, wantMoved)
	}
	if got := len(catalogOf(t, c.shards[2])); got != 0 {
		t.Errorf("drained shard still holds %d objects", got)
	}
	// All objects survive on the remaining shards and read correctly.
	for id := 0; id < n; id++ {
		out := c.readVia(t, id, 0)
		slot := RouteSlot(id, 2)
		direct, code := readDirect(t, c.shards[slot], id, 0)
		if code != http.StatusOK || out["disk"] != direct["disk"] {
			t.Errorf("object %d after drain: routed %v direct %v (code %d)", id, out, direct, code)
		}
	}
	// Drained shard refuses removal only while still in the window; here it
	// is out, so removal succeeds and a fresh shard can join again.
	if err := c.router.RemoveShard(2); err != nil {
		t.Fatalf("remove drained shard: %v", err)
	}
	if got := len(c.router.Topology().Shards); got != 2 {
		t.Fatalf("topology lists %d shards after removal, want 2", got)
	}
	c.addShard(t)
	for id := 0; id < n; id++ {
		c.readVia(t, id, 0)
	}
}

// TestDrainLastShardRefused pins the guard against draining to zero.
func TestDrainLastShardRefused(t *testing.T) {
	c := newTestCluster(t, 1, nil)
	if _, err := c.router.DrainShard(context.Background(), 0); err == nil {
		t.Fatal("draining the last shard succeeded")
	}
}

// TestManifestRecovery restarts the router from its manifest and checks
// topology, routing, and version survive.
func TestManifestRecovery(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	c := newTestCluster(t, 2, func(cfg *RouterConfig) { cfg.ManifestPath = manifest })
	const n = 24
	c.seedObjects(t, n, 4)
	before := c.router.Topology()
	c.router.Close()

	r2, err := NewRouter(RouterConfig{
		ManifestPath: manifest, ProbeInterval: -1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer r2.Close()
	after := r2.Topology()
	if after.Version != before.Version || after.Buckets != before.Buckets ||
		len(after.Shards) != len(before.Shards) {
		t.Fatalf("recovered topology %+v != saved %+v", after, before)
	}
	for id := 0; id < n; id++ {
		rec := doReq(t, r2.Handler(), http.MethodGet, fmt.Sprintf("/v1/objects/%d/blocks/0", id), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d after restart: status %d: %s", id, rec.Code, rec.Body)
		}
	}
}

// TestPendingOpResume simulates a router crash mid-add: the manifest holds
// a pending op whose migration is half-finished (nothing moved yet), and a
// restarted router must complete it — landing exactly the moved keys on
// the new shard with none lost.
func TestPendingOpResume(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	c := newTestCluster(t, 2, func(cfg *RouterConfig) { cfg.ManifestPath = manifest })
	const n = 60
	c.seedObjects(t, n, 4)

	// A third shard, joined "by a crashed router": it is in the manifest
	// with a pending add, but no keys have moved.
	extra := newTestShard(t)
	c.shards = append(c.shards, extra)
	man := c.router.Topology()
	c.router.Close()
	man.Shards = append(man.Shards, ShardInfo{ID: man.NextID, URL: extra.srv.URL, State: "active"})
	man.Pending = &PendingOp{Kind: "add", ShardID: man.NextID, OldBuckets: 2, NewBuckets: 3}
	man.NextID++
	if err := man.Save(manifest); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRouter(RouterConfig{
		ManifestPath: manifest, ProbeInterval: -1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("restart with pending op: %v", err)
	}
	defer r2.Close()
	// Reads must serve even before reconciliation (routed to old homes).
	rec := doReq(t, r2.Handler(), http.MethodGet, "/v1/objects/0/blocks/0", nil)
	if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("read during pending op: status %d: %s", rec.Code, rec.Body)
	}
	if err := r2.Reconcile(context.Background()); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
	if p := r2.Topology().Pending; p != nil {
		t.Fatalf("pending op survived reconcile: %+v", p)
	}
	// Post-reconcile: all objects present exactly once, at their 3-shard
	// homes, and readable through the restarted router.
	seen := make(map[int]bool)
	for slot, sh := range c.shards {
		for _, id := range catalogOf(t, sh) {
			if seen[id] {
				t.Errorf("object %d duplicated", id)
			}
			seen[id] = true
			if want := RouteSlot(id, 3); slot != want {
				t.Errorf("object %d on shard %d, want %d", id, slot, want)
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("%d objects after resume, want %d", len(seen), n)
	}
	for id := 0; id < n; id++ {
		rec := doReq(t, r2.Handler(), http.MethodGet, fmt.Sprintf("/v1/objects/%d/blocks/0", id), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read %d after resume: status %d: %s", id, rec.Code, rec.Body)
		}
	}
}

// TestDownShardBackpressure stops one shard and checks its keys answer
// 503+Retry-After while other shards' keys keep serving.
func TestDownShardBackpressure(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	const n = 30
	c.seedObjects(t, n, 4)
	c.shards[1].srv.Close()
	saw503, saw200 := false, false
	for id := 0; id < n; id++ {
		rec := c.do(t, http.MethodGet, fmt.Sprintf("/v1/objects/%d/blocks/0", id), nil)
		switch {
		case RouteSlot(id, 3) == 1:
			if rec.Code != http.StatusServiceUnavailable {
				t.Errorf("object %d on dead shard: status %d, want 503", id, rec.Code)
			}
			if rec.Header().Get("Retry-After") == "" {
				t.Errorf("object %d: 503 without Retry-After", id)
			}
			saw503 = true
		default:
			if rec.Code != http.StatusOK {
				t.Errorf("object %d on live shard: status %d: %s", id, rec.Code, rec.Body)
			}
			saw200 = true
		}
	}
	if !saw503 || !saw200 {
		t.Fatalf("test vacuous: saw503=%v saw200=%v", saw503, saw200)
	}
	// Session opens to the dead shard's keys are refused the same way.
	for id := 0; id < n; id++ {
		if RouteSlot(id, 3) != 1 {
			continue
		}
		rec := c.do(t, http.MethodPost, "/v1/sessions", map[string]any{"object": id})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("session open to dead shard: status %d, want 503", rec.Code)
		}
		break
	}
}

// TestDrainingShardRefusesSessions restores a topology whose tail shard is
// mid-drain and checks new sessions bounce with 503 while reads and
// existing-session operations still pass through.
func TestDrainingShardRefusesSessions(t *testing.T) {
	manifest := filepath.Join(t.TempDir(), "cluster.json")
	c := newTestCluster(t, 2, func(cfg *RouterConfig) { cfg.ManifestPath = manifest })
	const n = 24
	c.seedObjects(t, n, 4)
	man := c.router.Topology()
	c.router.Close()
	man.Shards[1].State = "draining"
	man.Version++
	if err := man.Save(manifest); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(RouterConfig{ManifestPath: manifest, ProbeInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	checked := false
	for id := 0; id < n; id++ {
		if RouteSlot(id, 2) != 1 {
			continue
		}
		rec := doReq(t, r2.Handler(), http.MethodPost, "/v1/sessions", map[string]any{"object": id})
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("session open on draining shard: status %d, want 503", rec.Code)
		}
		rec = doReq(t, r2.Handler(), http.MethodGet, fmt.Sprintf("/v1/objects/%d/blocks/0", id), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("read on draining shard: status %d, want 200", rec.Code)
		}
		checked = true
		break
	}
	if !checked {
		t.Fatal("no object routed to the draining shard; widen n")
	}
}

// TestShardOpEndpoint drives add/drain/remove through the HTTP surface.
func TestShardOpEndpoint(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.seedObjects(t, 40, 4)

	extra := newTestShard(t)
	c.shards = append(c.shards, extra)
	rec := c.do(t, http.MethodPost, "/v1/cluster/shards", map[string]any{"op": "add", "url": extra.srv.URL})
	if rec.Code != http.StatusOK {
		t.Fatalf("add op: status %d: %s", rec.Code, rec.Body)
	}
	var resp shardOpResponse
	decode(t, rec, &resp)
	if resp.Shard.ID != 2 || resp.Migration == nil || resp.Migration.Objects != 40 {
		t.Fatalf("add response %+v", resp)
	}

	rec = c.do(t, http.MethodGet, "/v1/cluster/shards", nil)
	var view TopologyView
	decode(t, rec, &view)
	if view.Buckets != 3 || len(view.Shards) != 3 {
		t.Fatalf("topology view %+v", view)
	}

	rec = c.do(t, http.MethodPost, "/v1/cluster/shards", map[string]any{"op": "drain", "id": 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("drain op: status %d: %s", rec.Code, rec.Body)
	}
	rec = c.do(t, http.MethodPost, "/v1/cluster/shards", map[string]any{"op": "remove", "id": 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("remove op: status %d: %s", rec.Code, rec.Body)
	}
	rec = c.do(t, http.MethodPost, "/v1/cluster/shards", map[string]any{"op": "chaos"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad op: status %d, want 400", rec.Code)
	}
	// Operator-input mistakes are client errors, not router failures.
	for _, tc := range []struct {
		body map[string]any
		want int
	}{
		{map[string]any{"op": "drain", "id": 9}, http.StatusBadRequest},  // unknown shard: not the tail
		{map[string]any{"op": "drain", "id": 0}, http.StatusBadRequest},  // non-tail
		{map[string]any{"op": "remove", "id": 0}, http.StatusBadRequest}, // still routing
		{map[string]any{"op": "remove", "id": 9}, http.StatusNotFound},   // unknown shard
		{map[string]any{"op": "add", "url": c.shards[0].srv.URL}, http.StatusBadRequest}, // duplicate URL
	} {
		rec = c.do(t, http.MethodPost, "/v1/cluster/shards", tc.body)
		if rec.Code != tc.want {
			t.Fatalf("%v: status %d, want %d: %s", tc.body, rec.Code, tc.want, rec.Body)
		}
	}
	for id := 0; id < 40; id++ {
		c.readVia(t, id, 0)
	}
}

// TestEmptyClusterServes503 checks the zero-shard router degrades cleanly.
func TestEmptyClusterServes503(t *testing.T) {
	r, err := NewRouter(RouterConfig{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := doReq(t, r.Handler(), http.MethodGet, "/v1/objects/0/blocks/0", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("read on empty cluster: status %d, want 503", rec.Code)
	}
	rec = doReq(t, r.Handler(), http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz on empty cluster: status %d, want 503", rec.Code)
	}
}
