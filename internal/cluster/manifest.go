package cluster

import (
	"encoding/json"
	"fmt"
	"os"

	"scaddar/internal/fsio"
)

// Manifest is the cluster's durable topology record: the routing-ordered
// shard list, the ID allocator's frontier, and any topology operation that
// was in flight when the record was written. It is rewritten atomically
// (write-temp + fsync + rename, via fsio.WriteFileAtomic) at every
// topology transition — before a migration starts and after it completes —
// so a router restart always finds either the old stable topology, or the
// new one, or the old one plus a pending-op marker it can finish.
//
// Recovery contract: object migration is idempotent (add-to-destination
// tolerates "already there", delete-from-source tolerates "already gone",
// destination is written before the source is cleared), so a router that
// finds Pending non-nil re-walks every key the pending operation moves and
// completes whichever half-finished migrations it finds. No per-object
// progress is journaled — the shards' own catalogs are the progress record.
type Manifest struct {
	// Version counts topology transitions; it only ever grows.
	Version int `json:"version"`
	// NextID is the next shard ID to assign; IDs are never reused.
	NextID int `json:"nextId"`
	// Buckets is the number of leading Shards entries that own keys (a
	// drained tail shard stays listed until removed but owns none).
	Buckets int `json:"buckets"`
	// Shards is the routing-ordered shard list.
	Shards []ShardInfo `json:"shards"`
	// Pending, when non-nil, records a topology operation whose key
	// migration had not completed when the manifest was written.
	Pending *PendingOp `json:"pending,omitempty"`
	// Pins maps object IDs to the shard that explicitly holds them,
	// overriding jump-hash placement. A pin is written by the cross-shard
	// move API (flip-routing happens by persisting the pin before the
	// source copy is deleted) and erased when the object is moved back to
	// its natural home. Pinned objects are skipped by topology migrations.
	Pins map[int]int `json:"pins,omitempty"`
}

// PendingOp is the durable marker of an in-flight topology change.
type PendingOp struct {
	// Kind is "add" or "drain".
	Kind string `json:"kind"`
	// ShardID is the shard being added or drained.
	ShardID int `json:"shardId"`
	// OldBuckets and NewBuckets are the routing widths before and after
	// the operation; the moved key set is exactly the objects whose jump
	// hash differs between them.
	OldBuckets int `json:"oldBuckets"`
	// NewBuckets is the post-operation routing width.
	NewBuckets int `json:"newBuckets"`
}

// LoadManifest reads a manifest file. A missing file returns (nil, nil):
// the router starts with an empty topology and writes the first manifest
// on the first AddShard.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parse manifest %s: %w", path, err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Save writes the manifest atomically. An empty path is a no-op (an
// ephemeral router, used by tests and examples, keeps topology in memory).
func (m *Manifest) Save(path string) error {
	if path == "" {
		return nil
	}
	if err := m.validate(); err != nil {
		return fmt.Errorf("cluster: refusing to save manifest: %w", err)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return fsio.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// validate checks the structural invariants recovery depends on.
func (m *Manifest) validate() error {
	if m.Buckets < 0 || m.Buckets > len(m.Shards) {
		return fmt.Errorf("buckets %d outside [0,%d]", m.Buckets, len(m.Shards))
	}
	seen := make(map[int]bool, len(m.Shards))
	for i, sh := range m.Shards {
		if sh.ID < 0 || sh.ID >= MaxShardID {
			return fmt.Errorf("shard ID %d outside [0,%d)", sh.ID, MaxShardID)
		}
		if sh.ID >= m.NextID {
			return fmt.Errorf("shard ID %d not below NextID %d", sh.ID, m.NextID)
		}
		if seen[sh.ID] {
			return fmt.Errorf("duplicate shard ID %d", sh.ID)
		}
		seen[sh.ID] = true
		if sh.URL == "" {
			return fmt.Errorf("shard %d has no URL", sh.ID)
		}
		if _, err := parseShardState(sh.State); err != nil {
			return err
		}
		// Drained shards may only trail the routing window.
		if sh.State == ShardDrained.String() && i < m.Buckets {
			return fmt.Errorf("drained shard %d inside the routing window", sh.ID)
		}
	}
	states := make(map[int]string, len(m.Shards))
	for _, sh := range m.Shards {
		states[sh.ID] = sh.State
	}
	for obj, id := range m.Pins {
		if !seen[id] {
			return fmt.Errorf("pin for object %d names unknown shard %d", obj, id)
		}
		// The drain guard refuses to drain a shard with pins, so a pin to a
		// drained shard can only come from hand-editing — reject it.
		if states[id] == ShardDrained.String() {
			return fmt.Errorf("pin for object %d names drained shard %d", obj, id)
		}
	}
	if p := m.Pending; p != nil {
		if p.Kind != "add" && p.Kind != "drain" {
			return fmt.Errorf("pending op kind %q", p.Kind)
		}
		if !seen[p.ShardID] {
			return fmt.Errorf("pending op names unknown shard %d", p.ShardID)
		}
		if p.NewBuckets > len(m.Shards) || p.OldBuckets > len(m.Shards) {
			return fmt.Errorf("pending op widths %d→%d exceed %d shards",
				p.OldBuckets, p.NewBuckets, len(m.Shards))
		}
		if diff := p.NewBuckets - p.OldBuckets; diff != 1 && diff != -1 {
			return fmt.Errorf("pending op widths %d→%d are not adjacent", p.OldBuckets, p.NewBuckets)
		}
	}
	return nil
}
