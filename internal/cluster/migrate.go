package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Topology operations: add, drain, and remove a shard, plus the migration
// engine they share. The movement contract mirrors SCADDAR's RO1 one level
// up: an operation migrates exactly the objects whose jump hash differs
// between the old and new routing widths — ~1/(K+1) of the keys on an add
// to K+1 shards, the drained shard's own keys on a drain — and nothing
// else. Each object's migration is idempotent (destination written before
// the source is cleared, duplicates and already-gones tolerated), which is
// what lets a restarted router finish a cut-short operation by simply
// re-running it.

// catalogObject is the admin-surface catalog entry shipped between shards.
type catalogObject struct {
	// ID is the object ID (the routing key).
	ID int `json:"id"`
	// Seed is the SCADDAR placement seed.
	Seed uint64 `json:"seed"`
	// Blocks is the object's block count.
	Blocks int `json:"blocks"`
	// BlockBytes is the object's block size.
	BlockBytes int64 `json:"blockBytes"`
	// BitrateBitsPerSec is the display rate.
	BitrateBitsPerSec int64 `json:"bitrateBitsPerSec"`
}

// MigrationStats summarizes one topology operation's key movement.
type MigrationStats struct {
	// Objects is the total key population at the time of the operation.
	Objects int `json:"objects"`
	// Moved is how many objects the operation migrated.
	Moved int `json:"moved"`
	// Fraction is Moved/Objects (0 when the cluster was empty).
	Fraction float64 `json:"fraction"`
	// Ideal is the minimal fraction jump hashing predicts for the
	// operation: 1/newK for an add, 1/oldK for a drain.
	Ideal float64 `json:"ideal"`
}

// AddShard joins a shard gateway to the cluster: it is appended as the new
// tail routing slot and exactly the jump-hash-moved key fraction migrates
// onto it. The manifest is written with a pending-op marker before any key
// moves and rewritten clean after the migration completes, so a crash
// between the two leaves a resumable operation, never a lost object. The
// shard must be reachable and must not already hold objects.
func (r *Router) AddShard(ctx context.Context, url string) (ShardInfo, MigrationStats, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	var stats MigrationStats
	t := r.topo.Load()
	if t.pending != nil {
		return ShardInfo{}, stats, ErrOpInFlight
	}
	if t.buckets != len(t.slots) {
		return ShardInfo{}, stats, fmt.Errorf("cluster: remove drained shards before adding (have %d slots, %d routing): %w",
			len(t.slots), t.buckets, ErrBadShardOp)
	}
	if r.nextID >= MaxShardID {
		return ShardInfo{}, stats, fmt.Errorf("cluster: shard ID space exhausted (%d)", MaxShardID)
	}
	for _, s := range t.slots {
		if s.url == url {
			return ShardInfo{}, stats, fmt.Errorf("cluster: shard %d already at %s: %w", s.id, url, ErrBadShardOp)
		}
	}
	sh := r.newShard(r.nextID, url, ShardActive)
	if err := r.probe(sh); err != nil {
		return ShardInfo{}, stats, fmt.Errorf("cluster: new shard unreachable: %w: %w", err, ErrBadShardOp)
	}
	cat, err := r.fetchCatalog(ctx, sh)
	if err != nil {
		return ShardInfo{}, stats, fmt.Errorf("cluster: new shard catalog: %w", err)
	}
	if len(cat) > 0 {
		return ShardInfo{}, stats, fmt.Errorf("cluster: new shard %s already holds %d objects: %w", url, len(cat), ErrBadShardOp)
	}
	r.nextID++
	slots := append(append([]*shard(nil), t.slots...), sh)
	nt := &topology{
		version: t.version,
		slots:   slots,
		buckets: t.buckets,
		pending: &pendingOp{kind: "add", oldBuckets: t.buckets, newBuckets: t.buckets + 1, target: sh},
		pins:    t.pins,
	}
	r.publish(nt)
	if err := r.saveLocked(); err != nil {
		return ShardInfo{}, stats, err
	}
	stats, err = r.completePendingLocked(ctx)
	if err != nil {
		return sh.info(), stats, err
	}
	r.logf("cluster: shard %d joined at %s: moved %d/%d objects (%.1f%%, ideal %.1f%%)",
		sh.id, url, stats.Moved, stats.Objects, 100*stats.Fraction, 100*stats.Ideal)
	return sh.info(), stats, nil
}

// DrainShard migrates every key off the tail routing shard and marks it
// Drained. Jump hashing removes minimally only at the tail (the same
// interface restriction the placement-layer Jump strategy documents), so
// only the highest routing slot can be drained; the drained shard then
// awaits RemoveShard. During the drain the shard refuses new sessions
// (503+Retry-After through the router) while reads keep serving from
// wherever each object currently lives.
func (r *Router) DrainShard(ctx context.Context, id int) (MigrationStats, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	var stats MigrationStats
	t := r.topo.Load()
	if t.pending != nil {
		return stats, ErrOpInFlight
	}
	if t.buckets == 0 {
		return stats, ErrNoShards
	}
	tail := t.slots[t.buckets-1]
	if tail.id != id {
		return stats, fmt.Errorf("cluster: only the tail routing shard %d can be drained (got %d): jump hashing removes minimally at the tail only: %w",
			tail.id, id, ErrBadShardOp)
	}
	if t.buckets == 1 {
		return stats, fmt.Errorf("cluster: refusing to drain the last routing shard %d: %w", id, ErrBadShardOp)
	}
	// Pinned objects are placed by operator decision, not by the hash, so
	// the drain must not silently overrule it; refuse until they are moved.
	for obj, pinned := range t.pins {
		if pinned == tail.id {
			return stats, fmt.Errorf("cluster: object %d is pinned to shard %d; move it before draining: %w",
				obj, pinned, ErrBadShardOp)
		}
	}
	tail.setState(ShardDraining)
	nt := &topology{
		version: t.version,
		slots:   t.slots,
		buckets: t.buckets,
		pending: &pendingOp{kind: "drain", oldBuckets: t.buckets, newBuckets: t.buckets - 1, target: tail},
		pins:    t.pins,
	}
	r.publish(nt)
	if err := r.saveLocked(); err != nil {
		return stats, err
	}
	stats, err := r.completePendingLocked(ctx)
	if err != nil {
		return stats, err
	}
	r.logf("cluster: shard %d drained: moved %d/%d objects (%.1f%%, ideal %.1f%%)",
		id, stats.Moved, stats.Objects, 100*stats.Fraction, 100*stats.Ideal)
	return stats, nil
}

// RemoveShard drops a Drained shard from the topology. Draining and
// removal are separate steps so operators can verify the drain (and keep
// the empty shard as a fast re-add target) before forgetting it.
func (r *Router) RemoveShard(id int) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	t := r.topo.Load()
	if t.pending != nil {
		return ErrOpInFlight
	}
	idx := -1
	for i, s := range t.slots {
		if s.id == id {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("cluster: no shard %d: %w", id, ErrBadShardOp)
	}
	if idx < t.buckets {
		return fmt.Errorf("cluster: shard %d still owns routing slot %d; drain it first: %w", id, idx, ErrBadShardOp)
	}
	slots := append(append([]*shard(nil), t.slots[:idx]...), t.slots[idx+1:]...)
	r.publish(&topology{version: t.version + 1, slots: slots, buckets: t.buckets, pins: t.pins})
	return r.saveLocked()
}

// Reconcile completes a pending topology operation (typically one a
// previous router process left behind), migrating whatever keys remain.
// It is a no-op when the topology is stable.
func (r *Router) Reconcile(ctx context.Context) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if r.topo.Load().pending == nil {
		return nil
	}
	_, err := r.completePendingLocked(ctx)
	return err
}

// completePendingLocked runs the pending operation's key migration to the
// end and finalizes the topology + manifest. opMu held. On error the
// pending marker stays in place (in memory and in the manifest) so the
// operation can be resumed.
func (r *Router) completePendingLocked(ctx context.Context) (MigrationStats, error) {
	t := r.topo.Load()
	p := t.pending
	start := time.Now()
	stats, err := r.migrateKeys(ctx, t)
	if err != nil {
		return stats, err
	}
	r.m.migrateSeconds.ObserveDuration(time.Since(start))
	r.m.migrations.Inc()
	if p.kind == "drain" {
		p.target.setState(ShardDrained)
	}
	r.publish(&topology{version: t.version + 1, slots: t.slots, buckets: p.newBuckets, pins: t.pins})
	return stats, r.saveLocked()
}

// migrateKeys moves every object whose routing slot differs between the
// pending operation's old and new widths. The key population is enumerated
// from the shards' own catalogs (they are the progress record: a crashed
// earlier attempt shows up as objects already at their new home, possibly
// still duplicated at the old one). Objects are processed in ID order for
// determinism.
func (r *Router) migrateKeys(ctx context.Context, t *topology) (MigrationStats, error) {
	p := t.pending
	var stats MigrationStats
	if p.oldBuckets == 0 {
		// First shard of an empty cluster: no keys can exist yet.
		return stats, nil
	}
	stats.Ideal = 1 / float64(p.newBuckets)
	if p.kind == "drain" {
		stats.Ideal = 1 / float64(p.oldBuckets)
	}
	// holder[id] = slot index currently holding the object; meta[id] = its
	// catalog entry. A duplicate (mid-crash state) prefers the new home.
	holder := make(map[int]int)
	meta := make(map[int]catalogObject)
	for i := 0; i < len(t.slots); i++ {
		cat, err := r.fetchCatalog(ctx, t.slots[i])
		if err != nil {
			return stats, fmt.Errorf("cluster: catalog of shard %d: %w", t.slots[i].id, err)
		}
		for _, obj := range cat {
			if _, dup := holder[obj.ID]; dup {
				// Keep the copy at the object's new home; the other is
				// the stale duplicate a crash left behind.
				if i == JumpHash(RouteKey(obj.ID), p.newBuckets) {
					holder[obj.ID] = i
				}
				continue
			}
			holder[obj.ID] = i
			meta[obj.ID] = obj
		}
	}
	// Pinned objects sit where the operator put them regardless of the
	// routing width, so they are not part of the movable population (and
	// must not skew the moved-fraction accounting).
	ids := make([]int, 0, len(holder))
	for id := range holder {
		if _, pinned := t.pins[id]; pinned {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	stats.Objects = len(ids)
	for _, id := range ids {
		key := RouteKey(id)
		oldSlot := JumpHash(key, p.oldBuckets)
		newSlot := JumpHash(key, p.newBuckets)
		if oldSlot == newSlot {
			continue
		}
		stats.Moved++
		src, dst := t.slots[holder[id]], t.slots[newSlot]
		if holder[id] == newSlot {
			// Already landed (resumed operation): flip routing first, then
			// clear any stale duplicate the crash left at the old slot.
			p.moved.Store(id, struct{}{})
			if err := r.deleteObject(ctx, t.slots[oldSlot], id); err != nil {
				return stats, err
			}
			continue
		}
		if err := r.addObject(ctx, dst, meta[id]); err != nil {
			return stats, fmt.Errorf("cluster: add object %d to shard %d: %w", id, dst.id, err)
		}
		// Flip routing to the new home BEFORE clearing the source: between
		// the two the object exists on both shards and reads stay valid
		// either way, whereas the reverse order opens a window where the
		// routed (old) home has already dropped it.
		p.moved.Store(id, struct{}{})
		if err := r.deleteObject(ctx, src, id); err != nil {
			return stats, fmt.Errorf("cluster: remove object %d from shard %d: %w", id, src.id, err)
		}
		r.m.objectsMoved.Inc()
	}
	if stats.Objects > 0 {
		stats.Fraction = float64(stats.Moved) / float64(stats.Objects)
	}
	return stats, nil
}

// fetchCatalog lists a shard's full object catalog over the admin surface.
func (r *Router) fetchCatalog(ctx context.Context, s *shard) ([]catalogObject, error) {
	var out []catalogObject
	err := r.shardCall(ctx, s, http.MethodGet, "/v1/admin/objects", nil, func(status int, body []byte) error {
		if status != http.StatusOK {
			return retryable(status, body)
		}
		return json.Unmarshal(body, &out)
	})
	return out, err
}

// addObject loads an object onto a shard; "already there" is success.
func (r *Router) addObject(ctx context.Context, s *shard, obj catalogObject) error {
	body, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	return r.shardCall(ctx, s, http.MethodPost, "/v1/admin/objects", body, func(status int, resp []byte) error {
		switch status {
		case http.StatusCreated, http.StatusConflict:
			// 409 = duplicate object: an earlier (crashed) attempt already
			// landed it. 409 can also be cm.ErrBusy (mid-reorganization),
			// which the shard spells differently; distinguish by body.
			if status == http.StatusConflict && !bytes.Contains(resp, []byte("duplicate object")) {
				return retryable(status, resp)
			}
			return nil
		default:
			return retryable(status, resp)
		}
	})
}

// deleteObject force-removes an object from a shard; "already gone" is
// success. Force semantics stop any playing streams first — their viewers
// re-open through the router and land on the new home shard.
func (r *Router) deleteObject(ctx context.Context, s *shard, id int) error {
	path := fmt.Sprintf("/v1/admin/objects/%d?force=1", id)
	return r.shardCall(ctx, s, http.MethodDelete, path, nil, func(status int, resp []byte) error {
		switch status {
		case http.StatusOK, http.StatusNotFound:
			return nil
		default:
			return retryable(status, resp)
		}
	})
}

// errRetry marks shard responses worth retrying (backpressure, transient
// conflict, transport failure).
type errRetry struct{ err error }

// Error satisfies the error interface.
func (e errRetry) Error() string { return e.err.Error() }

// Unwrap exposes the underlying cause.
func (e errRetry) Unwrap() error { return e.err }

// retryable classifies a shard response: 503 and 409 are transient
// (overload, reorganization in flight), everything else is terminal.
func retryable(status int, body []byte) error {
	err := fmt.Errorf("shard status %d: %s", status, bytes.TrimSpace(body))
	if status == http.StatusServiceUnavailable || status == http.StatusConflict {
		return errRetry{err}
	}
	return err
}

// shardCall performs one admin call against a shard with the per-shard
// timeout, retrying transient failures with capped backoff until ctx
// expires. handle inspects the response and returns errRetry to request
// another attempt.
func (r *Router) shardCall(ctx context.Context, s *shard, method, path string, body []byte,
	handle func(status int, body []byte) error) error {
	backoff := 10 * time.Millisecond
	for {
		err := func() error {
			cctx, cancel := context.WithTimeout(ctx, r.cfg.ShardTimeout)
			defer cancel()
			var rd io.Reader
			if body != nil {
				rd = bytes.NewReader(body)
			}
			req, err := http.NewRequestWithContext(cctx, method, s.url+path, rd)
			if err != nil {
				return err
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := r.client.Do(req)
			if err != nil {
				return errRetry{err}
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			if err != nil {
				return errRetry{err}
			}
			return handle(resp.StatusCode, data)
		}()
		var re errRetry
		if err == nil || !asRetry(err, &re) {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last: %v)", ctx.Err(), re.err)
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// asRetry reports whether err is (or wraps) an errRetry.
func asRetry(err error, out *errRetry) bool {
	for err != nil {
		if re, ok := err.(errRetry); ok {
			*out = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
