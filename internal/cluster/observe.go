package cluster

import (
	"strconv"

	"scaddar/internal/obs"
)

// routerMetrics holds the router's registry cells. Per-shard counter
// children are resolved once when the shard handle is built (CounterVec.With
// takes a mutex), so the routed-read hot path touches atomics only.
type routerMetrics struct {
	reg *obs.Registry

	routed      *obs.CounterVec
	routedErrs  *obs.CounterVec
	fanoutErrs  *obs.CounterVec
	healthy     *obs.GaugeVec
	unavailable *obs.Counter

	shards  *obs.Gauge
	buckets *obs.Gauge
	version *obs.Gauge

	proxySeconds   *obs.Histogram
	migrations     *obs.Counter
	objectsMoved   *obs.Counter
	migrateSeconds *obs.Histogram

	pins        *obs.Gauge
	objectMoves *obs.Counter
}

// newRouterMetrics registers the router's metric families in reg.
func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	return &routerMetrics{
		reg: reg,
		routed: reg.NewCounterVec("cluster_routed_total",
			"Requests routed to each shard (label: shard ID).", "shard"),
		routedErrs: reg.NewCounterVec("cluster_routed_errors_total",
			"Routed requests that failed at the transport (label: shard ID).", "shard"),
		fanoutErrs: reg.NewCounterVec("cluster_fanout_errors_total",
			"Fan-out sub-requests that errored or timed out (label: shard ID).", "shard"),
		healthy: reg.NewGaugeVec("cluster_shard_healthy",
			"1 when the shard's last health probe (or routed request) succeeded.", "shard"),
		unavailable: reg.NewCounter("cluster_unavailable_total",
			"Requests answered 503 because the owning shard was down or draining."),
		shards:  reg.NewGauge("cluster_shards", "Shards in the topology, including drained tails."),
		buckets: reg.NewGauge("cluster_buckets", "Routing slots that currently own keys."),
		version: reg.NewGauge("cluster_manifest_version", "Topology version from the cluster manifest."),
		proxySeconds: reg.NewHistogram("cluster_proxy_seconds",
			"Latency of routed shard requests as seen by the router.", obs.LatencyBuckets()),
		migrations: reg.NewCounter("cluster_migrations_total",
			"Completed topology operations (shard add/drain)."),
		objectsMoved: reg.NewCounter("cluster_objects_moved_total",
			"Objects migrated between shards by topology operations."),
		migrateSeconds: reg.NewHistogram("cluster_migrate_seconds",
			"Wall-clock duration of topology-operation key migrations.",
			obs.ExpBuckets(0.001, 4, 12)),
		pins: reg.NewGauge("cluster_object_pins",
			"Objects pinned to an explicit shard, overriding jump-hash placement."),
		objectMoves: reg.NewCounter("cluster_object_moves_total",
			"Completed cross-shard object moves via the move API."),
	}
}

// shardLabel renders a shard ID as its metric label.
func shardLabel(id int) string { return strconv.Itoa(id) }
