// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON object on stdout: benchmark name → {ns_op, allocs_op,
// bytes_op} (allocs/bytes only when -benchmem printed them). Lines that are
// not benchmark results — package headers, PASS/ok trailers, custom
// b.ReportMetric values — are ignored, so the tool can sit directly behind
// `go test -bench ./...` in the Makefile's bench target.
//
// Names are normalized by stripping the trailing GOMAXPROCS suffix
// (BenchmarkLocate/ops=16-8 → BenchmarkLocate/ops=16) so captures taken on
// machines with different core counts diff cleanly. Keys are emitted sorted
// so the output is byte-stable for a given input.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line's parsed measurements.
type result struct {
	NsOp     float64  `json:"ns_op"`
	BytesOp  *float64 `json:"bytes_op,omitempty"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
}

// benchLine matches `Benchmark<name>-<procs> <iters> <value> ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// procSuffix is the trailing -<GOMAXPROCS> go test appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	// Emit in sorted key order by building an ordered document by hand;
	// encoding/json would serialize map keys sorted too, but doing it
	// explicitly keeps the two-space indentation stable as well.
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "  %q: %s", name, entry)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	os.Stdout.WriteString(b.String())
}

// parse reads benchmark lines from the scanner. A repeated name (the same
// benchmark run in several packages, which go test names identically only
// across -count runs) keeps the last occurrence.
func parse(sc *bufio.Scanner) (map[string]result, error) {
	results := make(map[string]result)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		fields := strings.Fields(m[2])
		var r result
		seen := false
		// Measurements come as value-unit pairs: `123 ns/op 4 B/op ...`.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp, seen = v, true
			case "B/op":
				val := v
				r.BytesOp = &val
			case "allocs/op":
				val := v
				r.AllocsOp = &val
			}
		}
		if seen {
			results[name] = r
		}
	}
	return results, sc.Err()
}
