// Command speclink keeps docs/PROTOCOL.md in sync with the wire constants.
//
// It parses internal/binproto with go/ast, collects every exported
// package-level constant that is part of the wire contract — opcodes (Op*),
// response marker (RespFlag), error codes (ErrCode*), condition flags
// (Flag*), batch status marker (EntryUnhealthy), and protocol limits
// (Version, MaxFrameLen, MaxBatch) — and verifies each name appears
// verbatim in docs/PROTOCOL.md. Renaming, adding, or removing a wire
// constant without touching the spec fails `make lint`.
//
// Usage:
//
//	go run ./tools/speclink [-pkg dir] [-doc file]
//
// Exit status is 1 when the spec is missing any constant, 2 on parse or
// read errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// wirePrefixes selects the constant families that form the wire contract;
// wireExact adds the loners that do not share a family prefix.
var (
	wirePrefixes = []string{"Op", "ErrCode", "Flag"}
	wireExact    = map[string]bool{
		"RespFlag":       true,
		"EntryUnhealthy": true,
		"Version":        true,
		"MaxFrameLen":    true,
		"MaxBatch":       true,
	}
)

func main() {
	pkgDir := flag.String("pkg", "internal/binproto", "package directory holding the wire constants")
	docPath := flag.String("doc", "docs/PROTOCOL.md", "spec file that must mention every wire constant")
	flag.Parse()

	names, err := wireConstants(*pkgDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "speclink: %v\n", err)
		os.Exit(2)
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "speclink: no wire constants found in %s — wrong -pkg?\n", *pkgDir)
		os.Exit(2)
	}
	doc, err := os.ReadFile(*docPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "speclink: %v\n", err)
		os.Exit(2)
	}
	var missing []string
	for _, name := range names {
		if !strings.Contains(string(doc), name) {
			missing = append(missing, name)
		}
	}
	for _, name := range missing {
		fmt.Printf("%s: wire constant %s is not mentioned in %s\n", *pkgDir, name, *docPath)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "speclink: %d wire constants missing from the spec\n", len(missing))
		os.Exit(1)
	}
}

// wireConstants returns the sorted exported const names in dir that belong
// to the wire contract.
func wireConstants(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				d, ok := decl.(*ast.GenDecl)
				if !ok || d.Tok != token.CONST {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.IsExported() && isWireName(name.Name) {
							names = append(names, name.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// isWireName reports whether an exported constant name is part of the wire
// contract speclink polices.
func isWireName(name string) bool {
	if wireExact[name] {
		return true
	}
	for _, p := range wirePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
