// Command missingdoc reports exported identifiers that lack a doc comment.
//
// It parses the given package directories (relative to the module root) and
// flags every exported type, function, method, package-level var/const
// group, exported struct field, and exported interface method that has no
// comment attached. A doc comment on a grouped declaration covers every
// spec in the group, matching the usual Go convention for const/var blocks.
//
// Usage:
//
//	go run ./tools/missingdoc [dir ...]
//
// With no arguments it checks the public facade and the packages whose
// exported surface carries concurrency or durability contracts. Exit status
// is 1 when anything is undocumented, so `make lint` can gate on it.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultDirs is the surface the repository promises to keep documented.
var defaultDirs = []string{
	".",
	"internal/cm",
	"internal/dataplane",
	"internal/gateway",
	"internal/cluster",
	"internal/binproto",
	"internal/store",
	"internal/repl",
	"internal/obs",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var problems []string
	for _, dir := range dirs {
		ps, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "missingdoc: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, ps...)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "missingdoc: %d undocumented exported identifiers\n", len(problems))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns one
// problem line per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s is undocumented",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return problems, nil
}

// exportedRecv reports whether a function is a plain function or a method
// on an exported receiver type; methods on unexported types are not part of
// the documented surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	name := recvTypeName(d.Recv.List[0].Type)
	return name == "" || ast.IsExported(name)
}

// recvTypeName unwraps pointers and type parameters down to the receiver's
// type name.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl walks a type/var/const declaration. The group doc covers
// grouped specs; individual specs may carry their own doc or line comment
// instead.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFields(s.Name.Name, t.Fields, "field", report)
			case *ast.InterfaceType:
				checkFields(s.Name.Name, t.Methods, "interface method", report)
			}
		case *ast.ValueSpec:
			documented := d.Doc != nil || s.Doc != nil || s.Comment != nil
			for _, name := range s.Names {
				if name.IsExported() && !documented {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		}
	}
}

// checkFields flags undocumented exported struct fields or interface
// methods of an exported type. Embedded fields document themselves through
// the embedded type.
func checkFields(owner string, fields *ast.FieldList, what string, report func(token.Pos, string, string)) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil || len(f.Names) == 0 {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), what, owner+"."+name.Name)
			}
		}
	}
}
