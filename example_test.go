package scaddar_test

// Executable godoc examples for the public API. Each Output comment is
// verified by `go test`, so these double as golden tests of the library's
// determinism.

import (
	"fmt"

	"scaddar"
)

// ExampleHistory_Locate shows the paper's Section 4.2.1 worked example:
// removing Disk 4 from a 6-disk array, the block with X = 28 moves and the
// block with X = 41 stays — both end up on the disk with logical index 4.
func ExampleHistory_Locate() {
	hist := scaddar.MustNewHistory(6)
	if _, err := hist.Remove(4); err != nil {
		panic(err)
	}
	fmt.Println("X=28 ->", hist.Locate(28)) // was on removed disk 4: moves
	fmt.Println("X=41 ->", hist.Locate(41)) // was on disk 5: stays (now index 4)
	// Output:
	// X=28 -> 4
	// X=41 -> 4
}

// ExampleNewDiskArray maps the same example to stable physical disk
// identities: logical index 4 after the removal is physical Disk 5.
func ExampleNewDiskArray() {
	array, err := scaddar.NewDiskArray(6)
	if err != nil {
		panic(err)
	}
	if err := array.Remove(scaddar.DiskID(4)); err != nil {
		panic(err)
	}
	fmt.Println("X=28 -> physical disk", array.Locate(28))
	fmt.Println("X=41 -> physical disk", array.Locate(41))
	// Output:
	// X=28 -> physical disk 5
	// X=41 -> physical disk 5
}

// ExampleRuleOfThumb reproduces the Section 4.3 worked example: a 64-bit
// generator at sixteen disks and 1% tolerance supports 13 operations.
func ExampleRuleOfThumb() {
	fmt.Println(scaddar.RuleOfThumb(64, 0.01, 16))
	// Output:
	// 13
}

// ExampleBudget walks the randomness budget through scaling operations.
func ExampleBudget() {
	budget, err := scaddar.NewBudget(16, 8) // deliberately small: 16 bits
	if err != nil {
		panic(err)
	}
	for _, n := range []int{9, 10, 11} {
		if err := budget.Record(n); err != nil {
			panic(err)
		}
		fmt.Printf("after %d ops: within 5%%? %v\n", budget.Ops(), budget.WithinTolerance(0.05))
	}
	// Output:
	// after 1 ops: within 5%? true
	// after 2 ops: within 5%? true
	// after 3 ops: within 5%? false
}

// ExampleNewLocator locates blocks by computation alone across a scaling
// operation: movers land only on the added disks.
func ExampleNewLocator() {
	hist := scaddar.MustNewHistory(4)
	loc, err := scaddar.NewLocator(hist, func(seed uint64) scaddar.Source {
		return scaddar.NewSplitMix64(seed)
	})
	if err != nil {
		panic(err)
	}
	before := make([]int, 6)
	for i := range before {
		before[i], _ = loc.Disk(42, uint64(i))
	}
	hist.Add(1)
	for i := range before {
		after, _ := loc.Disk(42, uint64(i))
		if after != before[i] {
			fmt.Printf("block %d moved %d -> %d\n", i, before[i], after)
		}
	}
	// Output:
	// block 2 moved 2 -> 4
}

// ExampleUnfairness computes the paper's load-balance metric.
func ExampleUnfairness() {
	u, err := scaddar.Unfairness([]int{100, 110, 105, 102})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", u)
	// Output:
	// 0.10
}
