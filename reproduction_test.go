package scaddar_test

// TestPaperReproduction is the repository's single headline gate: it runs
// every experiment (at reduced scale where the default would be slow) and
// asserts the claim each one reproduces. If this test passes, the paper's
// evaluation holds on this build.

import (
	"testing"

	"scaddar/internal/experiments"
)

func TestPaperReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction sweep skipped in -short mode")
	}

	t.Run("E1_Figure1_naive_skew", func(t *testing.T) {
		r, err := experiments.RunE1(experiments.DefaultE1())
		if err != nil {
			t.Fatal(err)
		}
		if len(r.IgnoredDisks["naive"]) == 0 {
			t.Error("naive scheme did not skew")
		}
		if len(r.IgnoredDisks["scaddar"]) != 0 {
			t.Error("scaddar skewed")
		}
	})

	t.Run("E2_Section5_eight_operations", func(t *testing.T) {
		r, err := experiments.RunE2(experiments.DefaultE2())
		if err != nil {
			t.Fatal(err)
		}
		if r.BudgetExhaustedAt != 9 {
			t.Errorf("budget exhausted at %d, paper supports exactly 8 ops", r.BudgetExhaustedAt)
		}
		final := r.Points[len(r.Points)-1]
		if final.CoV["scaddar"] < 2*final.CoV["reshuffle"] {
			t.Error("past-budget degradation not visible")
		}
		if final.CoV["scaddar+redist"] > 0.1 {
			t.Error("the recommended lifecycle did not preserve balance")
		}
	})

	t.Run("E3_RO1_minimal_movement", func(t *testing.T) {
		r, err := experiments.RunE3(experiments.DefaultE3())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Strategy == "scaddar" {
				if row.Fraction < row.Optimal-0.03 || row.Fraction > row.Optimal+0.03 {
					t.Errorf("%s: scaddar %.3f vs z_j %.3f", row.Op, row.Fraction, row.Optimal)
				}
			}
			if row.Strategy == "roundrobin" && row.Fraction < 2*row.Optimal {
				t.Errorf("%s: round-robin moved only %.3f", row.Op, row.Fraction)
			}
		}
	})

	t.Run("E4_Section43_worked_examples", func(t *testing.T) {
		r, err := experiments.RunE4()
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Bits == 64 && row.Eps == 0.01 && row.AvgDisks == 16 && row.RuleOfThumb != 13 {
				t.Errorf("(64,1%%,16) = %d, paper says 13", row.RuleOfThumb)
			}
			if row.Bits == 32 && row.Eps == 0.05 && row.AvgDisks == 8 && row.RuleOfThumb != 8 {
				t.Errorf("(32,5%%,8) = %d, paper says 8", row.RuleOfThumb)
			}
		}
	})

	t.Run("E5_AO1_cheap_access", func(t *testing.T) {
		cfg := experiments.DefaultE5()
		cfg.Lookups = 20000
		r, err := experiments.RunE5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		if last.ScaddarNs > 5000 {
			t.Errorf("j=%d lookup costs %.0f ns", last.Ops, last.ScaddarNs)
		}
	})

	t.Run("E6_bound_sound", func(t *testing.T) {
		cfg := experiments.DefaultE6()
		cfg.Blocks = 1 << 17
		r, err := experiments.RunE6(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(r.Rows); i++ {
			if r.Rows[i].Bound < r.Rows[i-1].Bound {
				t.Error("bound not monotone")
			}
		}
	})

	t.Run("E7_online_no_deadline_misses", func(t *testing.T) {
		cfg := experiments.DefaultE7()
		cfg.Objects, cfg.BlocksPer = 10, 300
		r, err := experiments.RunE7(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Hiccups != 0 {
				t.Errorf("load %.2f: %d hiccups", row.LoadFraction, row.Hiccups)
			}
		}
	})

	t.Run("E8_fault_tolerance_zero_loss", func(t *testing.T) {
		r, err := experiments.RunE8(experiments.DefaultE8())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if len(row.Failed) > 5 && row.Failed[:5] == "disk " && row.Lost != 0 {
				t.Errorf("%s %s lost %d", row.Scheme, row.Failed, row.Lost)
			}
		}
		if r.ParityOverhead >= r.MirrorOverhead {
			t.Error("parity saved no storage")
		}
	})

	t.Run("E9_metadata_advantage", func(t *testing.T) {
		r, err := experiments.RunE9(experiments.DefaultE9())
		if err != nil {
			t.Fatal(err)
		}
		if r.Rows[2].Ratio < 1000 {
			t.Errorf("paper-scale metadata ratio %.0f", r.Rows[2].Ratio)
		}
	})

	t.Run("E10_fixed_model_conservative", func(t *testing.T) {
		cfg := experiments.DefaultE10()
		cfg.Trials = 10
		r, err := experiments.RunE10(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Policy == "scan" && row.Budget <= r.FixedModel {
				t.Errorf("SCAN budget %d not above fixed %d", row.Budget, r.FixedModel)
			}
		}
	})

	t.Run("E11_logical_mapping_wins", func(t *testing.T) {
		cfg := experiments.DefaultE11()
		cfg.Rounds = 10
		r, err := experiments.RunE11(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Rows[1].AdmittedStreams <= r.Rows[0].AdmittedStreams {
			t.Error("logical mapping admitted no more streams")
		}
	})

	t.Run("E12_generator_assumption", func(t *testing.T) {
		r, err := experiments.RunE12(experiments.DefaultE12())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Generator == "splitmix64" && (row.ChiP0 < 0.01 || row.ChiP0 > 0.999) {
				t.Errorf("splitmix64 p = %g", row.ChiP0)
			}
			if row.Generator == "lcg64" && row.ChiP0 < 0.999 {
				t.Errorf("lcg64 lattice signature missing: p = %g", row.ChiP0)
			}
		}
	})

	t.Run("E13_cache_composes", func(t *testing.T) {
		cfg := experiments.DefaultE13()
		cfg.Rounds = 80
		r, err := experiments.RunE13(cfg)
		if err != nil {
			t.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		if last.HitRate <= first.HitRate || last.DiskReads >= first.DiskReads {
			t.Error("cache sweep shows no benefit")
		}
	})
}
